//! Figure 1: classification of (l,k)-freedom points.

use std::fmt;

use slx_adversary::{run_bivalence_adversary, TmStarvation};
use slx_consensus::{ConsWord, ObstructionFreeConsensus};
use slx_explorer::{explore_safety, history_digest, verify_solo_progress};
use slx_history::{Operation, ProcessId, Value, VarId};
use slx_liveness::LkFreedom;
use slx_memory::{Memory, System};
use slx_safety::ConsensusSafety;
use slx_tm::{GlobalVersionTm, TmWord};

/// Classification of one (l,k) point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A white point of Figure 1: some implementation ensures the safety
    /// property together with this liveness property.
    Implementable {
        /// How the verdict was established.
        basis: String,
    },
    /// A black point: the liveness property excludes the safety property.
    Excluded {
        /// How the verdict was established.
        basis: String,
    },
}

/// One grid point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPoint {
    /// The (l,k)-freedom property.
    pub lk: LkFreedom,
    /// Its classification.
    pub verdict: Verdict,
}

impl GridPoint {
    /// Whether the point is white (implementable).
    pub fn implementable(&self) -> bool {
        matches!(self.verdict, Verdict::Implementable { .. })
    }
}

/// A full Figure-1 pane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Name of the safety property classified against.
    pub safety: String,
    /// System size `n`.
    pub n: usize,
    /// All points with `1 ≤ l ≤ k ≤ n`.
    pub points: Vec<GridPoint>,
}

impl Grid {
    /// The point for a given (l,k), if on the grid.
    pub fn point(&self, l: usize, k: usize) -> Option<&GridPoint> {
        self.points.iter().find(|p| p.lk.l() == l && p.lk.k() == k)
    }

    /// The *maximal* white points (no white point strictly stronger):
    /// the "strongest implementable" frontier of Section 5.2.
    pub fn strongest_implementable(&self) -> Vec<&GridPoint> {
        self.points
            .iter()
            .filter(|p| p.implementable())
            .filter(|p| {
                !self
                    .points
                    .iter()
                    .any(|q| q.implementable() && q.lk != p.lk && q.lk.is_stronger_or_equal(&p.lk))
            })
            .collect()
    }

    /// CSV rendering (`l,k,verdict` rows) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("l,k,verdict\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{}\n",
                p.lk.l(),
                p.lk.k(),
                if p.implementable() {
                    "implementable"
                } else {
                    "excluded"
                }
            ));
        }
        out
    }

    /// The *minimal* black points (no black point strictly weaker): the
    /// "weakest non-implementable" frontier.
    pub fn weakest_excluded(&self) -> Vec<&GridPoint> {
        self.points
            .iter()
            .filter(|p| !p.implementable())
            .filter(|p| {
                !self
                    .points
                    .iter()
                    .any(|q| !q.implementable() && q.lk != p.lk && p.lk.is_stronger_or_equal(&q.lk))
            })
            .collect()
    }
}

impl fmt::Display for Grid {
    /// Renders the pane in the style of Figure 1: `k` on the horizontal
    /// axis, `l` on the vertical, `○` white (implementable), `●` black
    /// (excluded), blank where `l > k`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "S = {} (n = {})", self.safety, self.n)?;
        for l in (1..=self.n).rev() {
            write!(f, "l={l} |")?;
            for k in 1..=self.n {
                match self.point(l, k) {
                    Some(p) if p.implementable() => write!(f, " ○")?,
                    Some(_) => write!(f, " ●")?,
                    None => write!(f, "  ")?,
                }
            }
            writeln!(f)?;
        }
        write!(f, "     ")?;
        for k in 1..=self.n {
            write!(f, "k={k}")?;
        }
        Ok(())
    }
}

/// Tuning knobs for the grid experiments (exposed so benches can scale
/// them; the defaults regenerate the paper's figure in seconds).
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Depth of the exhaustive safety exploration for the white consensus
    /// point.
    pub explore_depth: usize,
    /// Depth of reachable-configuration enumeration for the solo-progress
    /// check.
    pub solo_depth: usize,
    /// Step budget of a solo run before it must respond.
    pub solo_budget: usize,
    /// Steps the bivalence adversary must survive.
    pub adversary_steps: u64,
    /// Configuration budget per valence query.
    pub valence_budget: usize,
    /// Events the TM starvation adversary runs for.
    pub tm_adversary_events: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            explore_depth: 18,
            solo_depth: 8,
            solo_budget: 400,
            adversary_steps: 60,
            valence_budget: 40_000,
            tm_adversary_events: 2_000,
        }
    }
}

/// **Figure 1(a)**: consensus from read/write registers. White iff
/// `(l,k) = (1,1)` (Theorem 5.2).
///
/// The two anchor verdicts are established experimentally:
///
/// - *(1,1) white*: `ObstructionFreeConsensus` passes (i) exhaustive
///   small-scope safety exploration (agreement and validity on **all**
///   schedules to the depth bound) and (ii) exhaustive solo-progress
///   (from every reachable configuration, a solo process decides);
/// - *(1,2) black*: the valence-computing adversary keeps the same
///   implementation undecided with two processes stepping — and since the
///   adversary is implementation-agnostic (it model-checks whatever
///   deterministic register-based implementation it is given), the point
///   is excluded, not merely unwitnessed. Every (l,k) ≥ (1,2) inherits
///   the exclusion (a stronger property excludes whenever a weaker one
///   does).
pub fn consensus_grid(n: usize) -> Grid {
    consensus_grid_with(n, GridConfig::default())
}

/// [`consensus_grid`] with explicit tuning.
pub fn consensus_grid_with(n: usize, cfg: GridConfig) -> Grid {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);

    // White anchor (1,1): exhaustive safety + solo progress at small scope.
    let build = || {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p0, 2),
            ObstructionFreeConsensus::new(layout, p1, 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
        sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
        sys
    };
    let safety_out = explore_safety(
        &build(),
        &[p0, p1],
        cfg.explore_depth,
        &ConsensusSafety::new(),
        history_digest,
    );
    let solo_cex = verify_solo_progress(&build(), &[p0, p1], cfg.solo_depth, cfg.solo_budget);
    let white_ok = safety_out.holds() && solo_cex.is_none();
    let white_basis = format!(
        "obstruction-free consensus from registers: safety exhaustive to depth {} \
         ({} configs, ok={}), solo progress exhaustive to depth {} (ok={})",
        cfg.explore_depth,
        safety_out.configs,
        safety_out.holds(),
        cfg.solo_depth,
        solo_cex.is_none()
    );

    // Black anchor (1,2): the bivalence adversary starves two steppers.
    let mut sys = build();
    let report =
        run_bivalence_adversary(&mut sys, &[p0, p1], cfg.adversary_steps, cfg.valence_budget);
    let black_ok = report.adversary_won();
    let black_basis = format!(
        "bivalence adversary kept 2 steppers undecided for {} steps \
         (bivalent throughout: {})",
        report.steps, report.bivalent_throughout
    );

    let points = LkFreedom::grid(n)
        .into_iter()
        .map(|lk| {
            let verdict = if lk.l() == 1 && lk.k() == 1 {
                if white_ok {
                    Verdict::Implementable {
                        basis: white_basis.clone(),
                    }
                } else {
                    Verdict::Excluded {
                        basis: "white-anchor experiment FAILED".to_owned(),
                    }
                }
            } else if black_ok {
                Verdict::Excluded {
                    basis: format!("{lk} is stronger than (1,2)-freedom; {black_basis}"),
                }
            } else {
                Verdict::Implementable {
                    basis: "black-anchor experiment FAILED".to_owned(),
                }
            };
            GridPoint { lk, verdict }
        })
        .collect();

    Grid {
        safety: "consensus agreement and validity (register implementations)".to_owned(),
        n,
        points,
    }
}

/// **Figure 1(b)**: transactional memory with opacity. White iff `l = 1`
/// (Theorem 5.3: strongest implementable (1,n), weakest excluded (2,2)).
///
/// - *(1,n) white*: `GlobalVersionTm` commits under full contention
///   (lock-freedom: a failed CAS certifies someone else's commit), and its
///   runs certify opaque;
/// - *(2,2) black*: the Section 4.1 starvation strategy drives any
///   single-winner TM into a two-stepper run with one process starving;
///   against our TMs the run is periodic, which the test suite converts
///   into a lasso proof. Every l ≥ 2 point inherits the exclusion.
pub fn tm_grid(n: usize) -> Grid {
    tm_grid_with(n, GridConfig::default())
}

/// [`tm_grid`] with explicit tuning.
pub fn tm_grid_with(n: usize, cfg: GridConfig) -> Grid {
    // White anchor: lock-freedom of GlobalVersionTm under full contention.
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs: Vec<GlobalVersionTm> = (0..n.max(2)).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys = System::new(mem, procs);
    let workload =
        slx_memory::RepeatTxn::new(n.max(2), vec![VarId::new(0)], vec![VarId::new(0)], None);
    let mut sched =
        slx_memory::WorkloadScheduler::new(n.max(2), workload, slx_memory::FairRandom::new(7));
    sys.run(&mut sched, cfg.tm_adversary_events);
    let commits = sys
        .history()
        .iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_commit()))
        .count();
    let opaque = slx_safety::certify_unique_writes(sys.history(), Value::new(0));
    let white_ok = commits > 0 && opaque;
    let white_basis = format!(
        "GlobalVersionTm under full {}-process contention: {} commits, opacity certified: {}",
        n.max(2),
        commits,
        opaque
    );

    // Black anchor: §4.1 starvation strategy on two processes.
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs: Vec<GlobalVersionTm> = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys = System::new(mem, procs);
    let mut adv = TmStarvation::new(ProcessId::new(0), ProcessId::new(1), VarId::new(0));
    sys.run(&mut adv, cfg.tm_adversary_events);
    let black_ok = !adv.lost() && adv.rounds() >= 2;
    let black_basis = format!(
        "§4.1 starvation strategy: victim aborted through {} committer rounds without committing",
        adv.rounds()
    );

    let points = LkFreedom::grid(n)
        .into_iter()
        .map(|lk| {
            let verdict = if lk.l() == 1 {
                if white_ok {
                    Verdict::Implementable {
                        basis: format!("{lk} is weaker than (1,{n})-freedom; {white_basis}"),
                    }
                } else {
                    Verdict::Excluded {
                        basis: "white-anchor experiment FAILED".to_owned(),
                    }
                }
            } else if black_ok {
                Verdict::Excluded {
                    basis: format!("{lk} is stronger than (2,2)-freedom; {black_basis}"),
                }
            } else {
                Verdict::Implementable {
                    basis: "black-anchor experiment FAILED".to_owned(),
                }
            };
            GridPoint { lk, verdict }
        })
        .collect();

    Grid {
        safety: "TM opacity".to_owned(),
        n,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1a_shape() {
        let g = consensus_grid(3);
        // Exactly one white point: (1,1).
        let white: Vec<&GridPoint> = g.points.iter().filter(|p| p.implementable()).collect();
        assert_eq!(white.len(), 1);
        assert_eq!(white[0].lk, LkFreedom::new(1, 1));
        // Frontiers match Theorem 5.2.
        let strongest: Vec<LkFreedom> = g.strongest_implementable().iter().map(|p| p.lk).collect();
        assert_eq!(strongest, vec![LkFreedom::new(1, 1)]);
        let weakest: Vec<LkFreedom> = g.weakest_excluded().iter().map(|p| p.lk).collect();
        assert_eq!(weakest, vec![LkFreedom::new(1, 2)]);
    }

    #[test]
    fn figure_1b_shape() {
        let n = 4;
        let g = tm_grid(n);
        for p in &g.points {
            assert_eq!(
                p.implementable(),
                p.lk.l() == 1,
                "wrong verdict at {}",
                p.lk
            );
        }
        // Frontiers match Theorem 5.3: strongest implementable (1,n),
        // weakest excluded (2,2) — and they are incomparable.
        let strongest: Vec<LkFreedom> = g.strongest_implementable().iter().map(|p| p.lk).collect();
        assert_eq!(strongest, vec![LkFreedom::new(1, n)]);
        let weakest: Vec<LkFreedom> = g.weakest_excluded().iter().map(|p| p.lk).collect();
        assert_eq!(weakest, vec![LkFreedom::new(2, 2)]);
        assert_eq!(
            strongest[0].partial_cmp_strength(&weakest[0]),
            None,
            "the paper notes these two are incomparable"
        );
    }

    #[test]
    fn grid_display_renders() {
        let g = tm_grid(3);
        let s = g.to_string();
        assert!(s.contains("○"));
        assert!(s.contains("●"));
        assert!(s.contains("l=1"));
    }

    #[test]
    fn grid_csv_rows() {
        let g = tm_grid(3);
        let csv = g.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "l,k,verdict");
        assert_eq!(lines.len(), 1 + g.points.len());
        assert!(lines.contains(&"1,3,implementable"));
        assert!(lines.contains(&"2,2,excluded"));
    }
}
