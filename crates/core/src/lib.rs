//! Safety-liveness exclusion: the paper's results as executable verdicts.
//!
//! This crate is the public façade of the workspace. It re-exports the
//! building blocks (histories, the simulator, safety and liveness
//! properties, the implementations, the adversaries, the explorer) and
//! adds the *experiment drivers* that regenerate the paper's figure and
//! corollaries:
//!
//! - [`grid::consensus_grid`] / [`grid::tm_grid`] — **Figure 1(a)/(b)**:
//!   classify every (l,k)-freedom point as implementable (white) or
//!   excluded (black) with a machine-checked witness for the anchor
//!   points;
//! - [`theorems::consensus_gmax_demo`] / [`theorems::tm_gmax_demo`] —
//!   **Corollaries 4.5 / 4.6** via Theorem 4.4: two disjoint adversary
//!   sets, hence `Gmax = ∅`, hence no weakest excluding liveness;
//! - [`counterexample::run_counterexample_s`] — **Section 5.3**: property
//!   `S` is excluded by both (1,3)- and (2,2)-freedom yet implemented (at
//!   (1,2)) by Algorithm I(1,2), so even within (l,k)-freedom no weakest
//!   excluding property exists;
//! - [`sect6`] — the **Section 6** remarks on S-freedom and
//!   (n,x)-liveness.
//!
//! # Quickstart
//!
//! ```
//! use slx_core::grid;
//!
//! // Figure 1(a) at n = 3: only (1,1)-freedom is implementable with
//! // consensus safety from registers.
//! let fig1a = grid::consensus_grid(3);
//! let white: Vec<String> = fig1a
//!     .points
//!     .iter()
//!     .filter(|p| p.implementable())
//!     .map(|p| p.lk.to_string())
//!     .collect();
//! assert_eq!(white, vec!["(1,1)-freedom"]);
//! ```

#![warn(missing_docs)]

pub mod blocking;
pub mod counterexample;
pub mod grid;
pub mod sect6;
pub mod theorems;

pub use grid::{Grid, GridPoint, Verdict};

// Re-export the component crates under stable names.
pub use slx_adversary as adversary;
pub use slx_automata as automata;
pub use slx_consensus as consensus;
pub use slx_engine as engine;
pub use slx_explorer as explorer;
pub use slx_history as history;
pub use slx_liveness as liveness;
pub use slx_memory as memory;
pub use slx_safety as safety;
pub use slx_tm as tm;
