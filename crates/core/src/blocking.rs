//! The non-blocking motivation (footnote to Section 1 / Section 5):
//! why the restricted liveness definition covers *non-blocking* systems.
//!
//! A non-blocking system is one where a crashed process cannot prevent
//! others from making progress. The lock-based TM is the canonical
//! blocking counterexample: opaque and deadlock-free, yet a crashed lock
//! holder starves everyone — so no (l,k)-freedom property with any
//! progress requirement can hold. This experiment contrasts it with the
//! lock-free TM under the same crash.

use slx_history::{Operation, ProcessId, Value, VarId};
use slx_liveness::{ExecutionView, LivenessProperty, LkFreedom, ProgressKind};
use slx_memory::{FairRandom, Memory, RepeatTxn, System, WorkloadScheduler};
use slx_safety::{Opacity, SafetyProperty};
use slx_tm::{GlobalVersionTm, LockTm, TmWord};

/// Outcome of the blocking-vs-non-blocking crash experiment.
#[derive(Debug, Clone)]
pub struct BlockingDemo {
    /// Commits by the survivor against the lock TM after the holder
    /// crashed (expected 0).
    pub lock_tm_survivor_commits: u64,
    /// Whether the lock TM run still satisfies opacity (expected: yes —
    /// blocking is a liveness failure).
    pub lock_tm_still_opaque: bool,
    /// Whether (1,1)-freedom (obstruction-freedom) fails for the lock TM
    /// run (expected: yes, the solo survivor starves).
    pub lock_tm_violates_11: bool,
    /// Commits by the survivor against the lock-free TM after the same
    /// crash (expected > 0).
    pub lock_free_survivor_commits: u64,
    /// Whether (1,n)-freedom holds on the lock-free run (expected: yes).
    pub lock_free_satisfies_1n: bool,
}

impl BlockingDemo {
    /// Whether the experiment establishes the contrast.
    pub fn establishes_contrast(&self) -> bool {
        self.lock_tm_survivor_commits == 0
            && self.lock_tm_still_opaque
            && self.lock_tm_violates_11
            && self.lock_free_survivor_commits > 0
            && self.lock_free_satisfies_1n
    }
}

/// Runs the crash experiment: process 1 acquires whatever its TM needs
/// for a transaction and crashes mid-flight; process 2 then runs a full
/// closed-loop workload alone.
pub fn blocking_demo(events: u64) -> BlockingDemo {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let x = VarId::new(0);

    // --- Lock TM: crash the lock holder. ---
    let mut mem: Memory<TmWord> = Memory::new();
    let (lock, store) = LockTm::alloc(&mut mem, 1);
    let procs = (0..2).map(|_| LockTm::new(lock, store, 1)).collect();
    let mut sys: System<TmWord, LockTm> = System::new(mem, procs);
    sys.invoke(p0, Operation::TxStart).expect("invoke");
    sys.step(p0).expect("step"); // TAS: lock acquired
    sys.crash(p0).expect("crash");
    let workload = RepeatTxn::new(2, vec![x], vec![x], None);
    let mut sched = WorkloadScheduler::new(2, workload, FairRandom::restricted(3, vec![p1]));
    sys.run(&mut sched, events);
    let lock_commits = sys
        .history()
        .iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_commit()))
        .count() as u64;
    let lock_opaque = Opacity::new(Value::new(0)).allows(sys.history());
    let view = ExecutionView::second_half(sys.events(), 2, ProgressKind::CommitOnly);
    let lock_violates_11 = !LkFreedom::new(1, 1).satisfied(&view);

    // --- Lock-free TM: same crash pattern. ---
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
    let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
    sys.invoke(p0, Operation::TxStart).expect("invoke");
    sys.step(p0).expect("step");
    sys.crash(p0).expect("crash");
    let workload = RepeatTxn::new(2, vec![x], vec![x], None);
    let mut sched = WorkloadScheduler::new(2, workload, FairRandom::restricted(3, vec![p1]));
    sys.run(&mut sched, events);
    let free_commits = sys
        .history()
        .iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_commit()))
        .count() as u64;
    let view = ExecutionView::second_half(sys.events(), 2, ProgressKind::CommitOnly);
    let free_1n = LkFreedom::new(1, 2).satisfied(&view);

    BlockingDemo {
        lock_tm_survivor_commits: lock_commits,
        lock_tm_still_opaque: lock_opaque,
        lock_tm_violates_11: lock_violates_11,
        lock_free_survivor_commits: free_commits,
        lock_free_satisfies_1n: free_1n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_contrast_established() {
        let demo = blocking_demo(2000);
        assert!(demo.establishes_contrast(), "{demo:?}");
    }
}
