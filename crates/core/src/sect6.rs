//! Section 6: alternative restricted liveness families.

use slx_adversary::run_bivalence_adversary;
use slx_consensus::{ConsWord, ObstructionFreeConsensus};
use slx_explorer::verify_solo_progress;
use slx_history::{Operation, ProcessId, Value};
use slx_liveness::{ExecutionView, LivenessProperty, NxLiveness, ProgressKind, SFreedom};
use slx_memory::{Memory, System};

/// The S-freedom structure recalled in Section 6: the implementable
/// members (from registers, for consensus) are exactly the singletons, and
/// the singletons are pairwise incomparable — so even this restricted
/// family has **no strongest implementable member**.
#[derive(Debug, Clone)]
pub struct SFreedomReport {
    /// The singleton properties `{1}-freedom .. {n}-freedom`.
    pub singletons: Vec<SFreedom>,
    /// Whether every distinct pair of singletons is incomparable.
    pub pairwise_incomparable: bool,
}

/// Builds the Section 6 S-freedom report for system size `n`.
pub fn s_freedom_report(n: usize) -> SFreedomReport {
    let singletons: Vec<SFreedom> = (1..=n).map(|s| SFreedom::new([s])).collect();
    let pairwise_incomparable = singletons.iter().enumerate().all(|(i, a)| {
        singletons
            .iter()
            .enumerate()
            .all(|(j, b)| i == j || a.incomparable(b))
    });
    SFreedomReport {
        singletons,
        pairwise_incomparable,
    }
}

/// The (n,x)-liveness structure recalled in Section 6: the family is
/// **totally ordered** by `x`, so the strongest implementable member
/// `(n,0)` and the weakest non-implementable member `(n,1)` both exist —
/// the paper's example of a restriction strong enough to defeat the
/// impossibilities, at the price of excluding e.g. lock-freedom from the
/// family.
#[derive(Debug, Clone)]
pub struct NxReport {
    /// The full chain `(n,0) .. (n,n)` in increasing strength.
    pub chain: Vec<NxLiveness>,
    /// Whether the chain is totally ordered by strength.
    pub totally_ordered: bool,
    /// The strongest implementable member (x = 0: pure obstruction-
    /// freedom, implementable from registers).
    pub strongest_implementable: NxLiveness,
    /// The weakest non-implementable member (x = 1: one wait-free process
    /// already falls to the bivalence adversary).
    pub weakest_non_implementable: NxLiveness,
}

/// Builds the Section 6 (n,x)-liveness report for system size `n`.
pub fn nx_report(n: usize) -> NxReport {
    let chain: Vec<NxLiveness> = (0..=n).map(|x| NxLiveness::new(n, x)).collect();
    let totally_ordered = chain
        .windows(2)
        .all(|w| w[1].cmp_strength(&w[0]) == std::cmp::Ordering::Greater);
    NxReport {
        totally_ordered,
        strongest_implementable: NxLiveness::new(n, 0),
        weakest_non_implementable: NxLiveness::new(n, 1),
        chain,
    }
}

/// Experimental check of the Section 6 *implementability* claims for a
/// two-process register system, using the same machinery as Figure 1a:
///
/// - `(n,0)`-liveness (pure obstruction-freedom) and `{1}`-freedom are
///   *satisfied* by the register-only consensus: verified by exhaustive
///   solo-progress;
/// - `(n,1)`-liveness and `{2}`-freedom are *excluded*: the bivalence
///   adversary produces a two-stepper run on which both properties fail
///   (the designated wait-free process starves; two contention-free
///   steppers starve).
#[derive(Debug, Clone)]
pub struct Sect6ImplementabilityDemo {
    /// Solo-progress check passed (backs the implementable members).
    pub solo_progress_ok: bool,
    /// The adversary run violated `(2,1)`-liveness.
    pub nx1_violated: bool,
    /// The adversary run violated `{2}`-freedom.
    pub s2_violated: bool,
}

impl Sect6ImplementabilityDemo {
    /// Whether all three legs came out as Section 6 states.
    pub fn establishes_sect6(&self) -> bool {
        self.solo_progress_ok && self.nx1_violated && self.s2_violated
    }
}

/// Runs the Section 6 implementability experiment.
pub fn sect6_implementability_demo() -> Sect6ImplementabilityDemo {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let build = || {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p0, 2),
            ObstructionFreeConsensus::new(layout, p1, 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
        sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
        sys
    };

    let solo_progress_ok = verify_solo_progress(&build(), &[p0, p1], 8, 400).is_none();

    let mut sys = build();
    let report = run_bivalence_adversary(&mut sys, &[p0, p1], 60, 40_000);
    let mut nx1_violated = false;
    let mut s2_violated = false;
    if report.adversary_won() {
        // Rebuild the events from the driven system for liveness views.
        let view = ExecutionView::new(sys.events(), 2, 0, ProgressKind::AnyResponse);
        nx1_violated = !NxLiveness::new(2, 1).satisfied(&view);
        s2_violated = !SFreedom::new([2]).satisfied(&view);
    }
    Sect6ImplementabilityDemo {
        solo_progress_ok,
        nx1_violated,
        s2_violated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implementability_demo_backs_sect6() {
        let demo = sect6_implementability_demo();
        assert!(demo.establishes_sect6(), "{demo:?}");
    }

    #[test]
    fn s_freedom_singletons_incomparable() {
        let r = s_freedom_report(4);
        assert_eq!(r.singletons.len(), 4);
        assert!(r.pairwise_incomparable);
    }

    #[test]
    fn nx_chain_totally_ordered() {
        let r = nx_report(4);
        assert!(r.totally_ordered);
        assert_eq!(r.chain.len(), 5);
        assert_eq!(r.strongest_implementable.x(), 0);
        assert_eq!(r.weakest_non_implementable.x(), 1);
    }
}
