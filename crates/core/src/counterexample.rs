//! The Section 5.3 counterexample: property `S` has no weakest excluding
//! (l,k)-freedom property.

use slx_adversary::{TmStarvation, TripleRoundAdversary};
use slx_history::{ProcessId, TransactionStatus, TxnView, Value, VarId};
use slx_liveness::LkFreedom;
use slx_memory::{FairRandom, Memory, RepeatTxn, System, WorkloadScheduler};
use slx_safety::PropertyS;
use slx_tm::{AgpTm, TmWord};

/// Outcome of the Section 5.3 experiment.
#[derive(Debug, Clone)]
pub struct CounterexampleReport {
    /// (1,3)-freedom excludes `S`: the triple-round adversary looped this
    /// many all-abort rounds against Algorithm I(1,2) without a commit.
    pub triple_rounds: u64,
    /// Whether the triple-round adversary was ever defeated (it must not
    /// be).
    pub triple_lost: bool,
    /// (2,2)-freedom excludes `S`: rounds of the §4.1 starvation strategy
    /// (S includes opacity, so the §4.1 exclusion applies).
    pub starvation_rounds: u64,
    /// Whether the starvation victim ever committed (it must not).
    pub starvation_lost: bool,
    /// (1,2)-freedom does **not** exclude `S`: commits by each of the two
    /// active processes of Algorithm I(1,2) under a fair 2-stepper
    /// schedule.
    pub duo_commits: [u64; 2],
    /// Whether every checked I(1,2) history satisfied property `S`'s
    /// abort rule.
    pub s_holds: bool,
}

impl CounterexampleReport {
    /// Whether the experiment reproduces the section's conclusion: both
    /// (1,3) and (2,2) exclude `S`, (1,2) does not, and (1,2) is weaker
    /// than both — so no weakest excluding (l,k)-freedom exists.
    pub fn establishes_section_5_3(&self) -> bool {
        let one_three = LkFreedom::new(1, 3);
        let two_two = LkFreedom::new(2, 2);
        let one_two = LkFreedom::new(1, 2);
        self.triple_rounds >= 2
            && !self.triple_lost
            && self.starvation_rounds >= 2
            && !self.starvation_lost
            && self.duo_commits.iter().all(|&c| c > 0)
            && self.s_holds
            && one_three.is_stronger_or_equal(&one_two)
            && two_two.is_stronger_or_equal(&one_two)
            && one_three.partial_cmp_strength(&two_two).is_none()
    }
}

fn agp_system(n: usize) -> System<TmWord, AgpTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, n, 1);
    let procs = (0..n)
        .map(|i| AgpTm::new(c, r, ProcessId::new(i), n, 1))
        .collect();
    System::new(mem, procs)
}

/// Runs the three legs of the Section 5.3 experiment against Algorithm
/// I(1,2):
///
/// 1. the three-process synchronized-round adversary (excludes
///    (1,3)-freedom);
/// 2. the two-process §4.1 starvation strategy (excludes (2,2)-freedom —
///    property `S` contains opacity, so the opacity exclusion carries
///    over);
/// 3. a fair two-stepper workload showing both processes commit
///    ((1,2)-freedom holds) while property `S` is preserved (Lemma 5.4).
pub fn run_counterexample_s(events: u64) -> CounterexampleReport {
    // Leg 1: (1,3) excluded.
    let mut sys = agp_system(3);
    let mut triple =
        TripleRoundAdversary::new([ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    sys.run(&mut triple, events);
    let mut s_holds = PropertyS::new(Value::new(0)).abort_rule_holds(sys.history());

    // Leg 2: (2,2) excluded.
    let mut sys = agp_system(3);
    let mut starve = TmStarvation::new(ProcessId::new(0), ProcessId::new(1), VarId::new(0));
    sys.run(&mut starve, events);
    s_holds &= PropertyS::new(Value::new(0)).abort_rule_holds(sys.history());

    // Leg 3: (1,2) implementable.
    let mut sys = agp_system(3);
    let workload = RepeatTxn::new(3, vec![VarId::new(0)], vec![VarId::new(0)], None);
    let mut sched = WorkloadScheduler::new(
        3,
        workload,
        FairRandom::restricted(13, vec![ProcessId::new(0), ProcessId::new(1)]),
    );
    sys.run(&mut sched, events);
    let view = TxnView::parse(sys.history());
    let commits = |i: usize| {
        view.of_process(ProcessId::new(i))
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .count() as u64
    };
    s_holds &= PropertyS::new(Value::new(0)).abort_rule_holds(sys.history());
    s_holds &= slx_safety::certify_unique_writes(sys.history(), Value::new(0));

    CounterexampleReport {
        triple_rounds: triple.rounds(),
        triple_lost: triple.lost(),
        starvation_rounds: starve.rounds(),
        starvation_lost: starve.lost(),
        duo_commits: [commits(0), commits(1)],
        s_holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_5_3_reproduced() {
        let report = run_counterexample_s(3000);
        assert!(report.establishes_section_5_3(), "report: {report:?}");
    }

    #[test]
    fn incomparability_is_essential() {
        // The section's point: (1,3) and (2,2) both exclude S but are
        // incomparable, and their common weakening (1,2) does not exclude
        // S — so there is no weakest excluding (l,k)-freedom property.
        let a = LkFreedom::new(1, 3);
        let b = LkFreedom::new(2, 2);
        assert!(a.partial_cmp_strength(&b).is_none());
        let common = LkFreedom::new(1, 2);
        assert!(a.is_stronger_or_equal(&common));
        assert!(b.is_stronger_or_equal(&common));
    }
}
