//! End-to-end service tests: submit over a real socket, stream progress,
//! compare verdicts against direct kernel runs, cancel and resume
//! across server instances, and exercise concurrent clients.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use slx_engine::{Checker, Digest, Expansion, SpillCodec, StateSpace};
use slx_server::scenario::{Scenario, ScenarioRun};
use slx_server::wire::ProgressFrame;
use slx_server::{
    connect, CheckRequest, CheckServer, Frame, ScenarioRegistry, ServerConfig, ServiceOutcome,
};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slx-svc-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

/// A socket address under a fresh temp dir (Unix socket paths must stay
/// short, so the tag is kept terse).
fn unix_addr(dir: &std::path::Path) -> String {
    format!("unix:{}", dir.join("svc.sock").display())
}

fn request(id: &str, scenario: &str, depth: u64) -> CheckRequest {
    CheckRequest {
        request_id: id.into(),
        scenario: scenario.into(),
        depth,
        config_budget: None,
        mem_budget: None,
        progress_every: 1,
    }
}

/// The same checker the server pins for every request (1 thread,
/// 8 shards, symmetry off, delta codec, spilling off) minus the
/// checkpointing — checkpointing is a pure observer, so counters match.
fn baseline_checker() -> Checker {
    Checker::parallel_bfs(1)
        .with_shards(8)
        .with_symmetry(false)
        .with_spill_codec(SpillCodec::Delta)
        .with_mem_budget(0)
}

/// The grid scenario's space, re-declared here to compute baselines
/// without going through the server.
struct Grid {
    bound: u32,
}

impl StateSpace for Grid {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }
}

#[test]
fn grid_verdict_over_the_socket_matches_the_direct_run() {
    let root = unique_dir("grid");
    let addr = unix_addr(&root);
    let server = CheckServer::start(
        &addr,
        ServerConfig::new(root.join("ckpt")),
        ScenarioRegistry::builtin(),
    )
    .expect("server start");

    let baseline = baseline_checker().run(&Grid { bound: 10 }, vec![(0u32, 0u32)]);

    let mut progress_frames: Vec<ProgressFrame> = Vec::new();
    let mut conn = connect(server.local_addr()).expect("connect");
    let outcome = conn
        .run_to_verdict(&request("grid-10", "grid", 10), |p| {
            progress_frames.push(p.clone())
        })
        .expect("verdict");

    let ServiceOutcome::Verdict(v) = outcome else {
        panic!("expected a verdict, got {outcome:?}");
    };
    assert_eq!(v.request_id, "grid-10");
    assert!(!v.holds, "the far corner is a finding");
    assert_eq!(v.findings, 1);
    assert_eq!(v.configs, baseline.stats.configs as u64);
    assert_eq!(v.transitions, baseline.stats.transitions as u64);
    assert_eq!(v.dedup_hits, baseline.stats.dedup_hits as u64);
    assert_eq!(v.peak_frontier, baseline.stats.peak_frontier as u64);
    assert!(!v.truncated);
    assert_eq!(v.resumed_from_depth, None);

    // Progress streamed at every level (progress_every = 1), with
    // monotone depths and lifetime counters.
    assert!(
        progress_frames.len() >= 10,
        "one snapshot per level, got {}",
        progress_frames.len()
    );
    for pair in progress_frames.windows(2) {
        assert!(pair[0].depth < pair[1].depth);
        assert!(pair[0].configs <= pair[1].configs);
        assert!(pair[0].elapsed_micros <= pair[1].elapsed_micros);
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn consensus_scenario_runs_and_holds() {
    let root = unique_dir("cons");
    let addr = unix_addr(&root);
    let server = CheckServer::start(
        &addr,
        ServerConfig::new(root.join("ckpt")),
        ScenarioRegistry::builtin(),
    )
    .expect("server start");
    let mut conn = connect(server.local_addr()).expect("connect");
    let outcome = conn
        .run_to_verdict(&request("of-8", "of-consensus-safety", 8), |_| {})
        .expect("verdict");
    let ServiceOutcome::Verdict(v) = outcome else {
        panic!("expected a verdict, got {outcome:?}");
    };
    assert!(v.holds, "consensus safety holds on the Fig 1a system");
    assert_eq!(v.findings, 0);
    assert!(v.configs > 0);
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn unknown_scenarios_are_refused_with_the_available_list() {
    let root = unique_dir("unknown");
    let addr = unix_addr(&root);
    let server = CheckServer::start(
        &addr,
        ServerConfig::new(root.join("ckpt")),
        ScenarioRegistry::builtin(),
    )
    .expect("server start");
    let mut conn = connect(server.local_addr()).expect("connect");
    let outcome = conn
        .run_to_verdict(&request("x", "no-such-scenario", 4), |_| {})
        .expect("terminal frame");
    match outcome {
        ServiceOutcome::Error { message, .. } => {
            assert!(message.contains("unknown scenario"), "{message}");
            assert!(message.contains("of-consensus-safety"), "{message}");
        }
        other => panic!("expected an error, got {other:?}"),
    }
    // Invalid request ids are refused before touching the filesystem.
    let outcome = conn
        .run_to_verdict(&request("../escape", "grid", 4), |_| {})
        .expect("terminal frame");
    assert!(matches!(outcome, ServiceOutcome::Error { .. }));
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn six_interleaved_requests_on_one_connection_keep_their_verdicts_apart() {
    let root = unique_dir("multi");
    let addr = unix_addr(&root);
    let mut config = ServerConfig::new(root.join("ckpt"));
    config.workers = 3;
    let server =
        CheckServer::start(&addr, config, ScenarioRegistry::builtin()).expect("server start");

    // Six depths, six ids, one connection: all submitted before any
    // verdict is read, so three workers run them concurrently and their
    // progress/verdict frames interleave freely on the stream.
    let depths: Vec<u64> = (8..14).collect();
    let mut conn = connect(server.local_addr()).expect("connect");
    for depth in &depths {
        conn.submit(&request(&format!("grid-{depth}"), "grid", *depth))
            .expect("submit");
    }

    let mut verdicts = std::collections::HashMap::new();
    let mut progress_ids = std::collections::HashSet::new();
    while verdicts.len() < depths.len() {
        match conn.next_event().expect("event") {
            Some(Frame::Progress(p)) => {
                progress_ids.insert(p.request_id.clone());
            }
            Some(Frame::Verdict(v)) => {
                assert!(
                    verdicts.insert(v.request_id.clone(), v).is_none(),
                    "exactly one verdict per request"
                );
            }
            Some(other) => panic!("unexpected frame {other:?}"),
            None => panic!("server hung up early"),
        }
    }

    for depth in &depths {
        let id = format!("grid-{depth}");
        let bound = u32::try_from(*depth).expect("small depth");
        let baseline = baseline_checker().run(&Grid { bound }, vec![(0u32, 0u32)]);
        let v = verdicts.get(&id).expect("verdict for every id");
        assert_eq!(v.configs, baseline.stats.configs as u64, "{id}");
        assert_eq!(v.transitions, baseline.stats.transitions as u64, "{id}");
        assert_eq!(v.peak_frontier, baseline.stats.peak_frontier as u64, "{id}");
        assert!(progress_ids.contains(&id), "{id} streamed progress");
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn concurrent_connections_each_get_their_own_stream() {
    let root = unique_dir("conns");
    let addr = unix_addr(&root);
    let mut config = ServerConfig::new(root.join("ckpt"));
    config.workers = 4;
    let server =
        CheckServer::start(&addr, config, ScenarioRegistry::builtin()).expect("server start");
    let addr = server.local_addr().to_string();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let depth = 9 + i;
                let mut conn = connect(&addr).expect("connect");
                let outcome = conn
                    .run_to_verdict(&request(&format!("t{i}"), "grid", depth), |p| {
                        assert_eq!(p.request_id, format!("t{i}"));
                    })
                    .expect("verdict");
                let ServiceOutcome::Verdict(v) = outcome else {
                    panic!("expected verdict");
                };
                assert_eq!(v.request_id, format!("t{i}"));
                (depth, v)
            })
        })
        .collect();
    for handle in handles {
        let (depth, v) = handle.join().expect("client thread");
        let bound = u32::try_from(depth).expect("small depth");
        let baseline = baseline_checker().run(&Grid { bound }, vec![(0u32, 0u32)]);
        assert_eq!(v.configs, baseline.stats.configs as u64);
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn tcp_transport_carries_the_same_protocol() {
    let root = unique_dir("tcp");
    let server = CheckServer::start(
        "tcp:127.0.0.1:0",
        ServerConfig::new(root.join("ckpt")),
        ScenarioRegistry::builtin(),
    )
    .expect("server start");
    assert!(server.local_addr().starts_with("tcp:127.0.0.1:"));
    let mut conn = connect(server.local_addr()).expect("connect");
    let outcome = conn
        .run_to_verdict(&request("tcp-grid", "grid", 7), |_| {})
        .expect("verdict");
    let ServiceOutcome::Verdict(v) = outcome else {
        panic!("expected verdict");
    };
    let baseline = baseline_checker().run(&Grid { bound: 7 }, vec![(0u32, 0u32)]);
    assert_eq!(v.configs, baseline.stats.configs as u64);
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// A deliberately slow grid (a few ms per expansion) so a cancel lands
/// mid-run with levels to spare.
struct SleepyGrid;

struct SleepySpace {
    bound: u32,
}

impl StateSpace for SleepySpace {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        std::thread::sleep(Duration::from_millis(3));
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }
}

impl Scenario for SleepyGrid {
    fn run(
        &self,
        req: &CheckRequest,
        checker: Checker,
        progress: &mut dyn FnMut(usize, &slx_engine::ExploreStats) -> bool,
    ) -> ScenarioRun {
        let space = SleepySpace {
            bound: u32::try_from(req.depth).unwrap_or(u32::MAX),
        };
        let out = checker.run_observed(&space, vec![(0u32, 0u32)], |_| false, progress);
        ScenarioRun {
            holds: out.findings.is_empty(),
            findings: out.findings.len(),
            stats: out.stats,
        }
    }
}

fn sleepy_registry() -> ScenarioRegistry {
    let mut reg = ScenarioRegistry::builtin();
    reg.register("sleepy-grid", Arc::new(SleepyGrid));
    reg
}

#[test]
fn cancelled_requests_resume_on_resubmit_even_across_server_instances() {
    let root = unique_dir("cancel");
    let ckpt_root = root.join("ckpt");
    let addr = unix_addr(&root);
    let mut config = ServerConfig::new(&ckpt_root);
    config.checkpoint_every = 1;
    let server = CheckServer::start(&addr, config.clone(), sleepy_registry()).expect("server");

    // Submit the slow grid, let two progress frames arrive (≥ two
    // committed checkpoints at cadence 1), then cancel.
    let req = request("slow-1", "sleepy-grid", 12);
    let mut conn = connect(server.local_addr()).expect("connect");
    conn.submit(&req).expect("submit");
    let mut seen = 0;
    while seen < 2 {
        match conn.next_event().expect("event") {
            Some(Frame::Progress(_)) => seen += 1,
            Some(other) => panic!("unexpected frame before cancel: {other:?}"),
            None => panic!("server hung up"),
        }
    }
    conn.cancel("slow-1").expect("cancel");
    let outcome = conn.wait_for("slow-1", &mut |_| {}).expect("terminal");
    match outcome {
        ServiceOutcome::Error { message, .. } => {
            assert!(message.contains("cancelled"), "{message}");
            assert!(message.contains("resubmit"), "{message}");
        }
        other => panic!("cancelled request must end in an error frame: {other:?}"),
    }
    drop(conn);
    // First instance down — the checkpoint root is the only survivor,
    // exactly like a server crash.
    server.shutdown();

    let server2 = CheckServer::start(&addr, config, sleepy_registry()).expect("restart");
    let mut conn = connect(server2.local_addr()).expect("reconnect");
    let outcome = conn.run_to_verdict(&req, |_| {}).expect("verdict");
    let ServiceOutcome::Verdict(v) = outcome else {
        panic!("resubmitted request must finish: {outcome:?}");
    };
    assert!(
        v.resumed_from_depth.is_some(),
        "the resubmit must resume, not restart"
    );

    // Resume ≡ fresh on every pinned counter.
    let baseline = baseline_checker().run(&SleepySpace { bound: 12 }, vec![(0u32, 0u32)]);
    assert_eq!(v.findings, 1);
    assert_eq!(v.configs, baseline.stats.configs as u64);
    assert_eq!(v.transitions, baseline.stats.transitions as u64);
    assert_eq!(v.dedup_hits, baseline.stats.dedup_hits as u64);
    assert_eq!(v.peak_frontier, baseline.stats.peak_frontier as u64);
    assert_eq!(v.truncated, baseline.stats.truncated);
    server2.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn resubmitting_a_running_id_is_refused_with_a_structured_error() {
    let root = unique_dir("dup");
    let addr = unix_addr(&root);
    let mut config = ServerConfig::new(root.join("ckpt"));
    config.checkpoint_every = 1;
    let server = CheckServer::start(&addr, config, sleepy_registry()).expect("server");

    let req = request("dup-1", "sleepy-grid", 12);
    let mut conn = connect(server.local_addr()).expect("connect");
    conn.submit(&req).expect("submit");
    // Wait until the run demonstrably started.
    match conn.next_event().expect("event") {
        Some(Frame::Progress(p)) => assert_eq!(p.request_id, "dup-1"),
        Some(other) => panic!("expected progress, got {other:?}"),
        None => panic!("server hung up"),
    }

    // Same id, same connection: refused with a structured terminal
    // frame, without disturbing the running request.
    conn.submit(&req).expect("submit duplicate");
    let outcome = conn.wait_for("dup-1", &mut |_| {}).expect("terminal");
    match outcome {
        ServiceOutcome::Error {
            request_id,
            message,
        } => {
            assert_eq!(request_id, "dup-1");
            assert!(message.contains("duplicate request id"), "{message}");
            assert!(message.contains("resubmitting"), "{message}");
        }
        other => panic!("duplicate submit must be refused: {other:?}"),
    }

    // A second connection gets the same refusal while the run lives —
    // the guard is server-wide, not per-connection.
    let mut conn2 = connect(server.local_addr()).expect("connect 2");
    let outcome = conn2.run_to_verdict(&req, |_| {}).expect("terminal");
    match outcome {
        ServiceOutcome::Error { message, .. } => {
            assert!(message.contains("duplicate request id"), "{message}");
        }
        other => panic!("cross-connection duplicate must be refused: {other:?}"),
    }
    drop(conn2);

    // Cancel the original run; once its terminal frame lands, the id
    // frees up and a resubmit resumes it to the real verdict (retrying
    // over the tiny window between the terminal frame and the release).
    conn.cancel("dup-1").expect("cancel");
    let outcome = conn.wait_for("dup-1", &mut |_| {}).expect("terminal");
    match outcome {
        ServiceOutcome::Error { message, .. } => {
            assert!(message.contains("cancelled"), "{message}");
        }
        other => panic!("cancelled request must end in an error frame: {other:?}"),
    }
    let outcome = loop {
        let outcome = conn.run_to_verdict(&req, |_| {}).expect("terminal");
        match outcome {
            ServiceOutcome::Error { message, .. } if message.contains("duplicate request id") => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => break other,
        }
    };
    let ServiceOutcome::Verdict(v) = outcome else {
        panic!("freed id must run to a verdict: {outcome:?}");
    };
    assert!(
        v.resumed_from_depth.is_some(),
        "the resubmit must resume the cancelled run, not restart it"
    );
    let baseline = baseline_checker().run(&SleepySpace { bound: 12 }, vec![(0u32, 0u32)]);
    assert_eq!(v.configs, baseline.stats.configs as u64);
    assert_eq!(v.transitions, baseline.stats.transitions as u64);
    server.shutdown();
    std::fs::remove_dir_all(&root).expect("cleanup");
}
