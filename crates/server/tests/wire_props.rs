//! Wire-discipline tests: every frame kind round-trips, and *no* input
//! — truncated, garbage, oversized, wrong-versioned — makes the decoder
//! panic, hang, or read unboundedly. The decoder inherits the engine
//! codec's totality contract, and these tests pin that it actually
//! holds at the frame layer too.

use std::io::Cursor;

use slx_server::wire::{
    read_frame, read_hello, write_frame, write_hello, CheckRequest, Frame, ProgressFrame,
    VerdictFrame, WireError, MAX_FRAME, PROTOCOL_VERSION,
};

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Submit(CheckRequest {
            request_id: "fig1a-depth12".into(),
            scenario: "of-consensus-safety".into(),
            depth: 12,
            config_budget: Some(100_000),
            mem_budget: None,
            progress_every: 3,
        }),
        Frame::Cancel {
            request_id: "fig1a-depth12".into(),
        },
        Frame::Progress(ProgressFrame {
            request_id: "fig1a-depth12".into(),
            depth: 7,
            configs: 1234,
            transitions: 5678,
            dedup_hits: 444,
            peak_frontier: 99,
            elapsed_micros: 1_000_001,
            checkpoints_written: 3,
            resumed_from_depth: Some(4),
        }),
        Frame::Verdict(VerdictFrame {
            request_id: "fig1a-depth12".into(),
            holds: true,
            findings: 0,
            configs: 40_000,
            transitions: 160_000,
            dedup_hits: 120_000,
            peak_frontier: 9_000,
            truncated: false,
            elapsed_micros: 2_500_000,
            resumed_from_depth: None,
        }),
        Frame::Error {
            request_id: "bad".into(),
            message: "unknown scenario \"nope\"".into(),
        },
    ]
}

#[test]
fn every_frame_kind_round_trips() {
    for frame in sample_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).expect("write");
        let mut cursor = Cursor::new(buf);
        let back = read_frame(&mut cursor)
            .expect("read")
            .expect("one frame present");
        assert_eq!(back, frame);
        // And the stream is exactly consumed: the next read is clean EOF.
        assert!(matches!(read_frame(&mut cursor), Ok(None)));
    }
}

#[test]
fn several_frames_stream_back_in_order() {
    let frames = sample_frames();
    let mut buf = Vec::new();
    for frame in &frames {
        write_frame(&mut buf, frame).expect("write");
    }
    let mut cursor = Cursor::new(buf);
    for frame in &frames {
        assert_eq!(read_frame(&mut cursor).expect("read").as_ref(), Some(frame));
    }
    assert!(matches!(read_frame(&mut cursor), Ok(None)));
}

#[test]
fn every_truncation_of_every_frame_is_an_error_never_a_panic() {
    // Chop each encoded frame (length prefix + body) at every byte
    // boundary: a partial length prefix, a partial body, a partial
    // string inside the body — all must yield Err, never Ok and never a
    // panic. Truncation *inside* a frame is not a clean hangup.
    for frame in sample_frames() {
        let mut full = Vec::new();
        write_frame(&mut full, &frame).expect("write");
        for cut in 1..full.len() {
            let mut cursor = Cursor::new(&full[..cut]);
            let result = read_frame(&mut cursor);
            assert!(
                result.is_err(),
                "cut at {cut}/{} must error, got {result:?}",
                full.len()
            );
        }
    }
}

#[test]
fn garbage_bodies_are_rejected_not_trusted() {
    // A well-formed length prefix carrying junk: unknown tag, empty
    // body, a known tag with a hostile payload. SplitMix-ish bytes keep
    // it deterministic.
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rand_byte = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (z ^ (z >> 27)) as u8
    };
    for len in [0usize, 1, 2, 7, 64, 1000] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(len as u32).to_le_bytes());
        for _ in 0..len {
            wire.push(rand_byte());
        }
        let result = read_frame(&mut Cursor::new(wire));
        assert!(result.is_err(), "garbage body of {len} bytes: {result:?}");
    }
    // A known tag (Submit = 1) followed by a string length that claims
    // more bytes than exist must be truncation, not an overread.
    let mut body = vec![1u8];
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    assert!(read_frame(&mut Cursor::new(wire)).is_err());
}

#[test]
fn trailing_bytes_after_a_valid_payload_are_rejected() {
    // Layout disagreement detector: a frame body longer than its
    // payload decodes must be refused, not silently accepted.
    let frame = Frame::Cancel {
        request_id: "x".into(),
    };
    let mut body = frame.encode_body();
    body.push(0xAB);
    let mut wire = Vec::new();
    wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
    wire.extend_from_slice(&body);
    let result = read_frame(&mut Cursor::new(wire));
    assert!(
        matches!(result, Err(WireError::Malformed(_))),
        "trailing bytes: {result:?}"
    );
}

#[test]
fn oversized_length_prefixes_fail_before_any_body_read() {
    // A hostile 4 GiB length must error immediately — the reader after
    // the prefix sees *zero* reads, proving no allocation-by-attacker.
    use std::io::Read as _;
    struct NoBody;
    impl std::io::Read for NoBody {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            panic!("body bytes must never be read for an oversized frame");
        }
    }
    let len = (MAX_FRAME as u32) + 1;
    let prefix = len.to_le_bytes();
    let mut reader = Cursor::new(prefix.to_vec()).chain(NoBody);
    let result = read_frame(&mut reader);
    assert!(
        matches!(result, Err(WireError::Oversized { .. })),
        "{result:?}"
    );

    let mut reader2 = Cursor::new(u32::MAX.to_le_bytes().to_vec()).chain(NoBody);
    assert!(matches!(
        read_frame(&mut reader2),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn hello_exchange_validates_magic_and_version() {
    let mut good = Vec::new();
    write_hello(&mut good).expect("write hello");
    assert!(read_hello(&mut Cursor::new(good.clone())).is_ok());

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        read_hello(&mut Cursor::new(bad_magic)),
        Err(WireError::BadMagic)
    ));

    let mut bad_version = good.clone();
    bad_version[8] = PROTOCOL_VERSION + 1;
    assert!(matches!(
        read_hello(&mut Cursor::new(bad_version)),
        Err(WireError::Version(v)) if v == PROTOCOL_VERSION + 1
    ));

    // Truncated hello = error, not a hang (Cursor EOFs immediately;
    // a real socket would block, but the contract is read_exact's).
    assert!(read_hello(&mut Cursor::new(good[..5].to_vec())).is_err());
}

#[test]
fn request_id_validation_rejects_path_escapes() {
    use slx_server::wire::validate_request_id;
    for ok in ["a", "fig1a-depth12", "A.B_c-9", &"x".repeat(64)] {
        assert!(validate_request_id(ok).is_ok(), "{ok:?}");
    }
    for bad in [
        "",
        ".",
        "..",
        ".hidden",
        "a/b",
        "../escape",
        "a b",
        "a\0b",
        "ü",
        &"x".repeat(65),
    ] {
        assert!(validate_request_id(bad).is_err(), "{bad:?}");
    }
}
