//! Named check scenarios the service can run.
//!
//! A request names a scenario; the server builds the checker (knobs,
//! checkpointing, resume) and hands it to the scenario, which owns the
//! state space and the property. The built-ins cover the two shapes the
//! workspace cares about:
//!
//! - `grid` — the transpose grid walk the crash/resume differential
//!   suites use: `depth` is the grid bound, the far corner is a finding,
//!   so the verdict is deterministically "violated" with exactly one
//!   finding and exactly `(depth+1)^2` configs. A fast, predictable
//!   smoke target.
//! - `of-consensus-safety` — the Figure 1a anchor: obstruction-free
//!   consensus (two proposers, inputs 1 and 2) checked for consensus
//!   safety to `depth` schedule steps. The same workload as the
//!   `checkpoint_run` CI probe.
//!
//! Tests register extra scenarios (e.g. deliberately slow spaces for
//! cancellation coverage) through [`ScenarioRegistry::register`].

use std::sync::Arc;

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::explorer::{explore_safety_observed, history_digest};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;
use slx_engine::{Checker, DetHashMap, Digest, Expansion, ExploreStats, StateSpace};

use crate::wire::CheckRequest;

/// Outcome of one scenario run, scenario-agnostic.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Whether the property held everywhere explored.
    pub holds: bool,
    /// Number of violating findings.
    pub findings: usize,
    /// The kernel statistics (lifetime counters).
    pub stats: ExploreStats,
}

/// A runnable check. `progress` receives `(depth, lifetime stats)` at
/// every BFS level boundary and cancels the run by returning `false`
/// (see `Checker::run_observed`); implementations must thread it through
/// to the kernel or cancellation and streaming both silently break.
pub trait Scenario: Send + Sync {
    /// Runs the check on the prepared `checker`.
    fn run(
        &self,
        req: &CheckRequest,
        checker: Checker,
        progress: &mut dyn FnMut(usize, &ExploreStats) -> bool,
    ) -> ScenarioRun;
}

/// Name → scenario lookup, seeded with the built-ins.
pub struct ScenarioRegistry {
    map: DetHashMap<String, Arc<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        ScenarioRegistry {
            map: DetHashMap::default(),
        }
    }

    /// The built-in scenarios: `grid` and `of-consensus-safety`.
    #[must_use]
    pub fn builtin() -> Self {
        let mut reg = ScenarioRegistry::empty();
        reg.register("grid", Arc::new(GridScenario));
        reg.register("of-consensus-safety", Arc::new(OfConsensusSafety));
        reg
    }

    /// Registers (or replaces) a scenario under `name`.
    pub fn register(&mut self, name: &str, scenario: Arc<dyn Scenario>) {
        self.map.insert(name.to_string(), scenario);
    }

    /// Looks a scenario up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn Scenario>> {
        self.map.get(name).cloned()
    }

    /// Registered names, sorted (for error messages).
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.keys().cloned().collect();
        names.sort();
        names
    }
}

/// The transpose grid walk: `(x, y)` with moves `+x`/`+y` up to
/// `req.depth`, a finding at the far corner.
struct GridScenario;

struct GridSpace {
    bound: u32,
}

impl StateSpace for GridSpace {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }
}

impl Scenario for GridScenario {
    fn run(
        &self,
        req: &CheckRequest,
        checker: Checker,
        progress: &mut dyn FnMut(usize, &ExploreStats) -> bool,
    ) -> ScenarioRun {
        let space = GridSpace {
            bound: u32::try_from(req.depth).unwrap_or(u32::MAX),
        };
        let out = checker.run_observed(&space, vec![(0u32, 0u32)], |_| false, progress);
        ScenarioRun {
            holds: out.findings.is_empty(),
            findings: out.findings.len(),
            stats: out.stats,
        }
    }
}

/// The Figure 1a anchor workload (two proposers, inputs 1 and 2) under
/// consensus safety — identical to the `checkpoint_run` probe's system.
struct OfConsensusSafety;

fn of_system(inputs: &[i64]) -> System<ConsWord, ObstructionFreeConsensus> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for (i, &input) in inputs.iter().enumerate() {
        sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(input)))
            .expect("proposer invocation");
    }
    sys
}

impl Scenario for OfConsensusSafety {
    fn run(
        &self,
        req: &CheckRequest,
        checker: Checker,
        progress: &mut dyn FnMut(usize, &ExploreStats) -> bool,
    ) -> ScenarioRun {
        let sys = of_system(&[1, 2]);
        let active = [ProcessId::new(0), ProcessId::new(1)];
        let safety = ConsensusSafety::new();
        let depth = usize::try_from(req.depth).unwrap_or(usize::MAX);
        let out = explore_safety_observed(
            &checker,
            &sys,
            &active,
            depth,
            &safety,
            history_digest,
            progress,
        );
        ScenarioRun {
            holds: out.holds(),
            findings: out.violations.len(),
            stats: out.stats,
        }
    }
}
