//! The check service: exploration requests over a socket.
//!
//! `slx-server` turns the workspace's exploration kernel into a small
//! long-running service: clients connect over a Unix or TCP socket,
//! submit named check scenarios with depth/budget knobs, and receive a
//! stream of progress snapshots followed by a terminal verdict frame.
//! Requests are checkpointed server-side (one directory per request id
//! under the server's checkpoint root), so a `kill -9`'d server — or a
//! cancelled request — resumes where it left off when the same id is
//! resubmitted, with the engine's resume contract guaranteeing the
//! final counters match an uninterrupted run bit for bit.
//!
//! Layering:
//!
//! - [`wire`] — the framed protocol (hello, length-prefixed
//!   [`StateCodec`]-encoded frames, total decoding);
//! - [`net`] — `unix:<path>` / `tcp:<host:port>` transports;
//! - [`scenario`] — named checks ([`ScenarioRegistry`]), built-ins
//!   `grid` and `of-consensus-safety`;
//! - [`server`] — accept loop, FIFO worker pool, per-request
//!   checkpointing, cancellation;
//! - [`client`] — the client session API and the diffable verdict
//!   line.
//!
//! The `slx_server` and `slx_client` binaries wrap [`CheckServer`] and
//! [`client::connect`] for the CI crash probe and interactive use.
//!
//! [`StateCodec`]: slx_engine::StateCodec

#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod scenario;
pub mod server;
pub mod wire;

pub use client::{connect, run_with_reconnect, Connection, ServiceOutcome};
pub use scenario::{Scenario, ScenarioRegistry, ScenarioRun};
pub use server::{CheckServer, ServerConfig, ServerHandle};
pub use wire::{CheckRequest, Frame, ProgressFrame, VerdictFrame, WireError, PROTOCOL_VERSION};
