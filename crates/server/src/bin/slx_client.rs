//! `slx_client` — submit one check request and stream its result.
//!
//! ```text
//! slx_client <addr> <scenario> <request-id> <depth> [config_budget] [progress_every]
//! ```
//!
//! Progress snapshots go to stderr; the terminal verdict goes to stdout
//! as a single deterministic line (see `slx_server::client::verdict_line`)
//! that is byte-identical between an uninterrupted run and a
//! crashed-server-resumed one — the CI probe diffs exactly these lines.
//! Exits 0 on a verdict, 1 on a server-reported error or wire failure.

use slx_server::client::verdict_line;
use slx_server::{run_with_reconnect, CheckRequest, ServiceOutcome};

/// Total submissions (first try + reconnects) before giving up: rides
/// out a server restart without spinning forever against a dead one.
const ATTEMPTS: usize = 5;

fn usage() -> ! {
    eprintln!(
        "usage: slx_client <addr> <scenario> <request-id> <depth> [config_budget] [progress_every]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| usage());
    let scenario = args.next().unwrap_or_else(|| usage());
    let request_id = args.next().unwrap_or_else(|| usage());
    let depth: u64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| usage());
    let config_budget: Option<u64> = args.next().map(|a| a.parse().unwrap_or_else(|_| usage()));
    let progress_every: u64 = args
        .next()
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(1);

    let req = CheckRequest {
        request_id,
        scenario: scenario.clone(),
        depth,
        config_budget,
        mem_budget: None,
        progress_every,
    };

    // Reconnect-and-resubmit on transport failures: the server resumes
    // the id from its checkpoint, so a mid-run server restart still
    // ends in the same deterministic verdict line.
    let outcome = run_with_reconnect(&addr, &req, ATTEMPTS, |p| {
        eprintln!(
            "progress id={} depth={} configs={} transitions={} peak_frontier={} \
             elapsed_us={} checkpoints={}{}",
            p.request_id,
            p.depth,
            p.configs,
            p.transitions,
            p.peak_frontier,
            p.elapsed_micros,
            p.checkpoints_written,
            match p.resumed_from_depth {
                Some(d) => format!(" resumed_from={d}"),
                None => String::new(),
            }
        );
    })
    .unwrap_or_else(|e| {
        eprintln!("slx_client: {e}");
        std::process::exit(1);
    });

    match outcome {
        ServiceOutcome::Verdict(v) => {
            if let Some(d) = v.resumed_from_depth {
                eprintln!("resumed from depth {d}, lifetime {} us", v.elapsed_micros);
            }
            println!("{}", verdict_line(&scenario, &v));
        }
        ServiceOutcome::Error {
            request_id,
            message,
        } => {
            eprintln!("slx_client: request {request_id} failed: {message}");
            std::process::exit(1);
        }
    }
}
