//! `slx_server` — the check service daemon.
//!
//! ```text
//! slx_server <addr> <checkpoint-root> [workers] [every]
//! ```
//!
//! `<addr>` is `unix:<path>` or `tcp:<host:port>` (port 0 = OS-assigned;
//! the resolved address is printed on stderr). `<checkpoint-root>`
//! holds one checkpoint directory per request id — keep it across
//! restarts: it is the resume state.
//!
//! `SLX_SERVER_STALL_AFTER=<n>` parks any run once it passes `n` BFS
//! levels (after that level's checkpoint commit) so a CI harness can
//! `kill -9` the server inside a deterministic window; see the
//! `test-check-service` job.

use slx_server::{CheckServer, ScenarioRegistry, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: slx_server <addr> <checkpoint-root> [workers] [every]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| usage());
    let root = args.next().unwrap_or_else(|| usage());
    let workers: usize = args
        .next()
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(2);
    let every: usize = args
        .next()
        .map(|a| a.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(2);

    let stall_after = slx_engine::knobs::SLX_SERVER_STALL_AFTER.usize_value();
    // Arms the socket fault seams (accepts, connection reads/writes) for
    // the robustness suites; the engine parses the same plan for its own
    // spill/checkpoint seams inside each worker's checker.
    let fault_plan = slx_engine::knobs::SLX_ENGINE_FAULT_PLAN
        .text_value()
        .map(|text| {
            slx_engine::FaultPlan::parse(&text)
                .unwrap_or_else(|err| panic!("malformed SLX_ENGINE_FAULT_PLAN: {err}"))
        });

    let mut config = ServerConfig::new(root);
    config.workers = workers;
    config.checkpoint_every = every;
    config.stall_after = stall_after;
    config.fault_plan = fault_plan;

    let handle =
        CheckServer::start(&addr, config, ScenarioRegistry::builtin()).unwrap_or_else(|e| {
            eprintln!("slx_server: cannot start on {addr}: {e}");
            std::process::exit(1);
        });
    eprintln!("slx_server: listening on {}", handle.local_addr());
    handle.wait();
}
