//! Client side of the check service: connect, submit, stream.

use crate::net::{Addr, Stream};
use crate::wire::{
    read_frame, read_hello, write_frame, write_hello, CheckRequest, Frame, ProgressFrame,
    VerdictFrame, WireError,
};

/// A connected client session.
pub struct Connection {
    stream: Stream,
}

/// How a request ended.
#[derive(Debug, Clone)]
pub enum ServiceOutcome {
    /// The run completed; here is its verdict.
    Verdict(VerdictFrame),
    /// The server refused or aborted the request.
    Error {
        /// The id the failure concerns.
        request_id: String,
        /// The server's reason.
        message: String,
    },
}

/// Connects to `addr` (`unix:<path>` or `tcp:<host:port>`) and performs
/// the hello exchange.
pub fn connect(addr: &str) -> Result<Connection, WireError> {
    let addr = Addr::parse(addr).map_err(WireError::Protocol)?;
    let mut stream = Stream::connect(&addr)?;
    write_hello(&mut stream)?;
    read_hello(&mut stream)?;
    Ok(Connection { stream })
}

impl Connection {
    /// Submits a check request. Results stream back interleaved with
    /// other requests on this connection; match on `request_id`.
    pub fn submit(&mut self, req: &CheckRequest) -> Result<(), WireError> {
        write_frame(&mut self.stream, &Frame::Submit(req.clone()))
    }

    /// Asks the server to cancel a request submitted on this
    /// connection. The run stops at its next level boundary; its
    /// checkpoint survives for a later resubmit-to-resume.
    pub fn cancel(&mut self, request_id: &str) -> Result<(), WireError> {
        write_frame(
            &mut self.stream,
            &Frame::Cancel {
                request_id: request_id.to_string(),
            },
        )
    }

    /// Reads the next server frame (`Ok(None)` = server hung up).
    pub fn next_event(&mut self) -> Result<Option<Frame>, WireError> {
        read_frame(&mut self.stream)
    }

    /// Submits `req` and blocks until *its* terminal frame, invoking
    /// `on_progress` for each of its progress snapshots. Frames for
    /// other request ids (interleaved submissions on a shared
    /// connection) are skipped.
    pub fn run_to_verdict(
        &mut self,
        req: &CheckRequest,
        mut on_progress: impl FnMut(&ProgressFrame),
    ) -> Result<ServiceOutcome, WireError> {
        self.submit(req)?;
        self.wait_for(&req.request_id, &mut on_progress)
    }

    /// Blocks until the terminal frame for `request_id` arrives.
    pub fn wait_for(
        &mut self,
        request_id: &str,
        on_progress: &mut impl FnMut(&ProgressFrame),
    ) -> Result<ServiceOutcome, WireError> {
        loop {
            match self.next_event()? {
                Some(Frame::Progress(p)) if p.request_id == request_id => on_progress(&p),
                Some(Frame::Verdict(v)) if v.request_id == request_id => {
                    return Ok(ServiceOutcome::Verdict(v))
                }
                Some(Frame::Error {
                    request_id: id,
                    message,
                }) if id == request_id => {
                    return Ok(ServiceOutcome::Error {
                        request_id: id,
                        message,
                    })
                }
                Some(_) => continue,
                None => {
                    return Err(WireError::Protocol(format!(
                        "server hung up before a verdict for {request_id:?}"
                    )))
                }
            }
        }
    }
}

/// Reconnect backoff, capped: quick first retry for a blip, slower
/// later ones for a restarting server.
const RECONNECT_BACKOFF_MS: [u64; 4] = [100, 250, 500, 1000];

/// Submits `req` and rides out transport failures: on a connect error,
/// an I/O error mid-stream, or a server hangup before the terminal
/// frame, it reconnects (capped backoff) and resubmits the *same*
/// request id — the server resumes the run from that id's checkpoint
/// directory, so the eventual verdict is bit-identical to an
/// uninterrupted run's. A `duplicate request id` refusal is also
/// retried: it means the previous incarnation of this request is still
/// draining after our old connection died, and becomes resumable the
/// moment it reaches its terminal frame. Protocol violations and every
/// other server-reported error return immediately; `attempts` bounds
/// the total number of submissions (min 1).
pub fn run_with_reconnect(
    addr: &str,
    req: &CheckRequest,
    attempts: usize,
    mut on_progress: impl FnMut(&ProgressFrame),
) -> Result<ServiceOutcome, WireError> {
    let attempts = attempts.max(1);
    let mut last_err: Option<WireError> = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            let ms = RECONNECT_BACKOFF_MS[(attempt - 1).min(RECONNECT_BACKOFF_MS.len() - 1)];
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let mut conn = match connect(addr) {
            Ok(conn) => conn,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        match conn.run_to_verdict(req, &mut on_progress) {
            Ok(ServiceOutcome::Error {
                request_id,
                message,
            }) if message.contains("duplicate request id") && attempt + 1 < attempts => {
                last_err = Some(WireError::Protocol(format!(
                    "request {request_id:?} still draining: {message}"
                )));
            }
            Ok(outcome) => return Ok(outcome),
            Err(WireError::Io(e)) => last_err = Some(WireError::Io(e)),
            Err(WireError::Protocol(msg)) if msg.contains("hung up") => {
                last_err = Some(WireError::Protocol(msg));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        WireError::Protocol("no connection attempts were permitted".to_string())
    }))
}

/// The diffable verdict line the `slx_client` binary prints on stdout:
/// exactly the counters the resume contract pins (no elapsed, no
/// resumed-from depth), so a crashed-and-resumed request's line is
/// byte-identical to an uninterrupted run's — the CI probe diffs them.
#[must_use]
pub fn verdict_line(scenario: &str, v: &VerdictFrame) -> String {
    format!(
        "verdict={} scenario={} id={} findings={} configs={} transitions={} \
         dedup_hits={} peak_frontier={} truncated={}",
        if v.holds { "holds" } else { "violated" },
        scenario,
        v.request_id,
        v.findings,
        v.configs,
        v.transitions,
        v.dedup_hits,
        v.peak_frontier,
        v.truncated,
    )
}
