//! Client side of the check service: connect, submit, stream.

use crate::net::{Addr, Stream};
use crate::wire::{
    read_frame, read_hello, write_frame, write_hello, CheckRequest, Frame, ProgressFrame,
    VerdictFrame, WireError,
};

/// A connected client session.
pub struct Connection {
    stream: Stream,
}

/// How a request ended.
#[derive(Debug, Clone)]
pub enum ServiceOutcome {
    /// The run completed; here is its verdict.
    Verdict(VerdictFrame),
    /// The server refused or aborted the request.
    Error {
        /// The id the failure concerns.
        request_id: String,
        /// The server's reason.
        message: String,
    },
}

/// Connects to `addr` (`unix:<path>` or `tcp:<host:port>`) and performs
/// the hello exchange.
pub fn connect(addr: &str) -> Result<Connection, WireError> {
    let addr = Addr::parse(addr).map_err(WireError::Protocol)?;
    let mut stream = Stream::connect(&addr)?;
    write_hello(&mut stream)?;
    read_hello(&mut stream)?;
    Ok(Connection { stream })
}

impl Connection {
    /// Submits a check request. Results stream back interleaved with
    /// other requests on this connection; match on `request_id`.
    pub fn submit(&mut self, req: &CheckRequest) -> Result<(), WireError> {
        write_frame(&mut self.stream, &Frame::Submit(req.clone()))
    }

    /// Asks the server to cancel a request submitted on this
    /// connection. The run stops at its next level boundary; its
    /// checkpoint survives for a later resubmit-to-resume.
    pub fn cancel(&mut self, request_id: &str) -> Result<(), WireError> {
        write_frame(
            &mut self.stream,
            &Frame::Cancel {
                request_id: request_id.to_string(),
            },
        )
    }

    /// Reads the next server frame (`Ok(None)` = server hung up).
    pub fn next_event(&mut self) -> Result<Option<Frame>, WireError> {
        read_frame(&mut self.stream)
    }

    /// Submits `req` and blocks until *its* terminal frame, invoking
    /// `on_progress` for each of its progress snapshots. Frames for
    /// other request ids (interleaved submissions on a shared
    /// connection) are skipped.
    pub fn run_to_verdict(
        &mut self,
        req: &CheckRequest,
        mut on_progress: impl FnMut(&ProgressFrame),
    ) -> Result<ServiceOutcome, WireError> {
        self.submit(req)?;
        self.wait_for(&req.request_id, &mut on_progress)
    }

    /// Blocks until the terminal frame for `request_id` arrives.
    pub fn wait_for(
        &mut self,
        request_id: &str,
        on_progress: &mut impl FnMut(&ProgressFrame),
    ) -> Result<ServiceOutcome, WireError> {
        loop {
            match self.next_event()? {
                Some(Frame::Progress(p)) if p.request_id == request_id => on_progress(&p),
                Some(Frame::Verdict(v)) if v.request_id == request_id => {
                    return Ok(ServiceOutcome::Verdict(v))
                }
                Some(Frame::Error {
                    request_id: id,
                    message,
                }) if id == request_id => {
                    return Ok(ServiceOutcome::Error {
                        request_id: id,
                        message,
                    })
                }
                Some(_) => continue,
                None => {
                    return Err(WireError::Protocol(format!(
                        "server hung up before a verdict for {request_id:?}"
                    )))
                }
            }
        }
    }
}

/// The diffable verdict line the `slx_client` binary prints on stdout:
/// exactly the counters the resume contract pins (no elapsed, no
/// resumed-from depth), so a crashed-and-resumed request's line is
/// byte-identical to an uninterrupted run's — the CI probe diffs them.
#[must_use]
pub fn verdict_line(scenario: &str, v: &VerdictFrame) -> String {
    format!(
        "verdict={} scenario={} id={} findings={} configs={} transitions={} \
         dedup_hits={} peak_frontier={} truncated={}",
        if v.holds { "holds" } else { "violated" },
        scenario,
        v.request_id,
        v.findings,
        v.configs,
        v.transitions,
        v.dedup_hits,
        v.peak_frontier,
        v.truncated,
    )
}
