//! The check service: accept connections, queue requests, run them on
//! the kernel, stream progress and verdicts back.
//!
//! # Shape
//!
//! - one **accept thread** polls the listener (non-blocking + 10ms
//!   sleep) so it can observe shutdown. Transient accept errors (EINTR,
//!   a peer resetting before its accept) are retried; only a persistent
//!   hard-error streak stops the service;
//! - one **connection thread** per client reads frames under a
//!   per-connection read timeout: `Submit` is validated, checked
//!   against the in-flight id set (resubmitting an id that is still
//!   queued or running is refused with a structured `Error` frame —
//!   resubmit-to-resume only works on ids that have reached a terminal
//!   frame), and queued; `Cancel` flips the request's cancel flag. Idle
//!   timeout ticks re-send each in-flight request's freshest progress
//!   frame as a heartbeat, so a client waiting out a slow level still
//!   observes liveness. Client hangup cancels everything the connection
//!   submitted — a disconnected client's runs stop at their next level
//!   boundary (their checkpoints survive, so reconnecting and
//!   resubmitting resumes them);
//! - a bounded pool of **worker threads** drains a FIFO queue. Each
//!   request runs with checkpointing into its own directory under the
//!   server's checkpoint root, named by the request id.
//!
//! # Determinism and resume
//!
//! Workers pin every verdict-relevant checker knob explicitly
//! (threads, shards, symmetry off, delta spill codec, request-supplied
//! budgets), so the `SLX_ENGINE_*` environment never reaches a
//! server-run check and the engine's checkpoint header validation holds
//! across restarts under different environments. If a request's
//! directory already holds a committed image — the server was killed
//! mid-run, or the request was cancelled — resubmitting the same id
//! **resumes** from it, and the resume contract makes the final verdict
//! frame's counters bit-identical to an uninterrupted run's.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use slx_engine::{
    Checker, CheckpointStore, DetHashMap, FaultKind, FaultOp, FaultPlan, FaultPlane, SpillCodec,
};

use crate::net::{Addr, Listener, Stream};
use crate::scenario::{ScenarioRegistry, ScenarioRun};
use crate::wire::{
    read_frame, read_hello, validate_request_id, write_frame, write_hello, CheckRequest, Frame,
    ProgressFrame, VerdictFrame, WireError,
};

/// How long a connection read may block before an idle tick: long
/// enough that a chatty client never hits it, short enough that
/// heartbeats flow and a wedged peer cannot park the thread forever.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Consecutive hard accept errors (not `WouldBlock`, not transient)
/// before the accept loop gives up on the listener.
const MAX_ACCEPT_ERRORS: u32 = 64;

/// Tuning for [`CheckServer::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request checkpoint directories live under here (created on
    /// start). Survives restarts — it *is* the resume state.
    pub checkpoint_root: PathBuf,
    /// Worker threads draining the request queue (min 1).
    pub workers: usize,
    /// Checkpoint cadence in BFS levels (min 1).
    pub checkpoint_every: usize,
    /// Kernel threads per request. Kept at 1 by default: request-level
    /// parallelism comes from the worker pool.
    pub threads: usize,
    /// Crash-probe hook: park the worker (sleep forever) once a run has
    /// passed this many BFS levels, leaving a deterministic window for a
    /// harness to `kill -9` the server between two commits. `None` in
    /// normal operation.
    pub stall_after: Option<usize>,
    /// Fault-injection plan for the service's socket paths (accepts,
    /// per-connection reads and writes). `None` — every seam a no-op —
    /// in normal operation; the robustness suites arm it.
    pub fault_plan: Option<FaultPlan>,
}

impl ServerConfig {
    /// A config with the given root and defaults elsewhere (2 workers,
    /// cadence 2, 1 kernel thread, no stall).
    #[must_use]
    pub fn new(checkpoint_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            checkpoint_root: checkpoint_root.into(),
            workers: 2,
            checkpoint_every: 2,
            threads: 1,
            stall_after: None,
            fault_plan: None,
        }
    }
}

/// One queued request: what to run and where to stream results.
struct Job {
    req: CheckRequest,
    out: Arc<Mutex<Stream>>,
    cancel: Arc<AtomicBool>,
    /// The freshest progress frame this run has produced, re-sent by
    /// the connection thread as an idle-tick heartbeat. Cleared when
    /// the run reaches its terminal frame.
    last_progress: Arc<Mutex<Option<ProgressFrame>>>,
}

/// FIFO queue + shutdown flag, shared by connection and worker threads.
struct JobQueue {
    jobs: Mutex<std::collections::VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    /// Request ids queued or running right now — the duplicate-submit
    /// guard. A `Vec`, not a set: a handful of in-flight ids at most.
    active: Mutex<Vec<String>>,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            jobs: Mutex::new(std::collections::VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: Mutex::new(Vec::new()),
        }
    }

    /// Claims `id` for one queued-or-running request. `false` means the
    /// id is already in flight: the caller must refuse the submission
    /// (two concurrent runs would race on one checkpoint directory).
    fn try_admit(&self, id: &str) -> bool {
        let mut active = self.active.lock().expect("active lock");
        if active.iter().any(|a| a == id) {
            return false;
        }
        active.push(id.to_string());
        true
    }

    /// Frees `id` after its terminal frame: a resubmit now resumes from
    /// the request's checkpoint directory.
    fn release(&self, id: &str) {
        let mut active = self.active.lock().expect("active lock");
        active.retain(|a| a != id);
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("queue lock").push_back(job);
        self.ready.notify_one();
    }

    /// Pops the oldest job, blocking until one arrives or shutdown.
    fn pop(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .expect("queue lock");
            jobs = guard;
        }
    }

    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// The check service. Construct with [`CheckServer::start`].
pub struct CheckServer;

/// A running server: its resolved address and its shutdown handle.
pub struct ServerHandle {
    local_addr: String,
    queue: Arc<JobQueue>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl CheckServer {
    /// Binds `addr` (`unix:<path>` or `tcp:<host:port>`), spawns the
    /// accept loop and `config.workers` workers, and returns
    /// immediately.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        registry: ScenarioRegistry,
    ) -> std::io::Result<ServerHandle> {
        let addr = Addr::parse(addr).map_err(std::io::Error::other)?;
        std::fs::create_dir_all(&config.checkpoint_root)?;
        let listener = Listener::bind(&addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let queue = Arc::new(JobQueue::new());
        let registry = Arc::new(registry);
        let config = Arc::new(config);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let registry = Arc::clone(&registry);
                let config = Arc::clone(&config);
                std::thread::spawn(move || worker_loop(&queue, &registry, &config))
            })
            .collect();

        let plane = match &config.fault_plan {
            Some(plan) => FaultPlane::armed(plan.clone()),
            None => FaultPlane::disabled(),
        };
        let accept_queue = Arc::clone(&queue);
        let accept_thread = std::thread::spawn(move || {
            // Transient accept failures (EINTR, a peer that reset before
            // we reached its connection, kernel resource blips) must not
            // kill the service; only a persistent hard-error streak does.
            let mut hard_errors = 0u32;
            while !accept_queue.shutdown.load(Ordering::SeqCst) {
                if let Some(kind) = plane.inject(FaultOp::Accept) {
                    // Injected accept fault: exercise the retry path
                    // without needing a real socket error.
                    std::thread::sleep(Duration::from_millis(match kind {
                        FaultKind::Stall => 50,
                        _ => 1,
                    }));
                    continue;
                }
                match listener.accept() {
                    Ok(mut stream) => {
                        hard_errors = 0;
                        stream.set_fault_plane(plane.clone());
                        let queue = Arc::clone(&accept_queue);
                        std::thread::spawn(move || {
                            // A misbehaving client only poisons its own
                            // connection thread.
                            let _ = serve_connection(stream, &queue);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::Interrupted
                                | std::io::ErrorKind::ConnectionReset
                                | std::io::ErrorKind::ConnectionAborted
                        ) =>
                    {
                        hard_errors = 0;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => {
                        hard_errors += 1;
                        if hard_errors >= MAX_ACCEPT_ERRORS {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        });

        Ok(ServerHandle {
            local_addr,
            queue,
            accept_thread: Some(accept_thread),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address in connectable form (`tcp:127.0.0.1:<port>`
    /// with the OS-assigned port resolved).
    #[must_use]
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Stops accepting, drains nothing further (queued jobs are
    /// dropped), and joins the accept and worker threads. In-flight
    /// runs finish their current job first.
    pub fn shutdown(mut self) {
        self.queue.initiate_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks until the accept thread exits (i.e. forever in normal
    /// operation — the server binary's main thread parks here).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// One client connection: hello exchange, then a read loop dispatching
/// `Submit`/`Cancel`. Returns on hangup or protocol error, cancelling
/// everything this connection submitted.
fn serve_connection(stream: Stream, queue: &Arc<JobQueue>) -> Result<(), WireError> {
    let mut reader = stream;
    let writer = Arc::new(Mutex::new(reader.try_clone()?));
    write_hello(&mut *writer.lock().expect("writer lock"))?;
    read_hello(&mut reader)?;
    // After the hello, bound every read: a silent peer cannot park this
    // thread forever, and the timeout ticks drive the heartbeats below.
    let _ = reader.set_read_timeout(Some(READ_TIMEOUT));

    // The cancel flags of every request this connection submitted, so
    // hangup (or an explicit Cancel) can reach the running workers.
    let mut flags: DetHashMap<String, Arc<AtomicBool>> = DetHashMap::default();
    // Each submitted request's freshest progress frame, re-sent on idle
    // ticks so a client waiting out a slow level still sees liveness.
    let mut heartbeats: DetHashMap<String, Arc<Mutex<Option<ProgressFrame>>>> =
        DetHashMap::default();

    let result = loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Submit(req))) => {
                if let Err(e) = validate_request_id(&req.request_id) {
                    let _ = write_frame(
                        &mut *writer.lock().expect("writer lock"),
                        &Frame::Error {
                            request_id: req.request_id.clone(),
                            message: e.to_string(),
                        },
                    );
                    continue;
                }
                if !queue.try_admit(&req.request_id) {
                    // Two concurrent runs of one id would race on one
                    // checkpoint directory; refuse with a structured
                    // terminal frame. Resubmit-to-resume stays available
                    // the moment the in-flight run reaches its terminal
                    // frame.
                    let _ = write_frame(
                        &mut *writer.lock().expect("writer lock"),
                        &Frame::Error {
                            request_id: req.request_id.clone(),
                            message: format!(
                                "duplicate request id {:?}: that request is still \
                                 running (or queued); cancel it or wait for its \
                                 terminal frame before resubmitting",
                                req.request_id
                            ),
                        },
                    );
                    continue;
                }
                let cancel = Arc::new(AtomicBool::new(false));
                let last_progress = Arc::new(Mutex::new(None));
                flags.insert(req.request_id.clone(), Arc::clone(&cancel));
                heartbeats.insert(req.request_id.clone(), Arc::clone(&last_progress));
                queue.push(Job {
                    req,
                    out: Arc::clone(&writer),
                    cancel,
                    last_progress,
                });
            }
            Ok(Some(Frame::Cancel { request_id })) => {
                if let Some(flag) = flags.get(&request_id) {
                    flag.store(true, Ordering::SeqCst);
                }
            }
            // Server-to-client frames arriving here mean a confused
            // peer; drop the connection.
            Ok(Some(_)) => break Err(WireError::Malformed("client sent a server-side frame")),
            Ok(None) => break Ok(()),
            // An idle tick, not a failure: the frame reader issues the
            // first byte of a frame as its own read, so a timeout
            // between frames leaves the stream aligned and retryable.
            // Heartbeat the in-flight runs and keep listening.
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                let mut hung_up = false;
                {
                    let mut w = writer.lock().expect("writer lock");
                    for hb in heartbeats.values() {
                        let frame = hb.lock().expect("progress lock").clone();
                        if let Some(p) = frame {
                            if write_frame(&mut *w, &Frame::Progress(p)).is_err() {
                                hung_up = true;
                                break;
                            }
                        }
                    }
                }
                if hung_up {
                    break Ok(());
                }
            }
            Err(e) => break Err(e),
        }
    };
    // Hangup (clean or not) cancels this connection's in-flight runs:
    // nobody is listening, and their checkpoints let a resubmit resume.
    for flag in flags.values() {
        flag.store(true, Ordering::SeqCst);
    }
    result
}

/// The per-request checker, every verdict-relevant knob pinned (no
/// `SLX_ENGINE_*` influence) so checkpoint headers validate across
/// restarts under different environments.
fn request_checker(config: &ServerConfig, req: &CheckRequest, dir: &std::path::Path) -> Checker {
    let mut checker = Checker::parallel_bfs(config.threads.max(1))
        .with_shards(8)
        .with_symmetry(false)
        .with_spill_codec(SpillCodec::Delta)
        .with_mem_budget(usize::try_from(req.mem_budget.unwrap_or(0)).unwrap_or(0))
        .with_checkpoint(dir, config.checkpoint_every.max(1));
    if let Some(budget) = req.config_budget {
        checker = checker.with_budget(usize::try_from(budget).unwrap_or(usize::MAX));
    }
    if CheckpointStore::exists(dir) {
        checker = checker.resume(dir);
    }
    checker
}

/// Drains the queue until shutdown.
fn worker_loop(queue: &Arc<JobQueue>, registry: &ScenarioRegistry, config: &ServerConfig) {
    while let Some(job) = queue.pop() {
        run_job(&job, registry, config);
        // The terminal frame is written: stop heartbeating this id and
        // free it for resubmission (which resumes from its checkpoint).
        *job.last_progress.lock().expect("progress lock") = None;
        queue.release(&job.req.request_id);
    }
}

/// Runs one request end to end and writes its terminal frame.
fn run_job(job: &Job, registry: &ScenarioRegistry, config: &ServerConfig) {
    let req = &job.req;
    let reply = |frame: &Frame| -> bool {
        let mut out = job.out.lock().expect("writer lock");
        write_frame(&mut *out, frame).is_ok()
    };

    let Some(scenario) = registry.get(&req.scenario) else {
        reply(&Frame::Error {
            request_id: req.request_id.clone(),
            message: format!(
                "unknown scenario {:?} (available: {})",
                req.scenario,
                registry.names().join(", ")
            ),
        });
        return;
    };

    let dir = config.checkpoint_root.join(&req.request_id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        reply(&Frame::Error {
            request_id: req.request_id.clone(),
            message: format!("cannot create checkpoint dir: {e}"),
        });
        return;
    }
    let checker = request_checker(config, req, &dir);

    let cancel = Arc::clone(&job.cancel);
    let every = req.progress_every.max(1);
    let stall_after = config.stall_after;
    let out = Arc::clone(&job.out);
    let last_progress = Arc::clone(&job.last_progress);
    let request_id = req.request_id.clone();
    let mut writable = true;
    let mut progress = move |depth: usize, stats: &slx_engine::ExploreStats| -> bool {
        // The hook runs right after the level's checkpoint commit, so a
        // cancellation observed here never outruns durable state.
        if cancel.load(Ordering::SeqCst) {
            return false;
        }
        if let Some(stall) = stall_after {
            if depth >= stall {
                // CI crash window: at least `stall / every` images are
                // committed; the harness's SIGKILL lands while we sleep.
                eprintln!(
                    "slx-server: request {request_id} parked at depth {depth} — awaiting SIGKILL"
                );
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        if (depth as u64).is_multiple_of(every) {
            let snapshot = ProgressFrame {
                request_id: request_id.clone(),
                depth: depth as u64,
                configs: stats.configs as u64,
                transitions: stats.transitions as u64,
                dedup_hits: stats.dedup_hits as u64,
                peak_frontier: stats.peak_frontier as u64,
                elapsed_micros: u64::try_from(stats.elapsed.as_micros()).unwrap_or(u64::MAX),
                checkpoints_written: stats.checkpoints_written as u64,
                resumed_from_depth: stats.resumed_from_depth.map(|d| d as u64),
            };
            // Published for the connection thread's idle-tick heartbeat
            // before the live send, so even a send that blocks never
            // starves the heartbeat of a fresh frame.
            *last_progress.lock().expect("progress lock") = Some(snapshot.clone());
            let frame = Frame::Progress(snapshot);
            if writable {
                let mut w = out.lock().expect("writer lock");
                if write_frame(&mut *w, &frame).is_err() {
                    // The client is gone; keep running (the checkpoint
                    // directory is the deliverable) but stop writing.
                    writable = false;
                }
            }
        }
        true
    };

    // A panicking scenario (header mismatch on resume, malformed env,
    // space bug) must kill neither the worker nor the connection — it
    // becomes the request's terminal Error frame.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scenario.run(req, checker, &mut progress)
    }));

    match outcome {
        Ok(run) if job.cancel.load(Ordering::SeqCst) => {
            reply(&Frame::Error {
                request_id: req.request_id.clone(),
                message: format!(
                    "cancelled at a level boundary after {} configs; \
                     resubmit the id to resume from the last committed checkpoint",
                    run.stats.configs
                ),
            });
        }
        Ok(run) => {
            reply(&Frame::Verdict(verdict_frame(req, &run)));
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "worker panicked".to_string());
            reply(&Frame::Error {
                request_id: req.request_id.clone(),
                message,
            });
        }
    }
    let _ = std::io::stderr().flush();
}

/// Renders a completed run as its terminal frame.
fn verdict_frame(req: &CheckRequest, run: &ScenarioRun) -> VerdictFrame {
    VerdictFrame {
        request_id: req.request_id.clone(),
        holds: run.holds,
        findings: run.findings as u64,
        configs: run.stats.configs as u64,
        transitions: run.stats.transitions as u64,
        dedup_hits: run.stats.dedup_hits as u64,
        peak_frontier: run.stats.peak_frontier as u64,
        truncated: run.stats.truncated,
        elapsed_micros: u64::try_from(run.stats.elapsed.as_micros()).unwrap_or(u64::MAX),
        resumed_from_depth: run.stats.resumed_from_depth.map(|d| d as u64),
    }
}
