//! Transport: one address grammar over Unix-domain and TCP sockets.
//!
//! Addresses are `unix:<path>` or `tcp:<host:port>`. Unix sockets are
//! the default deployment (local check service, filesystem
//! permissions); TCP exists for cross-host use and for tests that want
//! an OS-assigned port (`tcp:127.0.0.1:0`).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A parsed service address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `unix:<path>` — a Unix-domain socket at the given path.
    Unix(PathBuf),
    /// `tcp:<host:port>` — a TCP socket (port 0 = OS-assigned).
    Tcp(String),
}

impl Addr {
    /// Parses `unix:<path>` / `tcp:<host:port>`.
    pub fn parse(addr: &str) -> Result<Addr, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".into());
            }
            Ok(Addr::Unix(PathBuf::from(path)))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            if hostport.is_empty() {
                return Err("tcp: address needs host:port".into());
            }
            Ok(Addr::Tcp(hostport.to_string()))
        } else {
            Err(format!("address {addr:?} must start with unix: or tcp:"))
        }
    }
}

/// A bound listening socket of either family.
pub enum Listener {
    /// Unix-domain listener (the socket file is removed on bind if a
    /// stale one is in the way, and by [`Listener`]'s owner on drop).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`, replacing a stale Unix socket file if present.
    pub fn bind(addr: &Addr) -> std::io::Result<Listener> {
        match addr {
            Addr::Unix(path) => {
                // A previous server killed without cleanup leaves the
                // socket file behind; binding over it needs the unlink.
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Addr::Tcp(hostport) => Ok(Listener::Tcp(TcpListener::bind(hostport.as_str())?)),
        }
    }

    /// The bound address in parseable form (TCP reports the OS-assigned
    /// port, so `tcp:127.0.0.1:0` turns into a connectable address).
    pub fn local_addr(&self) -> std::io::Result<String> {
        match self {
            Listener::Unix(_, path) => Ok(format!("unix:{}", path.display())),
            Listener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
        }
    }

    /// Switches the listener to non-blocking accepts (the accept loop
    /// polls so it can observe shutdown).
    pub fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    /// Accepts one connection, if one is pending.
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Frames are small and latency-sensitive (progress
                // snapshots); batching them behind Nagle helps nothing.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected socket of either family.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr`.
    pub fn connect(addr: &Addr) -> std::io::Result<Stream> {
        match addr {
            Addr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Addr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }

    /// A second handle on the same connection (reader and writer sides
    /// live on different threads server-side).
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match self {
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}
