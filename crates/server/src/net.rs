//! Transport: one address grammar over Unix-domain and TCP sockets.
//!
//! Addresses are `unix:<path>` or `tcp:<host:port>`. Unix sockets are
//! the default deployment (local check service, filesystem
//! permissions); TCP exists for cross-host use and for tests that want
//! an OS-assigned port (`tcp:127.0.0.1:0`).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use slx_engine::{FaultKind, FaultOp, FaultPlane};

/// A parsed service address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// `unix:<path>` — a Unix-domain socket at the given path.
    Unix(PathBuf),
    /// `tcp:<host:port>` — a TCP socket (port 0 = OS-assigned).
    Tcp(String),
}

impl Addr {
    /// Parses `unix:<path>` / `tcp:<host:port>`.
    pub fn parse(addr: &str) -> Result<Addr, String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".into());
            }
            Ok(Addr::Unix(PathBuf::from(path)))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            if hostport.is_empty() {
                return Err("tcp: address needs host:port".into());
            }
            Ok(Addr::Tcp(hostport.to_string()))
        } else {
            Err(format!("address {addr:?} must start with unix: or tcp:"))
        }
    }
}

/// A bound listening socket of either family.
pub enum Listener {
    /// Unix-domain listener (the socket file is removed on bind if a
    /// stale one is in the way, and by [`Listener`]'s owner on drop).
    Unix(UnixListener, PathBuf),
    /// TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`, replacing a stale Unix socket file if present.
    pub fn bind(addr: &Addr) -> std::io::Result<Listener> {
        match addr {
            Addr::Unix(path) => {
                // A previous server killed without cleanup leaves the
                // socket file behind; binding over it needs the unlink.
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            Addr::Tcp(hostport) => Ok(Listener::Tcp(TcpListener::bind(hostport.as_str())?)),
        }
    }

    /// The bound address in parseable form (TCP reports the OS-assigned
    /// port, so `tcp:127.0.0.1:0` turns into a connectable address).
    pub fn local_addr(&self) -> std::io::Result<String> {
        match self {
            Listener::Unix(_, path) => Ok(format!("unix:{}", path.display())),
            Listener::Tcp(l) => Ok(format!("tcp:{}", l.local_addr()?)),
        }
    }

    /// Switches the listener to non-blocking accepts (the accept loop
    /// polls so it can observe shutdown).
    pub fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(on),
            Listener::Tcp(l) => l.set_nonblocking(on),
        }
    }

    /// Accepts one connection, if one is pending.
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::plain(StreamInner::Unix(s))),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Frames are small and latency-sensitive (progress
                // snapshots); batching them behind Nagle helps nothing.
                let _ = s.set_nodelay(true);
                Stream::plain(StreamInner::Tcp(s))
            }),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The raw socket under a [`Stream`].
#[derive(Debug)]
enum StreamInner {
    /// Unix-domain connection.
    Unix(UnixStream),
    /// TCP connection.
    Tcp(TcpStream),
}

/// A connected socket of either family, with a fault-injection seam on
/// every read and write ([`Stream::set_fault_plane`]; disarmed — an
/// inline no-op — outside the robustness suites).
#[derive(Debug)]
pub struct Stream {
    inner: StreamInner,
    plane: FaultPlane,
}

impl Stream {
    fn plain(inner: StreamInner) -> Stream {
        Stream {
            inner,
            plane: FaultPlane::disabled(),
        }
    }

    /// Connects to `addr`.
    pub fn connect(addr: &Addr) -> std::io::Result<Stream> {
        match addr {
            Addr::Unix(path) => {
                UnixStream::connect(path).map(|s| Stream::plain(StreamInner::Unix(s)))
            }
            Addr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                Stream::plain(StreamInner::Tcp(s))
            }),
        }
    }

    /// Arms (or disarms) the fault-injection plane this stream draws
    /// socket faults from.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.plane = plane;
    }

    /// Bounds how long a read blocks. Reads past the deadline fail with
    /// `WouldBlock`/`TimedOut`; the frame reader issues the first byte
    /// of a frame as its own read, so a timeout *between* frames leaves
    /// the stream aligned and is safely retryable.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.inner {
            StreamInner::Unix(s) => s.set_read_timeout(timeout),
            StreamInner::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// A second handle on the same connection (reader and writer sides
    /// live on different threads server-side). The clone draws from the
    /// same fault plane.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        let inner = match &self.inner {
            StreamInner::Unix(s) => s.try_clone().map(StreamInner::Unix),
            StreamInner::Tcp(s) => s.try_clone().map(StreamInner::Tcp),
        }?;
        Ok(Stream {
            inner,
            plane: self.plane.clone(),
        })
    }

    /// Shuts down both directions, unblocking any reader.
    pub fn shutdown(&self) {
        match &self.inner {
            StreamInner::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            StreamInner::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for StreamInner {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            StreamInner::Unix(s) => s.read(buf),
            StreamInner::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for StreamInner {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            StreamInner::Unix(s) => s.write(buf),
            StreamInner::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            StreamInner::Unix(s) => s.flush(),
            StreamInner::Tcp(s) => s.flush(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.plane.inject(FaultOp::SockRead) {
            None => {}
            // A stall delays the bytes without corrupting them.
            Some(FaultKind::Stall) => std::thread::sleep(Duration::from_millis(50)),
            // A short read delivers one byte: legal for `read`, and
            // `read_exact` loops — the caller must tolerate partial
            // transfers, which is exactly what this arm checks.
            Some(FaultKind::Short) if buf.len() > 1 => return self.inner.read(&mut buf[..1]),
            // EINTR and connection resets surface as errors; `read_exact`
            // retries the former transparently, the latter is fatal.
            Some(kind) => return Err(kind.to_io_error()),
        }
        self.inner.read(buf)
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.plane.inject(FaultOp::SockWrite) {
            None => {}
            Some(FaultKind::Stall) => std::thread::sleep(Duration::from_millis(50)),
            // A short write lands a prefix: legal for `write`, and
            // `write_all` loops over the remainder.
            Some(FaultKind::Short) if buf.len() > 1 => {
                return self.inner.write(&buf[..buf.len() / 2])
            }
            Some(kind) => return Err(kind.to_io_error()),
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}
