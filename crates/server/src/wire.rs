//! The check-service wire protocol.
//!
//! One connection = one byte stream in each direction, carrying:
//!
//! 1. a **hello**: 8 magic bytes (`SLXWIRE\0`) plus one protocol-version
//!    byte, written by *both* sides before anything else (each side
//!    writes its hello, then reads and validates the peer's — no
//!    read-before-write deadlock);
//! 2. a sequence of **frames**: a 4-byte little-endian body length
//!    followed by the body — one tag byte plus the frame's
//!    [`StateCodec`] payload.
//!
//! The payloads reuse the engine's persistence codec (LEB128 varints,
//! self-delimiting records) instead of inventing a second binary format,
//! and inherit its discipline:
//!
//! - **decode totality** — malformed, truncated, or oversized input
//!   yields a [`WireError`], never a panic and never an unbounded read.
//!   The length prefix is validated against [`MAX_FRAME`] *before* any
//!   body byte is read, so a hostile length cannot make the server
//!   allocate or block on gigabytes;
//! - **versioning** — [`PROTOCOL_VERSION`] is negotiated in the hello
//!   and bumped on any frame-layout change; a decoder never sees bytes
//!   from a layout it does not know (see `slx_engine::codec`'s
//!   persistence-and-compatibility notes).
//!
//! Clean EOF *between* frames is a normal hangup ([`read_frame`] returns
//! `Ok(None)`); EOF *inside* a frame is a truncation error.

use std::io::{Read, Write};

use slx_engine::StateCodec;

/// First bytes on the wire in both directions.
pub const MAGIC: &[u8; 8] = b"SLXWIRE\0";

/// Version byte following [`MAGIC`]. Bump on **any** change to the
/// frame set, tag values, or payload layouts; peers refuse mismatches.
pub const PROTOCOL_VERSION: u8 = 1;

/// Largest accepted frame body. Requests and verdicts are tiny; this
/// bound exists so a corrupt or hostile length prefix fails fast.
pub const MAX_FRAME: usize = 1 << 20;

/// Everything that can go wrong on the wire. `Io` covers transport
/// failures; the rest are protocol violations by the peer.
#[derive(Debug)]
pub enum WireError {
    /// Transport read/write failure (includes EOF inside a frame).
    Io(std::io::Error),
    /// The peer's hello did not start with [`MAGIC`].
    BadMagic,
    /// The peer speaks a different [`PROTOCOL_VERSION`].
    Version(u8),
    /// A frame length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The advertised body length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// A frame body failed to decode (bad tag, truncated payload,
    /// trailing bytes, invalid UTF-8, ...).
    Malformed(&'static str),
    /// The peer reported a request-level failure (unknown scenario,
    /// invalid request id, cancelled run, worker panic).
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadMagic => write!(f, "peer did not speak the SLXWIRE protocol"),
            WireError::Version(v) => write!(
                f,
                "peer speaks protocol version {v}, this build speaks {PROTOCOL_VERSION}"
            ),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A check request: which scenario to run and under which knobs. The
/// `request_id` names the server-side checkpoint directory, so
/// resubmitting the same id after a server crash (or a cancel) *resumes*
/// the run from its last committed image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRequest {
    /// Caller-chosen identity: `[A-Za-z0-9._-]`, no leading `.`, at most
    /// 64 bytes. Doubles as the checkpoint directory name.
    pub request_id: String,
    /// Registered scenario name (see `ScenarioRegistry`).
    pub scenario: String,
    /// Exploration depth bound, scenario-interpreted.
    pub depth: u64,
    /// Optional cap on expanded states (`Checker::with_budget`).
    pub config_budget: Option<u64>,
    /// Optional frontier memory budget in bytes; `None` (and `Some(0)`)
    /// pin spilling off so verdicts are environment-independent.
    pub mem_budget: Option<u64>,
    /// Stream a progress frame every this many BFS levels (0 = treat
    /// as 1).
    pub progress_every: u64,
}

impl StateCodec for CheckRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.request_id.encode(out);
        self.scenario.encode(out);
        self.depth.encode(out);
        self.config_budget.encode(out);
        self.mem_budget.encode(out);
        self.progress_every.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(CheckRequest {
            request_id: String::decode(input)?,
            scenario: String::decode(input)?,
            depth: u64::decode(input)?,
            config_budget: Option::decode(input)?,
            mem_budget: Option::decode(input)?,
            progress_every: u64::decode(input)?,
        })
    }
}

/// A periodic progress snapshot: the lifetime [`ExploreStats`] counters
/// a client needs to render a live rate, taken at a BFS level boundary
/// (immediately after the level's checkpoint commit, so everything
/// reported here is also durable).
///
/// [`ExploreStats`]: slx_engine::ExploreStats
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressFrame {
    /// The request this snapshot belongs to.
    pub request_id: String,
    /// BFS level about to be expanded.
    pub depth: u64,
    /// Lifetime distinct states expanded.
    pub configs: u64,
    /// Lifetime successors generated.
    pub transitions: u64,
    /// Lifetime dedup hits.
    pub dedup_hits: u64,
    /// Peak frontier width so far.
    pub peak_frontier: u64,
    /// Lifetime wall-clock, microseconds (accumulates across resumes).
    pub elapsed_micros: u64,
    /// Checkpoints committed over the run's lifetime.
    pub checkpoints_written: u64,
    /// Level this run resumed from, if it did.
    pub resumed_from_depth: Option<u64>,
}

impl StateCodec for ProgressFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.request_id.encode(out);
        self.depth.encode(out);
        self.configs.encode(out);
        self.transitions.encode(out);
        self.dedup_hits.encode(out);
        self.peak_frontier.encode(out);
        self.elapsed_micros.encode(out);
        self.checkpoints_written.encode(out);
        self.resumed_from_depth.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ProgressFrame {
            request_id: String::decode(input)?,
            depth: u64::decode(input)?,
            configs: u64::decode(input)?,
            transitions: u64::decode(input)?,
            dedup_hits: u64::decode(input)?,
            peak_frontier: u64::decode(input)?,
            elapsed_micros: u64::decode(input)?,
            checkpoints_written: u64::decode(input)?,
            resumed_from_depth: Option::decode(input)?,
        })
    }
}

/// The terminal frame of a successful request. The counter fields are
/// exactly the ones the engine's resume contract pins bit-identically,
/// so a crashed-and-resumed request's verdict frame matches an
/// uninterrupted one's — the CI probe diffs them byte for byte.
/// `elapsed_micros` and `resumed_from_depth` legitimately differ across
/// a resume and are excluded from that comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictFrame {
    /// The request this verdict concludes.
    pub request_id: String,
    /// Whether the checked property held everywhere explored.
    pub holds: bool,
    /// Number of violating findings.
    pub findings: u64,
    /// Distinct states expanded.
    pub configs: u64,
    /// Successors generated.
    pub transitions: u64,
    /// Dedup hits.
    pub dedup_hits: u64,
    /// Peak frontier width.
    pub peak_frontier: u64,
    /// Whether any bound cut the exploration short.
    pub truncated: bool,
    /// Lifetime wall-clock, microseconds.
    pub elapsed_micros: u64,
    /// Level this run resumed from, if it did.
    pub resumed_from_depth: Option<u64>,
}

impl StateCodec for VerdictFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.request_id.encode(out);
        self.holds.encode(out);
        self.findings.encode(out);
        self.configs.encode(out);
        self.transitions.encode(out);
        self.dedup_hits.encode(out);
        self.peak_frontier.encode(out);
        self.truncated.encode(out);
        self.elapsed_micros.encode(out);
        self.resumed_from_depth.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(VerdictFrame {
            request_id: String::decode(input)?,
            holds: bool::decode(input)?,
            findings: u64::decode(input)?,
            configs: u64::decode(input)?,
            transitions: u64::decode(input)?,
            dedup_hits: u64::decode(input)?,
            peak_frontier: u64::decode(input)?,
            truncated: bool::decode(input)?,
            elapsed_micros: u64::decode(input)?,
            resumed_from_depth: Option::decode(input)?,
        })
    }
}

/// Everything that crosses the wire after the hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: schedule a check.
    Submit(CheckRequest),
    /// Client → server: cancel an in-flight or queued request. The run
    /// stops at its next level boundary, *after* that boundary's
    /// checkpoint commit — resubmitting the id resumes from there.
    Cancel {
        /// The id to cancel.
        request_id: String,
    },
    /// Server → client: periodic progress snapshot.
    Progress(ProgressFrame),
    /// Server → client: terminal success frame.
    Verdict(VerdictFrame),
    /// Server → client: terminal failure frame (unknown scenario, bad
    /// request id, cancelled run, worker panic).
    Error {
        /// The id the failure concerns (empty if unattributable).
        request_id: String,
        /// Human-readable cause.
        message: String,
    },
}

const TAG_SUBMIT: u8 = 1;
const TAG_CANCEL: u8 = 2;
const TAG_PROGRESS: u8 = 3;
const TAG_VERDICT: u8 = 4;
const TAG_ERROR: u8 = 5;

impl Frame {
    /// Encodes the frame *body* (tag + payload), without the length
    /// prefix — [`write_frame`] adds that.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Submit(req) => {
                out.push(TAG_SUBMIT);
                req.encode(&mut out);
            }
            Frame::Cancel { request_id } => {
                out.push(TAG_CANCEL);
                request_id.encode(&mut out);
            }
            Frame::Progress(p) => {
                out.push(TAG_PROGRESS);
                p.encode(&mut out);
            }
            Frame::Verdict(v) => {
                out.push(TAG_VERDICT);
                v.encode(&mut out);
            }
            Frame::Error {
                request_id,
                message,
            } => {
                out.push(TAG_ERROR);
                request_id.encode(&mut out);
                message.encode(&mut out);
            }
        }
        out
    }

    /// Decodes a frame body. Total: unknown tags, truncated payloads,
    /// and trailing bytes are all `Err`, never panics. A body must be
    /// consumed *exactly* — trailing bytes mean the peer and this build
    /// disagree about the layout, which is a refusal, not a shrug.
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut input = body;
        let tag = *input.first().ok_or(WireError::Malformed("empty body"))?;
        input = &input[1..];
        let frame = match tag {
            TAG_SUBMIT => Frame::Submit(
                CheckRequest::decode(&mut input).ok_or(WireError::Malformed("submit payload"))?,
            ),
            TAG_CANCEL => Frame::Cancel {
                request_id: String::decode(&mut input)
                    .ok_or(WireError::Malformed("cancel payload"))?,
            },
            TAG_PROGRESS => Frame::Progress(
                ProgressFrame::decode(&mut input)
                    .ok_or(WireError::Malformed("progress payload"))?,
            ),
            TAG_VERDICT => Frame::Verdict(
                VerdictFrame::decode(&mut input).ok_or(WireError::Malformed("verdict payload"))?,
            ),
            TAG_ERROR => Frame::Error {
                request_id: String::decode(&mut input)
                    .ok_or(WireError::Malformed("error payload"))?,
                message: String::decode(&mut input).ok_or(WireError::Malformed("error payload"))?,
            },
            _ => return Err(WireError::Malformed("unknown frame tag")),
        };
        if !input.is_empty() {
            return Err(WireError::Malformed("trailing bytes after frame payload"));
        }
        Ok(frame)
    }
}

/// Writes this side's hello. Call before any read — both sides write
/// first, then validate the peer's.
pub fn write_hello(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(MAGIC)?;
    w.write_all(&[PROTOCOL_VERSION])?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the peer's hello.
pub fn read_hello(r: &mut impl Read) -> Result<(), WireError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != PROTOCOL_VERSION {
        return Err(WireError::Version(version[0]));
    }
    Ok(())
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let body = frame.encode_body();
    assert!(body.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    let len = u32::try_from(body.len()).expect("MAX_FRAME fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is clean EOF at a frame boundary (the
/// peer hung up); EOF inside a frame, an oversized length prefix, or a
/// body that fails to decode are errors. The oversized check happens
/// before a single body byte is read.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut len_bytes = [0u8; 4];
    match r.read(&mut len_bytes[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_bytes[1..])?,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode_body(&body).map(Some)
}

/// Validates a caller-chosen request id for use as a checkpoint
/// directory name: non-empty, at most 64 bytes, `[A-Za-z0-9._-]` only,
/// no leading `.` (which would hide the directory and admits `..`).
pub fn validate_request_id(id: &str) -> Result<(), WireError> {
    if id.is_empty() || id.len() > 64 {
        return Err(WireError::Malformed(
            "request id must be 1..=64 bytes of [A-Za-z0-9._-]",
        ));
    }
    if id.starts_with('.') {
        return Err(WireError::Malformed("request id must not start with '.'"));
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(WireError::Malformed(
            "request id must be 1..=64 bytes of [A-Za-z0-9._-]",
        ));
    }
    Ok(())
}
