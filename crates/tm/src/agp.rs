//! Algorithm I(1,2) — the paper's Algorithm 1, step for step.

use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::{Operation, ProcessId, Response, Value};
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect};

use crate::word::TmWord;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// `start()`: write the new timestamp to `R[i]`.
    StartAnnounce,
    /// `start()`: copy `C` into local memory.
    StartReadC,
    /// `tryC()`: take the snapshot of `R`.
    CommitScan,
    /// `tryC()`: attempt the version CAS.
    CommitCas,
    /// Respond without touching memory (local reads/writes).
    LocalRespond(Response),
}

/// **Algorithm I(1,2)** (Algorithm 1 of the paper): implements a TM
/// ensuring property `S` (opacity + the equal-timestamp abort rule) and
/// (1,2)-freedom.
///
/// Shared state: one CAS object `C = (version, values)` and one snapshot
/// object `R[1..n]` of timestamps. Per process: `timestamp` (monotone
/// across its transactions), and the transaction-local `version`,
/// `values`, copied from `C` at `start()`.
///
/// Operation behaviour, verbatim from the paper's pseudocode:
///
/// - `start()`: `timestamp += 1; R[i] ← timestamp; (version, oldval) ←
///   C.read; values ← oldval; return ok`;
/// - `x.read()` / `x.write(v)`: purely local;
/// - `tryC()`: `snapshot ← R.scan(); count ← |{j : snapshot[j] ≥
///   timestamp}|; if count ≥ 3 return A; if C.cas((version, oldval),
///   (version+1, values)) return C else return A`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AgpTm {
    c: ObjId,
    r: ObjId,
    me: ProcessId,
    n: usize,
    nvars: usize,
    timestamp: u64,
    version: Option<u64>,
    old_values: Vec<Value>,
    values: Vec<Value>,
    pc: Pc,
    /// Aborts caused by the timestamp rule (`count ≥ 3`), for the benches.
    ts_aborts: u64,
    /// Aborts caused by a failed CAS, for the benches.
    cas_aborts: u64,
}

impl AgpTm {
    /// Allocates the shared objects: `C = (1, (0,...,0))` and
    /// `R[1..n] = (0,...,0)`.
    pub fn alloc(mem: &mut Memory<TmWord>, n: usize, nvars: usize) -> (ObjId, ObjId) {
        let c = mem.alloc_cas(TmWord::initial(nvars));
        let r = mem.alloc_snapshot(n, TmWord::Ts(0));
        (c, r)
    }

    /// Creates the algorithm instance of process `me` (of `n`), over
    /// `nvars` transactional variables.
    pub fn new(c: ObjId, r: ObjId, me: ProcessId, n: usize, nvars: usize) -> Self {
        AgpTm {
            c,
            r,
            me,
            n,
            nvars,
            timestamp: 0,
            version: None,
            old_values: vec![Value::new(0); nvars],
            values: vec![Value::new(0); nvars],
            pc: Pc::Idle,
            ts_aborts: 0,
            cas_aborts: 0,
        }
    }

    /// Aborts caused by the timestamp rule so far.
    pub fn ts_aborts(&self) -> u64 {
        self.ts_aborts
    }

    /// Aborts caused by a failed commit CAS so far.
    pub fn cas_aborts(&self) -> u64 {
        self.cas_aborts
    }

    /// A copy of this instance re-indexed to `me` (same shared objects,
    /// same transaction-local state): process identity only selects
    /// which `R` slot the instance announces into, which is exactly what
    /// a process permutation moves. Used by
    /// [`crate::normalize::canonical_agp_digest`] (identity erasure) and
    /// the symmetry property suites (permutation images).
    #[must_use]
    pub fn retargeted(&self, me: ProcessId) -> AgpTm {
        AgpTm { me, ..self.clone() }
    }

    /// A copy with timestamps, versions and values uniformly shifted, and
    /// statistics counters zeroed — the per-process half of
    /// [`crate::normalize::normalized_agp`]. Behaviour-preserving by the
    /// shift-invariance argument documented there.
    pub fn shifted(&self, s: crate::normalize::Shift) -> AgpTm {
        let shift_vals = |vals: &Vec<Value>| -> Vec<Value> {
            vals.iter().map(|v| Value::new(v.raw() - s.dval)).collect()
        };
        AgpTm {
            c: self.c,
            r: self.r,
            me: self.me,
            n: self.n,
            nvars: self.nvars,
            timestamp: self.timestamp.saturating_sub(s.dts),
            version: self.version.map(|v| v.saturating_sub(s.dver)),
            old_values: shift_vals(&self.old_values),
            values: shift_vals(&self.values),
            pc: self.pc.clone(),
            ts_aborts: 0,
            cas_aborts: 0,
        }
    }
}

impl StateCodec for AgpTm {
    fn encode(&self, out: &mut Vec<u8>) {
        self.c.encode(out);
        self.r.encode(out);
        self.me.encode(out);
        self.n.encode(out);
        self.nvars.encode(out);
        self.timestamp.encode(out);
        self.version.encode(out);
        self.old_values.encode(out);
        self.values.encode(out);
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::StartAnnounce => out.push(1),
            Pc::StartReadC => out.push(2),
            Pc::CommitScan => out.push(3),
            Pc::CommitCas => out.push(4),
            Pc::LocalRespond(resp) => {
                out.push(5);
                resp.encode(out);
            }
        }
        self.ts_aborts.encode(out);
        self.cas_aborts.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let c = ObjId::decode(input)?;
        let r = ObjId::decode(input)?;
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let nvars = usize::decode(input)?;
        let timestamp = u64::decode(input)?;
        let version = Option::decode(input)?;
        let old_values = Vec::decode(input)?;
        let values = Vec::decode(input)?;
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::StartAnnounce,
            2 => Pc::StartReadC,
            3 => Pc::CommitScan,
            4 => Pc::CommitCas,
            5 => Pc::LocalRespond(Response::decode(input)?),
            _ => return None,
        };
        Some(AgpTm {
            c,
            r,
            me,
            n,
            nvars,
            timestamp,
            version,
            old_values,
            values,
            pc,
            ts_aborts: u64::decode(input)?,
            cas_aborts: u64::decode(input)?,
        })
    }
}

impl DeltaCodec for AgpTm {
    /// Same shape as `GlobalVersionTm`'s hooks: the value vectors
    /// collapse to a flag byte when unchanged, everything else is
    /// scalar-sized.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        let old_changed = self.old_values != prev.old_values;
        let values_changed = self.values != prev.values;
        out.push(u8::from(old_changed) | u8::from(values_changed) << 1);
        self.c.encode(out);
        self.r.encode(out);
        self.me.encode(out);
        self.n.encode(out);
        self.nvars.encode(out);
        self.timestamp.encode(out);
        self.version.encode(out);
        if old_changed {
            self.old_values.encode_delta(Some(&prev.old_values), out);
        }
        if values_changed {
            self.values.encode_delta(Some(&prev.values), out);
        }
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::StartAnnounce => out.push(1),
            Pc::StartReadC => out.push(2),
            Pc::CommitScan => out.push(3),
            Pc::CommitCas => out.push(4),
            Pc::LocalRespond(resp) => {
                out.push(5);
                resp.encode(out);
            }
        }
        self.ts_aborts.encode(out);
        self.cas_aborts.encode(out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        let flags = u8::decode(input)?;
        if flags >= 1 << 2 {
            return None;
        }
        let c = ObjId::decode(input)?;
        let r = ObjId::decode(input)?;
        let me = ProcessId::decode(input)?;
        let n = usize::decode(input)?;
        let nvars = usize::decode(input)?;
        let timestamp = u64::decode(input)?;
        let version = Option::decode(input)?;
        let old_values = if flags & 1 != 0 {
            Vec::decode_delta(Some(&prev.old_values), input, ctx)?
        } else {
            prev.old_values.clone()
        };
        let values = if flags & 2 != 0 {
            Vec::decode_delta(Some(&prev.values), input, ctx)?
        } else {
            prev.values.clone()
        };
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::StartAnnounce,
            2 => Pc::StartReadC,
            3 => Pc::CommitScan,
            4 => Pc::CommitCas,
            5 => Pc::LocalRespond(Response::decode(input)?),
            _ => return None,
        };
        Some(AgpTm {
            c,
            r,
            me,
            n,
            nvars,
            timestamp,
            version,
            old_values,
            values,
            pc,
            ts_aborts: u64::decode(input)?,
            cas_aborts: u64::decode(input)?,
        })
    }
}

impl Process<TmWord> for AgpTm {
    fn has_symmetry_reduction() -> bool {
        true
    }

    fn canonical_system_digest(sys: &slx_memory::System<TmWord, Self>) -> slx_engine::Digest {
        crate::normalize::canonical_agp_digest(sys)
    }

    fn on_invoke(&mut self, op: Operation) {
        self.pc = match op {
            Operation::TxStart => {
                self.timestamp += 1;
                Pc::StartAnnounce
            }
            Operation::TxRead(x) => {
                Pc::LocalRespond(Response::ValueReturned(self.values[x.index()]))
            }
            Operation::TxWrite(x, v) => {
                self.values[x.index()] = v;
                Pc::LocalRespond(Response::Ok)
            }
            Operation::TxCommit => Pc::CommitScan,
            other => panic!("transactional memory accepts only TM operations, got {other}"),
        };
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<TmWord>) -> StepEffect {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => StepEffect::Idle,
            Pc::LocalRespond(resp) => StepEffect::Responded(resp),
            Pc::StartAnnounce => {
                mem.apply(Primitive::SnapUpdate {
                    obj: self.r,
                    index: self.me.index(),
                    val: TmWord::Ts(self.timestamp),
                })
                .expect("snapshot allocated");
                self.pc = Pc::StartReadC;
                StepEffect::Ran
            }
            Pc::StartReadC => {
                let w = match mem.apply(Primitive::Read(self.c)).expect("C allocated") {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("CAS read returns a value"),
                };
                let (version, values) = w.expect_versioned();
                self.version = Some(version);
                self.old_values = values.clone();
                self.values = values.clone();
                StepEffect::Responded(Response::Ok)
            }
            Pc::CommitScan => {
                let snapshot = match mem
                    .apply(Primitive::SnapScan(self.r))
                    .expect("snapshot allocated")
                {
                    PrimOutcome::Snapshot(s) => s,
                    _ => unreachable!("scan returns a snapshot"),
                };
                let count = snapshot
                    .iter()
                    .filter(|w| w.expect_ts() >= self.timestamp)
                    .count();
                if count >= 3 {
                    self.ts_aborts += 1;
                    self.version = None;
                    return StepEffect::Responded(Response::Aborted);
                }
                self.pc = Pc::CommitCas;
                StepEffect::Ran
            }
            Pc::CommitCas => {
                let Some(version) = self.version.take() else {
                    // tryC without a successful start: abort.
                    return StepEffect::Responded(Response::Aborted);
                };
                let ok = mem
                    .apply(Primitive::Cas {
                        obj: self.c,
                        expected: TmWord::Versioned {
                            version,
                            values: self.old_values.clone(),
                        },
                        new: TmWord::Versioned {
                            version: version + 1,
                            values: self.values.clone(),
                        },
                    })
                    .expect("C allocated")
                    .expect_flag();
                if ok {
                    StepEffect::Responded(Response::Committed)
                } else {
                    self.cas_aborts += 1;
                    StepEffect::Responded(Response::Aborted)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{History, TransactionStatus, TxnView, VarId};
    use slx_memory::{FairRandom, RepeatTxn, RoundRobin, System, WorkloadScheduler};
    use slx_safety::{certify_unique_writes, Opacity, PropertyS, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn system(n: usize, nvars: usize) -> System<TmWord, AgpTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, n, nvars);
        let procs = (0..n).map(|i| AgpTm::new(c, r, p(i), n, nvars)).collect();
        System::new(mem, procs)
    }

    /// Drives one whole transaction of `q` to completion, alone.
    fn run_txn(sys: &mut System<TmWord, AgpTm>, q: ProcessId, ops: &[Operation]) -> Vec<Response> {
        let mut out = Vec::new();
        for &op in ops {
            sys.invoke(q, op).unwrap();
            loop {
                match sys.step(q).unwrap() {
                    StepEffect::Responded(r) => {
                        out.push(r);
                        break;
                    }
                    StepEffect::Ran => {}
                    StepEffect::Idle => panic!("stuck"),
                }
            }
        }
        out
    }

    #[test]
    fn solo_transaction_commits() {
        let mut sys = system(2, 1);
        let rs = run_txn(
            &mut sys,
            p(0),
            &[
                Operation::TxStart,
                Operation::TxRead(x0()),
                Operation::TxWrite(x0(), v(5)),
                Operation::TxCommit,
            ],
        );
        assert_eq!(
            rs,
            vec![
                Response::Ok,
                Response::ValueReturned(v(0)),
                Response::Ok,
                Response::Committed
            ]
        );
        // A second transaction observes the committed value.
        let rs2 = run_txn(
            &mut sys,
            p(1),
            &[
                Operation::TxStart,
                Operation::TxRead(x0()),
                Operation::TxCommit,
            ],
        );
        assert_eq!(rs2[1], Response::ValueReturned(v(5)));
        assert_eq!(rs2[2], Response::Committed);
        assert!(Opacity::new(v(0)).allows(sys.history()));
        assert!(PropertyS::new(v(0)).allows(sys.history()));
    }

    #[test]
    fn conflicting_commit_aborts_by_cas() {
        let mut sys = system(2, 1);
        // Both start (p2 first so p1's CAS sees the same version).
        for q in [p(0), p(1)] {
            sys.invoke(q, Operation::TxStart).unwrap();
            while !matches!(sys.step(q).unwrap(), StepEffect::Responded(_)) {}
        }
        // p1 writes and commits.
        let r1 = run_txn(
            &mut sys,
            p(0),
            &[Operation::TxWrite(x0(), v(1)), Operation::TxCommit],
        );
        assert_eq!(r1[1], Response::Committed);
        // p2's commit must fail the CAS.
        let r2 = run_txn(
            &mut sys,
            p(1),
            &[Operation::TxWrite(x0(), v(2)), Operation::TxCommit],
        );
        assert_eq!(r2[1], Response::Aborted);
        assert_eq!(sys.process(p(1)).unwrap().cas_aborts(), 1);
        assert!(Opacity::new(v(0)).allows(sys.history()));
    }

    #[test]
    fn three_synchronized_transactions_all_abort() {
        // The §5.3 scenario: three processes start their first transactions,
        // all see each other's timestamps, all tryC — the timestamp rule
        // must abort all three.
        let mut sys = system(3, 1);
        for i in 0..3 {
            sys.invoke(p(i), Operation::TxStart).unwrap();
        }
        // Interleave the start steps so all three announcements land
        // before anyone reads C.
        for i in 0..3 {
            sys.step(p(i)).unwrap(); // announce timestamp
        }
        for i in 0..3 {
            assert_eq!(sys.step(p(i)).unwrap(), StepEffect::Responded(Response::Ok));
        }
        for i in 0..3 {
            sys.invoke(p(i), Operation::TxCommit).unwrap();
        }
        for i in 0..3 {
            // scan (which aborts: three timestamps >= own)
            assert_eq!(
                sys.step(p(i)).unwrap(),
                StepEffect::Responded(Response::Aborted),
                "process {i} escaped the timestamp rule"
            );
            assert_eq!(sys.process(p(i)).unwrap().ts_aborts(), 1);
        }
        assert!(PropertyS::new(v(0)).allows(sys.history()));
    }

    #[test]
    fn two_processes_never_hit_timestamp_rule() {
        // Lemma 5.4's (1,2)-freedom argument: with only two processes
        // taking steps, count < 3 always, so aborts come only from CAS
        // races — and a failed CAS means the other process committed.
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(11));
        let mut sys = system(2, 1);
        sys.run(&mut sched, 4000);
        for i in 0..2 {
            assert_eq!(sys.process(p(i)).unwrap().ts_aborts(), 0);
        }
        // Somebody committed (in fact both, with overwhelming probability
        // under a fair schedule of this length).
        let view = TxnView::parse(sys.history());
        let commits = view
            .transactions()
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .count();
        assert!(commits > 0, "no commits in 4000 events");
    }

    #[test]
    fn random_runs_ensure_property_s_and_opacity() {
        for seed in 0..10 {
            let workload = RepeatTxn::new(3, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(3, workload, FairRandom::new(seed));
            let mut sys = system(3, 1);
            sys.run(&mut sched, 600);
            let h: &History = sys.history();
            assert!(
                certify_unique_writes(h, v(0)),
                "seed {seed}: certifier rejected\n{h}"
            );
            assert!(PropertyS::new(v(0)).abort_rule_holds(h), "seed {seed}");
        }
    }

    #[test]
    fn exhaustive_opacity_on_short_runs() {
        for seed in 0..5 {
            let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
            let mut sys = system(2, 1);
            sys.run(&mut sched, 120);
            assert!(
                Opacity::new(v(0)).allows(sys.history()),
                "seed {seed}: {}",
                sys.history()
            );
        }
    }

    #[test]
    fn lockstep_two_processes_make_progress() {
        let workload = RepeatTxn::new(2, vec![], vec![x0()], Some(3));
        let mut sched = WorkloadScheduler::new(2, workload, RoundRobin::new());
        let mut sys = system(2, 1);
        sys.run(&mut sched, 10_000);
        let view = TxnView::parse(sys.history());
        let commits = view
            .transactions()
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .count();
        assert!(
            commits >= 3,
            "expected progress under lockstep, got {commits}"
        );
    }

    #[test]
    fn timestamps_strictly_increase_across_transactions() {
        let mut sys = system(2, 1);
        run_txn(&mut sys, p(0), &[Operation::TxStart, Operation::TxCommit]);
        run_txn(&mut sys, p(0), &[Operation::TxStart, Operation::TxCommit]);
        assert_eq!(sys.process(p(0)).unwrap().timestamp, 2);
    }

    #[test]
    #[should_panic(expected = "TM operations")]
    fn non_tm_operation_rejected() {
        let mut sys = system(1, 1);
        let _ = sys.invoke(p(0), Operation::Propose(v(1)));
    }
}
