//! Algorithm I(1,2) over a register-only snapshot (double collect).
//!
//! The paper's Algorithm 1 assumes an atomic snapshot object `R[1..n]`.
//! [`crate::AgpTm`] uses the simulator's snapshot base object, matching
//! that assumption; this variant replaces it with `n` plain registers and
//! a resumable *double-collect* scan
//! ([`slx_memory::DoubleCollect`]), demonstrating that the register-only
//! substrate suffices:
//!
//! - the scan is conclusive because per-process timestamps strictly
//!   increase (no ABA between matching collects);
//! - the scan is lock-free, not wait-free — a concurrent `start()` can
//!   force a re-collect — which leaves every (1,k) classification intact
//!   (some process still progresses) and is exactly the trade the paper's
//!   discussion of snapshot implementations implies.

use slx_history::{Operation, ProcessId, Response, Value};
use slx_memory::{
    DoubleCollect, DoubleCollectResult, Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect,
};

use crate::word::TmWord;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    StartAnnounce,
    StartReadC,
    CommitCollect(DoubleCollect<TmWord>),
    CommitCas,
    LocalRespond(Response),
}

/// Algorithm I(1,2) with the snapshot object replaced by a register-only
/// double-collect scan. Semantically interchangeable with
/// [`crate::AgpTm`]; the tests replay the same scenarios against both.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AgpTmDc {
    c: ObjId,
    r: Vec<ObjId>,
    me: ProcessId,
    nvars: usize,
    timestamp: u64,
    version: Option<u64>,
    old_values: Vec<Value>,
    values: Vec<Value>,
    pc: Pc,
    /// Register reads spent in double-collect scans (for the substrate
    /// cost bench).
    scan_reads: u64,
}

impl AgpTmDc {
    /// Allocates the shared objects: `C` and `n` timestamp registers.
    pub fn alloc(mem: &mut Memory<TmWord>, n: usize, nvars: usize) -> (ObjId, Vec<ObjId>) {
        let c = mem.alloc_cas(TmWord::initial(nvars));
        let r = (0..n).map(|_| mem.alloc_register(TmWord::Ts(0))).collect();
        (c, r)
    }

    /// Creates the algorithm instance of process `me`.
    pub fn new(c: ObjId, r: Vec<ObjId>, me: ProcessId, nvars: usize) -> Self {
        AgpTmDc {
            c,
            r,
            me,
            nvars,
            timestamp: 0,
            version: None,
            old_values: vec![Value::new(0); nvars],
            values: vec![Value::new(0); nvars],
            pc: Pc::Idle,
            scan_reads: 0,
        }
    }

    /// Register reads spent in scans so far.
    pub fn scan_reads(&self) -> u64 {
        self.scan_reads
    }
}

impl Process<TmWord> for AgpTmDc {
    fn on_invoke(&mut self, op: Operation) {
        self.pc = match op {
            Operation::TxStart => {
                self.timestamp += 1;
                Pc::StartAnnounce
            }
            Operation::TxRead(x) => {
                Pc::LocalRespond(Response::ValueReturned(self.values[x.index()]))
            }
            Operation::TxWrite(x, v) => {
                self.values[x.index()] = v;
                Pc::LocalRespond(Response::Ok)
            }
            Operation::TxCommit => Pc::CommitCollect(DoubleCollect::new(self.r.clone())),
            other => panic!("transactional memory accepts only TM operations, got {other}"),
        };
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<TmWord>) -> StepEffect {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => StepEffect::Idle,
            Pc::LocalRespond(resp) => StepEffect::Responded(resp),
            Pc::StartAnnounce => {
                mem.apply(Primitive::Write(
                    self.r[self.me.index()],
                    TmWord::Ts(self.timestamp),
                ))
                .expect("timestamp register allocated");
                self.pc = Pc::StartReadC;
                StepEffect::Ran
            }
            Pc::StartReadC => {
                let w = match mem.apply(Primitive::Read(self.c)).expect("C allocated") {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("CAS read returns a value"),
                };
                let (version, values) = w.expect_versioned();
                self.version = Some(version);
                self.old_values = values.clone();
                self.values = values.clone();
                StepEffect::Responded(Response::Ok)
            }
            Pc::CommitCollect(mut dc) => {
                self.scan_reads += 1;
                match dc.step(mem) {
                    DoubleCollectResult::InProgress => {
                        self.pc = Pc::CommitCollect(dc);
                        StepEffect::Ran
                    }
                    DoubleCollectResult::Done(snapshot) => {
                        let count = snapshot
                            .iter()
                            .filter(|w| w.expect_ts() >= self.timestamp)
                            .count();
                        if count >= 3 {
                            self.version = None;
                            StepEffect::Responded(Response::Aborted)
                        } else {
                            self.pc = Pc::CommitCas;
                            StepEffect::Ran
                        }
                    }
                }
            }
            Pc::CommitCas => {
                let Some(version) = self.version.take() else {
                    return StepEffect::Responded(Response::Aborted);
                };
                let ok = mem
                    .apply(Primitive::Cas {
                        obj: self.c,
                        expected: TmWord::Versioned {
                            version,
                            values: self.old_values.clone(),
                        },
                        new: TmWord::Versioned {
                            version: version + 1,
                            values: self.values.clone(),
                        },
                    })
                    .expect("C allocated")
                    .expect_flag();
                if ok {
                    StepEffect::Responded(Response::Committed)
                } else {
                    StepEffect::Responded(Response::Aborted)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{TransactionStatus, TxnView, VarId};
    use slx_memory::{FairRandom, RepeatTxn, System, WorkloadScheduler};
    use slx_safety::{certify_unique_writes, Opacity, PropertyS, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn system(n: usize) -> System<TmWord, AgpTmDc> {
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTmDc::alloc(&mut mem, n, 1);
        let procs = (0..n)
            .map(|i| AgpTmDc::new(c, r.clone(), p(i), 1))
            .collect();
        System::new(mem, procs)
    }

    fn run_txn(
        sys: &mut System<TmWord, AgpTmDc>,
        q: ProcessId,
        ops: &[Operation],
    ) -> Vec<Response> {
        let mut out = Vec::new();
        for &op in ops {
            sys.invoke(q, op).unwrap();
            loop {
                match sys.step(q).unwrap() {
                    StepEffect::Responded(r) => {
                        out.push(r);
                        break;
                    }
                    StepEffect::Ran => {}
                    StepEffect::Idle => panic!("stuck"),
                }
            }
        }
        out
    }

    #[test]
    fn solo_transaction_commits() {
        let mut sys = system(2);
        let rs = run_txn(
            &mut sys,
            p(0),
            &[
                Operation::TxStart,
                Operation::TxWrite(x0(), v(5)),
                Operation::TxCommit,
            ],
        );
        assert_eq!(rs, vec![Response::Ok, Response::Ok, Response::Committed]);
        assert!(sys.process(p(0)).unwrap().scan_reads() >= 4);
    }

    #[test]
    fn three_synchronized_transactions_all_abort() {
        let mut sys = system(3);
        for i in 0..3 {
            sys.invoke(p(i), Operation::TxStart).unwrap();
        }
        for i in 0..3 {
            sys.step(p(i)).unwrap(); // announce
        }
        for i in 0..3 {
            assert_eq!(sys.step(p(i)).unwrap(), StepEffect::Responded(Response::Ok));
        }
        for i in 0..3 {
            sys.invoke(p(i), Operation::TxCommit).unwrap();
        }
        // Scans run to completion (no announcements interfere), then abort.
        for i in 0..3 {
            loop {
                match sys.step(p(i)).unwrap() {
                    StepEffect::Responded(r) => {
                        assert_eq!(r, Response::Aborted, "process {i}");
                        break;
                    }
                    StepEffect::Ran => {}
                    StepEffect::Idle => panic!("stuck"),
                }
            }
        }
        assert!(PropertyS::new(v(0)).abort_rule_holds(sys.history()));
    }

    #[test]
    fn random_runs_match_agp_guarantees() {
        for seed in 0..8 {
            let workload = RepeatTxn::new(3, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(3, workload, FairRandom::new(seed));
            let mut sys = system(3);
            sys.run(&mut sched, 800);
            assert!(
                certify_unique_writes(sys.history(), v(0)),
                "seed {seed}: opacity certifier rejected"
            );
            assert!(
                PropertyS::new(v(0)).abort_rule_holds(sys.history()),
                "seed {seed}: abort rule violated"
            );
        }
    }

    #[test]
    fn exhaustive_opacity_on_short_runs() {
        for seed in 0..3 {
            let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
            let mut sys = system(2);
            sys.run(&mut sched, 120);
            assert!(Opacity::new(v(0)).allows(sys.history()), "seed {seed}");
        }
    }

    #[test]
    fn two_steppers_keep_committing() {
        let workload = RepeatTxn::new(2, vec![], vec![x0()], None);
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(5));
        let mut sys = system(2);
        sys.run(&mut sched, 3000);
        let view = TxnView::parse(sys.history());
        for i in 0..2 {
            let commits = view
                .of_process(p(i))
                .iter()
                .filter(|t| t.status() == TransactionStatus::Committed)
                .count();
            assert!(commits > 0, "process {i} starved");
        }
    }

    #[test]
    fn interfering_start_forces_recollect() {
        let mut sys = system(2);
        // p1 starts and begins a commit scan.
        run_txn(&mut sys, p(0), &[Operation::TxStart]);
        sys.invoke(p(0), Operation::TxCommit).unwrap();
        sys.step(p(0)).unwrap(); // first collect, read 1 of 2
        sys.step(p(0)).unwrap(); // first collect, read 2 of 2
                                 // p2 announces a new timestamp *between* p1's collects, changing
                                 // R[2] relative to the first collect.
        sys.invoke(p(1), Operation::TxStart).unwrap();
        sys.step(p(1)).unwrap();
        // p1 must now take extra reads (re-collect) but still terminates.
        let mut steps = 0;
        loop {
            match sys.step(p(0)).unwrap() {
                StepEffect::Responded(_) => break,
                StepEffect::Ran => steps += 1,
                StepEffect::Idle => panic!("stuck"),
            }
            assert!(steps < 50, "scan failed to terminate");
        }
        // A clean double collect of 2 registers is 4 reads; interference
        // forces more.
        assert!(sys.process(p(0)).unwrap().scan_reads() > 4);
    }
}
