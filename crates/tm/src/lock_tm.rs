//! A blocking (global-lock) TM baseline.

use slx_history::{Operation, Response, Value};
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect};

use crate::word::TmWord;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// Spin on the test-and-set lock.
    Acquire,
    /// Read the store after acquiring.
    ReadStore,
    /// Write the store back at commit.
    WriteBack,
    /// Release the lock, then report commit.
    Release,
    LocalRespond(Response),
}

/// A coarse-grained **blocking** TM: one test-and-set lock guards a single
/// register holding all variable values. `start()` spins until it takes the
/// lock; `tryC()` writes back, releases, and always commits.
///
/// Trivially opaque (transactions are fully serialized by the lock) and
/// deadlock-free, but *not* non-blocking: if the lock holder crashes, no
/// other process ever makes progress — the classic behaviour the
/// non-blocking liveness properties of Section 5 are designed to rule out,
/// and the baseline the benches contrast the non-blocking TMs against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockTm {
    lock: ObjId,
    store: ObjId,
    nvars: usize,
    values: Vec<Value>,
    pc: Pc,
    /// Lock acquisition attempts (for the benches' spin accounting).
    spins: u64,
    holds_lock: bool,
}

impl LockTm {
    /// Allocates the lock and the store register.
    pub fn alloc(mem: &mut Memory<TmWord>, nvars: usize) -> (ObjId, ObjId) {
        let lock = mem.alloc_tas();
        let store = mem.alloc_register(TmWord::initial(nvars));
        (lock, store)
    }

    /// Creates the algorithm instance for one process.
    pub fn new(lock: ObjId, store: ObjId, nvars: usize) -> Self {
        LockTm {
            lock,
            store,
            nvars,
            values: vec![Value::new(0); nvars],
            pc: Pc::Idle,
            spins: 0,
            holds_lock: false,
        }
    }

    /// Lock acquisition attempts so far.
    pub fn spins(&self) -> u64 {
        self.spins
    }
}

impl Process<TmWord> for LockTm {
    fn on_invoke(&mut self, op: Operation) {
        self.pc = match op {
            Operation::TxStart => Pc::Acquire,
            Operation::TxRead(x) => {
                Pc::LocalRespond(Response::ValueReturned(self.values[x.index()]))
            }
            Operation::TxWrite(x, v) => {
                self.values[x.index()] = v;
                Pc::LocalRespond(Response::Ok)
            }
            Operation::TxCommit => {
                if self.holds_lock {
                    Pc::WriteBack
                } else {
                    // tryC without start: nothing to commit.
                    Pc::LocalRespond(Response::Aborted)
                }
            }
            other => panic!("transactional memory accepts only TM operations, got {other}"),
        };
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<TmWord>) -> StepEffect {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => StepEffect::Idle,
            Pc::LocalRespond(resp) => StepEffect::Responded(resp),
            Pc::Acquire => {
                self.spins += 1;
                let was_set = mem
                    .apply(Primitive::Tas(self.lock))
                    .expect("lock allocated")
                    .expect_flag();
                if was_set {
                    self.pc = Pc::Acquire; // spin
                    StepEffect::Ran
                } else {
                    self.holds_lock = true;
                    self.pc = Pc::ReadStore;
                    StepEffect::Ran
                }
            }
            Pc::ReadStore => {
                let w = match mem
                    .apply(Primitive::Read(self.store))
                    .expect("store allocated")
                {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("register read returns a value"),
                };
                let (_, values) = w.expect_versioned();
                self.values = values.clone();
                StepEffect::Responded(Response::Ok)
            }
            Pc::WriteBack => {
                mem.apply(Primitive::Write(
                    self.store,
                    TmWord::Versioned {
                        version: 0,
                        values: self.values.clone(),
                    },
                ))
                .expect("store allocated");
                self.pc = Pc::Release;
                StepEffect::Ran
            }
            Pc::Release => {
                mem.apply(Primitive::TasReset(self.lock))
                    .expect("lock allocated");
                self.holds_lock = false;
                StepEffect::Responded(Response::Committed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{ProcessId, TransactionStatus, TxnView, VarId};
    use slx_memory::{FairRandom, RepeatTxn, System, WorkloadScheduler};
    use slx_safety::{Opacity, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn system(n: usize) -> System<TmWord, LockTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let (lock, store) = LockTm::alloc(&mut mem, 1);
        let procs = (0..n).map(|_| LockTm::new(lock, store, 1)).collect();
        System::new(mem, procs)
    }

    #[test]
    fn transactions_never_abort_without_crashes() {
        let workload = RepeatTxn::new(3, vec![x0()], vec![x0()], Some(5));
        let mut sched = WorkloadScheduler::new(3, workload, FairRandom::new(5));
        let mut sys = system(3);
        sys.run(&mut sched, 50_000);
        let view = TxnView::parse(sys.history());
        assert!(view
            .transactions()
            .iter()
            .all(|t| t.status() != TransactionStatus::Aborted));
        let commits = view
            .transactions()
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .count();
        assert_eq!(commits, 15);
    }

    #[test]
    fn serialized_runs_are_opaque() {
        let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], Some(2));
        let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(7));
        let mut sys = system(2);
        sys.run(&mut sched, 10_000);
        assert!(Opacity::new(v(0)).allows(sys.history()));
    }

    #[test]
    fn crashed_lock_holder_starves_everyone() {
        let mut sys = system(2);
        // p1 takes the lock...
        sys.invoke(p(0), Operation::TxStart).unwrap();
        sys.step(p(0)).unwrap(); // TAS succeeds
        sys.crash(p(0)).unwrap(); // ...and dies holding it.
                                  // p2 spins forever.
        sys.invoke(p(1), Operation::TxStart).unwrap();
        for _ in 0..100 {
            assert_eq!(sys.step(p(1)).unwrap(), StepEffect::Ran);
        }
        assert_eq!(sys.process(p(1)).unwrap().spins(), 100);
        assert!(sys.history().pending(p(1)));
    }

    #[test]
    fn commits_are_visible_to_next_transaction() {
        let mut sys = system(1);
        for op in [
            Operation::TxStart,
            Operation::TxWrite(x0(), v(42)),
            Operation::TxCommit,
            Operation::TxStart,
            Operation::TxRead(x0()),
            Operation::TxCommit,
        ] {
            sys.invoke(p(0), op).unwrap();
            while !matches!(sys.step(p(0)).unwrap(), StepEffect::Responded(_)) {}
        }
        let responses = sys.history().responses_of(p(0));
        assert!(responses.contains(&Response::ValueReturned(v(42))));
    }
}
