//! The base-object alphabet of the TM implementations.

use slx_engine::{DeltaCodec, StateCodec};
use slx_history::Value;

/// Words stored in the TM base objects:
///
/// - the compare-and-swap object `C` holds a [`TmWord::Versioned`] pair
///   `(version, values)` — atomically, exactly as Algorithm 1 writes it;
/// - the snapshot object `R[1..n]` holds [`TmWord::Ts`] timestamps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TmWord {
    /// `(version, values-of-all-transactional-variables)`.
    Versioned {
        /// The version number; only ever increases.
        version: u64,
        /// The committed value of every transactional variable.
        values: Vec<Value>,
    },
    /// A per-process timestamp in the snapshot object `R`.
    Ts(u64),
}

impl TmWord {
    /// Convenience constructor for the initial `C` contents
    /// `(1, (0, 0, ...))` of Algorithm 1.
    pub fn initial(nvars: usize) -> TmWord {
        TmWord::Versioned {
            version: 1,
            values: vec![Value::new(0); nvars],
        }
    }

    /// Extracts the versioned pair.
    ///
    /// # Panics
    ///
    /// Panics if the word is not [`TmWord::Versioned`] — a programming
    /// error in the algorithm, not a runtime condition.
    pub fn expect_versioned(&self) -> (u64, &Vec<Value>) {
        match self {
            TmWord::Versioned { version, values } => (*version, values),
            TmWord::Ts(_) => panic!("expected a versioned word, found a timestamp"),
        }
    }

    /// Extracts the timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the word is not [`TmWord::Ts`].
    pub fn expect_ts(&self) -> u64 {
        match self {
            TmWord::Ts(t) => *t,
            TmWord::Versioned { .. } => panic!("expected a timestamp, found a versioned word"),
        }
    }
}

// Versioned words re-encode whole when changed (a changed commit rewrites
// both version and values anyway); timestamps are one varint.
impl DeltaCodec for TmWord {}

impl StateCodec for TmWord {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TmWord::Versioned { version, values } => {
                out.push(0);
                version.encode(out);
                values.encode(out);
            }
            TmWord::Ts(t) => {
                out.push(1);
                t.encode(out);
            }
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => TmWord::Versioned {
                version: u64::decode(input)?,
                values: Vec::decode(input)?,
            },
            1 => TmWord::Ts(u64::decode(input)?),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_word() {
        let w = TmWord::initial(2);
        let (v, vals) = w.expect_versioned();
        assert_eq!(v, 1);
        assert_eq!(vals, &vec![Value::new(0); 2]);
    }

    #[test]
    fn ts_extraction() {
        assert_eq!(TmWord::Ts(4).expect_ts(), 4);
    }

    #[test]
    #[should_panic(expected = "expected a timestamp")]
    fn wrong_extraction_panics() {
        let _ = TmWord::initial(1).expect_ts();
    }
}
