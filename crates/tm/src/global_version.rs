//! The opaque, lock-free ((1,n)-free) TM: Algorithm 1 without the
//! timestamp rule.

use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::{Operation, Response, Value};
use slx_memory::{Memory, ObjId, PrimOutcome, Primitive, Process, StepEffect};

use crate::word::TmWord;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    StartReadC,
    CommitCas,
    LocalRespond(Response),
}

/// A single-CAS global-version TM (the AGP construction from *Principles
/// of Transactional Memory* \[16\] that Algorithm 1 extends):
///
/// - `start()` atomically copies `C = (version, values)`;
/// - reads and writes are local;
/// - `tryC()` CASes `(version, old) → (version + 1, new)`.
///
/// **Opacity**: every transaction reads from one atomic snapshot of `C`,
/// and committed transactions are totally ordered by the version they
/// install (the paper's Lemma 5.4 argument, minus the timestamp part).
///
/// **(1,n)-freedom / lock-freedom**: a `tryC()` CAS fails only if some
/// other transaction changed `C`'s version — i.e. committed — since the
/// failed transaction's `start()`. So whatever the contention, some
/// process keeps committing; this is the witness for the white point
/// `(1,n)` of Figure 1b. (It is *not* (2,2)-free: two processes can
/// alternately invalidate each other — the adversary crate builds exactly
/// that schedule.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalVersionTm {
    c: ObjId,
    nvars: usize,
    version: Option<u64>,
    old_values: Vec<Value>,
    values: Vec<Value>,
    pc: Pc,
    commits: u64,
    aborts: u64,
}

impl GlobalVersionTm {
    /// Allocates the shared CAS object `C = (1, (0,...,0))`.
    pub fn alloc(mem: &mut Memory<TmWord>, nvars: usize) -> ObjId {
        mem.alloc_cas(TmWord::initial(nvars))
    }

    /// Creates the algorithm instance for one process.
    pub fn new(c: ObjId, nvars: usize) -> Self {
        GlobalVersionTm {
            c,
            nvars,
            version: None,
            old_values: vec![Value::new(0); nvars],
            values: vec![Value::new(0); nvars],
            pc: Pc::Idle,
            commits: 0,
            aborts: 0,
        }
    }

    /// Committed transactions of this process.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Aborted transactions of this process.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// A copy with versions and values uniformly shifted and statistics
    /// counters zeroed — the per-process half of
    /// [`crate::normalize::normalized_global_version`].
    pub fn shifted(&self, s: crate::normalize::Shift) -> GlobalVersionTm {
        let shift_vals = |vals: &Vec<Value>| -> Vec<Value> {
            vals.iter().map(|v| Value::new(v.raw() - s.dval)).collect()
        };
        GlobalVersionTm {
            c: self.c,
            nvars: self.nvars,
            version: self.version.map(|v| v.saturating_sub(s.dver)),
            old_values: shift_vals(&self.old_values),
            values: shift_vals(&self.values),
            pc: self.pc.clone(),
            commits: 0,
            aborts: 0,
        }
    }
}

impl StateCodec for GlobalVersionTm {
    fn encode(&self, out: &mut Vec<u8>) {
        self.c.encode(out);
        self.nvars.encode(out);
        self.version.encode(out);
        self.old_values.encode(out);
        self.values.encode(out);
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::StartReadC => out.push(1),
            Pc::CommitCas => out.push(2),
            Pc::LocalRespond(resp) => {
                out.push(3);
                resp.encode(out);
            }
        }
        self.commits.encode(out);
        self.aborts.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let c = ObjId::decode(input)?;
        let nvars = usize::decode(input)?;
        let version = Option::decode(input)?;
        let old_values = Vec::decode(input)?;
        let values = Vec::decode(input)?;
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::StartReadC,
            2 => Pc::CommitCas,
            3 => Pc::LocalRespond(Response::decode(input)?),
            _ => return None,
        };
        Some(GlobalVersionTm {
            c,
            nvars,
            version,
            old_values,
            values,
            pc,
            commits: u64::decode(input)?,
            aborts: u64::decode(input)?,
        })
    }
}

impl DeltaCodec for GlobalVersionTm {
    /// The transaction-local value vectors — the only fields that grow
    /// with the variable count — usually match the predecessor's and
    /// collapse to one flag byte; the scalar locals re-encode plainly.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        let old_changed = self.old_values != prev.old_values;
        let values_changed = self.values != prev.values;
        out.push(u8::from(old_changed) | u8::from(values_changed) << 1);
        self.c.encode(out);
        self.nvars.encode(out);
        self.version.encode(out);
        if old_changed {
            self.old_values.encode_delta(Some(&prev.old_values), out);
        }
        if values_changed {
            self.values.encode_delta(Some(&prev.values), out);
        }
        match &self.pc {
            Pc::Idle => out.push(0),
            Pc::StartReadC => out.push(1),
            Pc::CommitCas => out.push(2),
            Pc::LocalRespond(resp) => {
                out.push(3);
                resp.encode(out);
            }
        }
        self.commits.encode(out);
        self.aborts.encode(out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        let flags = u8::decode(input)?;
        if flags >= 1 << 2 {
            return None;
        }
        let c = ObjId::decode(input)?;
        let nvars = usize::decode(input)?;
        let version = Option::decode(input)?;
        let old_values = if flags & 1 != 0 {
            Vec::decode_delta(Some(&prev.old_values), input, ctx)?
        } else {
            prev.old_values.clone()
        };
        let values = if flags & 2 != 0 {
            Vec::decode_delta(Some(&prev.values), input, ctx)?
        } else {
            prev.values.clone()
        };
        let pc = match u8::decode(input)? {
            0 => Pc::Idle,
            1 => Pc::StartReadC,
            2 => Pc::CommitCas,
            3 => Pc::LocalRespond(Response::decode(input)?),
            _ => return None,
        };
        Some(GlobalVersionTm {
            c,
            nvars,
            version,
            old_values,
            values,
            pc,
            commits: u64::decode(input)?,
            aborts: u64::decode(input)?,
        })
    }
}

impl Process<TmWord> for GlobalVersionTm {
    fn has_symmetry_reduction() -> bool {
        true
    }

    fn canonical_system_digest(sys: &slx_memory::System<TmWord, Self>) -> slx_engine::Digest {
        crate::normalize::canonical_global_version_digest(sys)
    }

    fn on_invoke(&mut self, op: Operation) {
        self.pc = match op {
            Operation::TxStart => Pc::StartReadC,
            Operation::TxRead(x) => {
                Pc::LocalRespond(Response::ValueReturned(self.values[x.index()]))
            }
            Operation::TxWrite(x, v) => {
                self.values[x.index()] = v;
                Pc::LocalRespond(Response::Ok)
            }
            Operation::TxCommit => Pc::CommitCas,
            other => panic!("transactional memory accepts only TM operations, got {other}"),
        };
    }

    fn has_step(&self) -> bool {
        !matches!(self.pc, Pc::Idle)
    }

    fn step(&mut self, mem: &mut Memory<TmWord>) -> StepEffect {
        match std::mem::replace(&mut self.pc, Pc::Idle) {
            Pc::Idle => StepEffect::Idle,
            Pc::LocalRespond(resp) => StepEffect::Responded(resp),
            Pc::StartReadC => {
                let w = match mem.apply(Primitive::Read(self.c)).expect("C allocated") {
                    PrimOutcome::Value(w) => w,
                    _ => unreachable!("CAS read returns a value"),
                };
                let (version, values) = w.expect_versioned();
                self.version = Some(version);
                self.old_values = values.clone();
                self.values = values.clone();
                StepEffect::Responded(Response::Ok)
            }
            Pc::CommitCas => {
                let Some(version) = self.version.take() else {
                    self.aborts += 1;
                    return StepEffect::Responded(Response::Aborted);
                };
                let ok = mem
                    .apply(Primitive::Cas {
                        obj: self.c,
                        expected: TmWord::Versioned {
                            version,
                            values: self.old_values.clone(),
                        },
                        new: TmWord::Versioned {
                            version: version + 1,
                            values: self.values.clone(),
                        },
                    })
                    .expect("C allocated")
                    .expect_flag();
                if ok {
                    self.commits += 1;
                    StepEffect::Responded(Response::Committed)
                } else {
                    self.aborts += 1;
                    StepEffect::Responded(Response::Aborted)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{ProcessId, TransactionStatus, TxnView, VarId};
    use slx_memory::{FairRandom, RepeatTxn, System, WorkloadScheduler};
    use slx_safety::{certify_unique_writes, Opacity, SafetyProperty};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn system(n: usize) -> System<TmWord, GlobalVersionTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..n).map(|_| GlobalVersionTm::new(c, 1)).collect();
        System::new(mem, procs)
    }

    #[test]
    fn lock_freedom_under_full_contention() {
        // All n processes hammer the same variable: at least one process
        // must keep committing (every failed CAS certifies someone else's
        // commit).
        for n in [2, 3, 5] {
            let workload = RepeatTxn::new(n, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(n, workload, FairRandom::new(99));
            let mut sys = system(n);
            sys.run(&mut sched, 3000);
            let view = TxnView::parse(sys.history());
            let commits = view
                .transactions()
                .iter()
                .filter(|t| t.status() == TransactionStatus::Committed)
                .count();
            assert!(commits > 0, "n={n}: no commits under contention");
            // Accounting invariant: every abort is a CAS lost to a commit,
            // so commits must be at least ... 1 whenever aborts > 0.
            let aborts: u64 = (0..n).map(|i| sys.process(p(i)).unwrap().aborts()).sum();
            let commits_ctr: u64 = (0..n).map(|i| sys.process(p(i)).unwrap().commits()).sum();
            assert_eq!(commits_ctr as usize, commits);
            if aborts > 0 {
                assert!(commits_ctr > 0);
            }
        }
    }

    #[test]
    fn random_runs_are_opaque() {
        for seed in 0..10 {
            let workload = RepeatTxn::new(3, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(3, workload, FairRandom::new(seed));
            let mut sys = system(3);
            sys.run(&mut sched, 800);
            assert!(
                certify_unique_writes(sys.history(), v(0)),
                "seed {seed}: certifier rejected\n{}",
                sys.history()
            );
        }
        // Exhaustive checker on shorter runs.
        for seed in 0..5 {
            let workload = RepeatTxn::new(2, vec![x0()], vec![x0()], None);
            let mut sched = WorkloadScheduler::new(2, workload, FairRandom::new(seed));
            let mut sys = system(2);
            sys.run(&mut sched, 120);
            assert!(Opacity::new(v(0)).allows(sys.history()), "seed {seed}");
        }
    }

    #[test]
    fn failed_cas_implies_version_advanced() {
        let mut sys = system(2);
        // Both start at version 1.
        for q in [p(0), p(1)] {
            sys.invoke(q, Operation::TxStart).unwrap();
            sys.step(q).unwrap();
        }
        // p1 commits (version 1 → 2).
        sys.invoke(p(0), Operation::TxWrite(x0(), v(1))).unwrap();
        sys.step(p(0)).unwrap();
        sys.invoke(p(0), Operation::TxCommit).unwrap();
        assert_eq!(
            sys.step(p(0)).unwrap(),
            StepEffect::Responded(Response::Committed)
        );
        // p2's CAS expects version 1: must abort.
        sys.invoke(p(1), Operation::TxWrite(x0(), v(2))).unwrap();
        sys.step(p(1)).unwrap();
        sys.invoke(p(1), Operation::TxCommit).unwrap();
        assert_eq!(
            sys.step(p(1)).unwrap(),
            StepEffect::Responded(Response::Aborted)
        );
        assert_eq!(sys.process(p(1)).unwrap().aborts(), 1);
    }

    #[test]
    fn read_only_transaction_commits_even_after_interference() {
        // A read-only transaction writes nothing, but its CAS still
        // validates the version — this TM aborts read-only transactions on
        // interference (conservative but opaque).
        let mut sys = system(2);
        sys.invoke(p(0), Operation::TxStart).unwrap();
        sys.step(p(0)).unwrap();
        // p2 commits a change in between.
        for op in [
            Operation::TxStart,
            Operation::TxWrite(x0(), v(7)),
            Operation::TxCommit,
        ] {
            sys.invoke(p(1), op).unwrap();
            while !matches!(sys.step(p(1)).unwrap(), StepEffect::Responded(_)) {}
        }
        sys.invoke(p(0), Operation::TxCommit).unwrap();
        assert_eq!(
            sys.step(p(0)).unwrap(),
            StepEffect::Responded(Response::Aborted)
        );
    }
}
