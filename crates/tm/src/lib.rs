//! Transactional-memory implementations over simulated shared memory.
//!
//! Three TMs, matching the roles they play in the paper:
//!
//! - [`AgpTm`] — **Algorithm I(1,2)** (the paper's Algorithm 1, verbatim):
//!   a single compare-and-swap object `C` holding `(version, values)`, plus
//!   a snapshot object `R[1..n]` of per-process timestamps. The timestamp
//!   rule (`count ≥ 3 ⇒ abort`) enforces requirement 2 of property `S`;
//!   the version CAS enforces opacity; with at most two processes taking
//!   steps it is (1,2)-free (Lemma 5.4).
//! - [`GlobalVersionTm`] — the same construction *without* the timestamp
//!   rule: an opaque, lock-free TM. A failed commit CAS implies a
//!   concurrent successful commit, so at least one process always makes
//!   progress whatever the contention — (1,n)-freedom, the white point of
//!   Figure 1b (standing in for Fraser's OSTM, which the paper cites).
//! - [`LockTm`] — a global test-and-set-lock TM: opaque and deadlock-free
//!   but *blocking*; a crashed lock holder starves everyone. The contrast
//!   baseline for the benches and the non-blocking discussion.

#![warn(missing_docs)]

mod agp;
mod agp_dc;
mod global_version;
mod lock_tm;
pub mod normalize;
mod word;

pub use agp::AgpTm;
pub use agp_dc::AgpTmDc;
pub use global_version::GlobalVersionTm;
pub use lock_tm::LockTm;
pub use word::TmWord;
