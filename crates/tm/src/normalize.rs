//! Configuration normalization for cycle detection.
//!
//! The TM adversaries of Sections 4.1 and 5.3 drive the TMs into infinite
//! loops whose per-iteration state differs only by a uniform *shift*: the
//! global version counter grows by one per victim round (Section 4.1
//! strategy against [`GlobalVersionTm`]), and every process's timestamp
//! grows by one per round of the Section 5.3 strategy against [`AgpTm`].
//! Raw configurations therefore never repeat, even though the executions
//! are plainly periodic.
//!
//! Both algorithms are **shift-invariant**: their control flow depends on
//! numeric state only through (a) equality comparisons of whole words (the
//! commit CAS) and (b) order comparisons between timestamps
//! (`snapshot[j] ≥ timestamp`). Both are preserved when every version,
//! every timestamp, and every written value is shifted by the same
//! amounts. Consequently a repeat of the *normalized* configuration —
//! versions rebased to 1, timestamps rebased to their minimum, values
//! rebased to the committed value of variable `x1` — witnesses a genuine
//! infinite execution, which is exactly what the keyed cycle detector in
//! `slx-explorer` needs. (This module provides the normalizing maps; the
//! explorer crate provides the detector.)

use std::hash::{Hash, Hasher};

use slx_engine::{digest128_of, Digest, Fingerprinter};
use slx_history::{ProcessId, Value};
use slx_memory::{BaseObject, System};

use crate::agp::AgpTm;
use crate::global_version::GlobalVersionTm;
use crate::word::TmWord;

/// Shift applied by the normalizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Shift {
    /// Subtracted from every version number.
    pub dver: u64,
    /// Subtracted from every timestamp.
    pub dts: u64,
    /// Subtracted from every variable value.
    pub dval: i64,
}

pub(crate) fn shift_word(w: &TmWord, s: Shift) -> TmWord {
    match w {
        TmWord::Versioned { version, values } => TmWord::Versioned {
            version: version.saturating_sub(s.dver),
            values: values
                .iter()
                .map(|v| Value::new(v.raw() - s.dval))
                .collect(),
        },
        TmWord::Ts(t) => TmWord::Ts(t.saturating_sub(s.dts)),
    }
}

/// Reads the current committed `(version, values)` from the first CAS
/// object in memory, yielding the canonical shift that rebases the version
/// to 1 and variable `x1`'s committed value to 0.
fn committed_base<P: slx_memory::Process<TmWord>>(sys: &System<TmWord, P>) -> Shift {
    for (_, obj) in sys.memory().iter_objects() {
        if let BaseObject::Cas(TmWord::Versioned { version, values }) = obj {
            return Shift {
                dver: version - 1,
                dts: 0,
                dval: values.first().map(|v| v.raw()).unwrap_or(0),
            };
        }
    }
    Shift::default()
}

/// Normalized configuration of a [`GlobalVersionTm`] system: versions and
/// values rebased to the committed state. Use as the cycle-detection key.
pub fn normalized_global_version(
    sys: &System<TmWord, GlobalVersionTm>,
) -> System<TmWord, GlobalVersionTm> {
    let s = committed_base(sys);
    sys.transformed(|w| shift_word(w, s), |p| p.shifted(s))
}

/// Normalized configuration of an [`AgpTm`] system: versions/values rebased
/// to the committed state and timestamps rebased to the minimum announced
/// timestamp. Use as the cycle-detection key.
pub fn normalized_agp(sys: &System<TmWord, AgpTm>) -> System<TmWord, AgpTm> {
    let mut s = committed_base(sys);
    // Minimum announced timestamp across the snapshot object.
    let mut min_ts = u64::MAX;
    for (_, obj) in sys.memory().iter_objects() {
        if let BaseObject::Snapshot(v) = obj {
            for w in v {
                if let TmWord::Ts(t) = w {
                    min_ts = min_ts.min(*t);
                }
            }
        }
    }
    if min_ts != u64::MAX {
        s.dts = min_ts;
    }
    sys.transformed(|w| shift_word(w, s), |p| p.shifted(s))
}

/// The canonical symmetry digest for a [`GlobalVersionTm`] system:
/// invariant under uniform version/value shifts *and* process
/// permutations. Backs `Process::canonical_system_digest` for the
/// exploration kernel's symmetry reduction.
///
/// Every process runs the same code against the single shared CAS `C`
/// and holds no identity-dependent state, so permuting processes is
/// behaviour-preserving at *every* program counter — the sorted
/// per-process signature multiset quotients the full permutation orbit.
/// The shift and the statistics-counter erasure come from
/// [`normalized_global_version`] (whose `shifted` halves zero
/// `commits`/`aborts`), collapsing states that differ only in scheduling
/// history.
pub fn canonical_global_version_digest(sys: &System<TmWord, GlobalVersionTm>) -> Digest {
    let norm = normalized_global_version(sys);
    let mut sigs: Vec<u128> = (0..norm.n())
        .map(|i| {
            let p = ProcessId::new(i);
            digest128_of(&(
                norm.is_pending(p),
                norm.is_crashed(p),
                norm.process(p).expect("process exists"),
            ))
            .0
        })
        .collect();
    sigs.sort_unstable();
    let mut fp = Fingerprinter::new();
    fp.write_usize(norm.n());
    for sig in &sigs {
        fp.write_u128(*sig);
    }
    for (_, obj) in norm.memory().iter_objects() {
        obj.hash(&mut fp);
    }
    fp.digest()
}

/// The canonical symmetry digest for an [`AgpTm`] system: invariant
/// under uniform version/timestamp/value shifts *and* process
/// permutations. Backs `Process::canonical_system_digest` for the
/// exploration kernel's symmetry reduction.
///
/// Process identity enters Algorithm 1 only through which slot of the
/// timestamp snapshot `R` a process announces into; the commit-time scan
/// reads the *whole* snapshot atomically and aggregates it into a count,
/// which is permutation-insensitive. So each process's signature carries
/// its own `R` slot (the slot travels with its owner under a
/// permutation) with the `me` index erased, the signature multiset is
/// sorted, and the snapshot is *excluded* from the shared-memory part of
/// the digest (the remaining objects — the CAS `C` — are
/// identity-independent). Permutation is safe at every program counter:
/// there is no incremental collect to tear.
pub fn canonical_agp_digest(sys: &System<TmWord, AgpTm>) -> Digest {
    let norm = normalized_agp(sys);
    let slots: Vec<TmWord> = norm
        .memory()
        .iter_objects()
        .find_map(|(_, obj)| match obj {
            BaseObject::Snapshot(v) => Some(v.clone()),
            _ => None,
        })
        .unwrap_or_default();
    let mut sigs: Vec<u128> = (0..norm.n())
        .map(|i| {
            let p = ProcessId::new(i);
            digest128_of(&(
                norm.is_pending(p),
                norm.is_crashed(p),
                norm.process(p)
                    .expect("process exists")
                    .retargeted(ProcessId::new(0)),
                slots.get(i),
            ))
            .0
        })
        .collect();
    sigs.sort_unstable();
    let mut fp = Fingerprinter::new();
    fp.write_usize(norm.n());
    for sig in &sigs {
        fp.write_u128(*sig);
    }
    for (_, obj) in norm.memory().iter_objects() {
        if !matches!(obj, BaseObject::Snapshot(_)) {
            obj.hash(&mut fp);
        }
    }
    fp.digest()
}

/// The π-image of a [`GlobalVersionTm`] configuration: process `i` moves
/// to slot `perm[i]`. Processes hold no identity-dependent state and the
/// shared CAS stays put, so only the pending/crashed flags and the
/// process states move. History and events are dropped. Used by the
/// symmetry property suites.
///
/// # Panics
/// If `perm` is not a permutation of `0..n`.
pub fn permuted_global_version(
    sys: &System<TmWord, GlobalVersionTm>,
    perm: &[usize],
) -> System<TmWord, GlobalVersionTm> {
    sys.permuted(perm, |_, p| p.clone(), |_, obj| obj.clone())
}

/// The π-image of an [`AgpTm`] configuration: process `i` moves to slot
/// `perm[i]` (re-indexed via [`AgpTm::retargeted`]) and the timestamp
/// snapshot's slots move with their owners; the CAS stays put. History
/// and events are dropped. Used by the symmetry property suites.
///
/// # Panics
/// If `perm` is not a permutation of `0..n`.
pub fn permuted_agp(sys: &System<TmWord, AgpTm>, perm: &[usize]) -> System<TmWord, AgpTm> {
    let n = perm.len();
    let mut inverse = vec![usize::MAX; n];
    for (i, &target) in perm.iter().enumerate() {
        inverse[target] = i;
    }
    sys.permuted(
        perm,
        |i, p| p.retargeted(ProcessId::new(perm[i])),
        |_, obj| match obj {
            BaseObject::Snapshot(v) => {
                BaseObject::Snapshot((0..n).map(|j| v[inverse[j]].clone()).collect())
            }
            other => other.clone(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, ProcessId, VarId};
    use slx_memory::Memory;

    #[test]
    fn shift_word_rebases() {
        let s = Shift {
            dver: 3,
            dts: 2,
            dval: 10,
        };
        let w = TmWord::Versioned {
            version: 4,
            values: vec![Value::new(12)],
        };
        assert_eq!(
            shift_word(&w, s),
            TmWord::Versioned {
                version: 1,
                values: vec![Value::new(2)],
            }
        );
        assert_eq!(shift_word(&TmWord::Ts(5), s), TmWord::Ts(3));
    }

    fn gv_after_commits(commits: usize) -> System<TmWord, GlobalVersionTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let mut sys = System::new(mem, vec![GlobalVersionTm::new(c, 1)]);
        let p0 = ProcessId::new(0);
        for k in 0..commits {
            for op in [
                Operation::TxStart,
                Operation::TxWrite(VarId::new(0), Value::new(k as i64 + 1)),
                Operation::TxCommit,
            ] {
                sys.invoke(p0, op).unwrap();
                while !matches!(sys.step(p0).unwrap(), slx_memory::StepEffect::Responded(_)) {}
            }
        }
        sys
    }

    #[test]
    fn normalization_identifies_shifted_global_version_memories() {
        let a = normalized_global_version(&gv_after_commits(0));
        let b = normalized_global_version(&gv_after_commits(1));
        let c = normalized_global_version(&gv_after_commits(2));
        // The committed memory words normalize identically regardless of
        // how many +1 commits happened.
        let word = |s: &System<TmWord, GlobalVersionTm>| {
            s.memory()
                .iter_objects()
                .map(|(_, o)| o.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(word(&a), word(&b));
        assert_eq!(word(&b), word(&c));
    }

    #[test]
    fn canonical_global_version_digest_is_shift_invariant() {
        // Compare laps ≥ 1: the zero-lap configuration is genuinely
        // different (a never-run process has pristine transaction-locals,
        // a lapped one retains dead — but `TxRead`-observable — ones).
        let d1 = canonical_global_version_digest(&gv_after_commits(1));
        let d2 = canonical_global_version_digest(&gv_after_commits(2));
        let d3 = canonical_global_version_digest(&gv_after_commits(3));
        assert_eq!(d1, d2);
        assert_eq!(d2, d3);
        assert_ne!(
            canonical_global_version_digest(&gv_after_commits(0)),
            d1,
            "pristine vs lapped transaction-locals stay distinct"
        );
    }

    fn agp_system(n: usize) -> System<TmWord, AgpTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, n, 1);
        let procs = (0..n)
            .map(|i| AgpTm::new(c, r, ProcessId::new(i), n, 1))
            .collect();
        System::new(mem, procs)
    }

    fn run_whole(sys: &mut System<TmWord, AgpTm>, p: ProcessId, op: Operation) {
        sys.invoke(p, op).unwrap();
        while !matches!(sys.step(p).unwrap(), slx_memory::StepEffect::Responded(_)) {}
    }

    #[test]
    fn canonical_agp_digest_is_timestamp_shift_invariant() {
        // One empty transaction per process advances every timestamp and
        // every R slot by one and bumps the committed version; the
        // canonical digest rebases all of it away.
        let mut sys = agp_system(2);
        let d0 = canonical_agp_digest(&sys);
        for i in 0..2 {
            run_whole(&mut sys, ProcessId::new(i), Operation::TxStart);
            run_whole(&mut sys, ProcessId::new(i), Operation::TxCommit);
        }
        assert_eq!(canonical_agp_digest(&sys), d0, "uniform lap rebased away");
    }

    #[test]
    fn canonical_agp_digest_is_permutation_invariant() {
        // Drive an asymmetric state: p0 completes a transaction (its
        // timestamp and R slot advance), p1 starts one and parks before
        // commit. The permuted image is raw-distinct but canonically
        // equal.
        let mut sys = agp_system(3);
        run_whole(&mut sys, ProcessId::new(0), Operation::TxStart);
        run_whole(
            &mut sys,
            ProcessId::new(0),
            Operation::TxWrite(VarId::new(0), Value::new(5)),
        );
        run_whole(&mut sys, ProcessId::new(0), Operation::TxCommit);
        run_whole(&mut sys, ProcessId::new(1), Operation::TxStart);
        sys.invoke(ProcessId::new(1), Operation::TxCommit).unwrap();
        sys.step(ProcessId::new(1)).unwrap(); // scan: parked at CommitCas
        for perm in [[1usize, 0, 2], [2, 1, 0], [1, 2, 0]] {
            let image = permuted_agp(&sys, &perm);
            assert_ne!(sys.digest128(), image.digest128());
            assert_eq!(canonical_agp_digest(&sys), canonical_agp_digest(&image));
        }
        // Sanity: a *non*-orbit change (drop p1's pending commit moves
        // its pc) changes the canonical digest.
        let mut other = sys.clone();
        other.step(ProcessId::new(1)).unwrap();
        assert_ne!(canonical_agp_digest(&sys), canonical_agp_digest(&other));
    }

    #[test]
    fn canonical_global_version_digest_is_permutation_invariant() {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..3).map(|_| GlobalVersionTm::new(c, 1)).collect();
        let mut sys: System<TmWord, GlobalVersionTm> = System::new(mem, procs);
        let p0 = ProcessId::new(0);
        sys.invoke(p0, Operation::TxStart).unwrap();
        while !matches!(sys.step(p0).unwrap(), slx_memory::StepEffect::Responded(_)) {}
        sys.invoke(p0, Operation::TxWrite(VarId::new(0), Value::new(3)))
            .unwrap();
        sys.step(p0).unwrap();
        sys.invoke(p0, Operation::TxCommit).unwrap();
        let image = permuted_global_version(&sys, &[2, 0, 1]);
        assert_ne!(sys.digest128(), image.digest128());
        assert_eq!(
            canonical_global_version_digest(&sys),
            canonical_global_version_digest(&image)
        );
    }
}
