//! Configuration normalization for cycle detection.
//!
//! The TM adversaries of Sections 4.1 and 5.3 drive the TMs into infinite
//! loops whose per-iteration state differs only by a uniform *shift*: the
//! global version counter grows by one per victim round (Section 4.1
//! strategy against [`GlobalVersionTm`]), and every process's timestamp
//! grows by one per round of the Section 5.3 strategy against [`AgpTm`].
//! Raw configurations therefore never repeat, even though the executions
//! are plainly periodic.
//!
//! Both algorithms are **shift-invariant**: their control flow depends on
//! numeric state only through (a) equality comparisons of whole words (the
//! commit CAS) and (b) order comparisons between timestamps
//! (`snapshot[j] ≥ timestamp`). Both are preserved when every version,
//! every timestamp, and every written value is shifted by the same
//! amounts. Consequently a repeat of the *normalized* configuration —
//! versions rebased to 1, timestamps rebased to their minimum, values
//! rebased to the committed value of variable `x1` — witnesses a genuine
//! infinite execution, which is exactly what the keyed cycle detector in
//! `slx-explorer` needs. (This module provides the normalizing maps; the
//! explorer crate provides the detector.)

use slx_history::Value;
use slx_memory::{BaseObject, System};

use crate::agp::AgpTm;
use crate::global_version::GlobalVersionTm;
use crate::word::TmWord;

/// Shift applied by the normalizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Shift {
    /// Subtracted from every version number.
    pub dver: u64,
    /// Subtracted from every timestamp.
    pub dts: u64,
    /// Subtracted from every variable value.
    pub dval: i64,
}

pub(crate) fn shift_word(w: &TmWord, s: Shift) -> TmWord {
    match w {
        TmWord::Versioned { version, values } => TmWord::Versioned {
            version: version.saturating_sub(s.dver),
            values: values
                .iter()
                .map(|v| Value::new(v.raw() - s.dval))
                .collect(),
        },
        TmWord::Ts(t) => TmWord::Ts(t.saturating_sub(s.dts)),
    }
}

/// Reads the current committed `(version, values)` from the first CAS
/// object in memory, yielding the canonical shift that rebases the version
/// to 1 and variable `x1`'s committed value to 0.
fn committed_base<P: slx_memory::Process<TmWord>>(sys: &System<TmWord, P>) -> Shift {
    for (_, obj) in sys.memory().iter_objects() {
        if let BaseObject::Cas(TmWord::Versioned { version, values }) = obj {
            return Shift {
                dver: version - 1,
                dts: 0,
                dval: values.first().map(|v| v.raw()).unwrap_or(0),
            };
        }
    }
    Shift::default()
}

/// Normalized configuration of a [`GlobalVersionTm`] system: versions and
/// values rebased to the committed state. Use as the cycle-detection key.
pub fn normalized_global_version(
    sys: &System<TmWord, GlobalVersionTm>,
) -> System<TmWord, GlobalVersionTm> {
    let s = committed_base(sys);
    sys.transformed(|w| shift_word(w, s), |p| p.shifted(s))
}

/// Normalized configuration of an [`AgpTm`] system: versions/values rebased
/// to the committed state and timestamps rebased to the minimum announced
/// timestamp. Use as the cycle-detection key.
pub fn normalized_agp(sys: &System<TmWord, AgpTm>) -> System<TmWord, AgpTm> {
    let mut s = committed_base(sys);
    // Minimum announced timestamp across the snapshot object.
    let mut min_ts = u64::MAX;
    for (_, obj) in sys.memory().iter_objects() {
        if let BaseObject::Snapshot(v) = obj {
            for w in v {
                if let TmWord::Ts(t) = w {
                    min_ts = min_ts.min(*t);
                }
            }
        }
    }
    if min_ts != u64::MAX {
        s.dts = min_ts;
    }
    sys.transformed(|w| shift_word(w, s), |p| p.shifted(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, ProcessId, VarId};
    use slx_memory::Memory;

    #[test]
    fn shift_word_rebases() {
        let s = Shift {
            dver: 3,
            dts: 2,
            dval: 10,
        };
        let w = TmWord::Versioned {
            version: 4,
            values: vec![Value::new(12)],
        };
        assert_eq!(
            shift_word(&w, s),
            TmWord::Versioned {
                version: 1,
                values: vec![Value::new(2)],
            }
        );
        assert_eq!(shift_word(&TmWord::Ts(5), s), TmWord::Ts(3));
    }

    fn gv_after_commits(commits: usize) -> System<TmWord, GlobalVersionTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let mut sys = System::new(mem, vec![GlobalVersionTm::new(c, 1)]);
        let p0 = ProcessId::new(0);
        for k in 0..commits {
            for op in [
                Operation::TxStart,
                Operation::TxWrite(VarId::new(0), Value::new(k as i64 + 1)),
                Operation::TxCommit,
            ] {
                sys.invoke(p0, op).unwrap();
                while !matches!(sys.step(p0).unwrap(), slx_memory::StepEffect::Responded(_)) {}
            }
        }
        sys
    }

    #[test]
    fn normalization_identifies_shifted_global_version_memories() {
        let a = normalized_global_version(&gv_after_commits(0));
        let b = normalized_global_version(&gv_after_commits(1));
        let c = normalized_global_version(&gv_after_commits(2));
        // The committed memory words normalize identically regardless of
        // how many +1 commits happened.
        let word = |s: &System<TmWord, GlobalVersionTm>| {
            s.memory()
                .iter_objects()
                .map(|(_, o)| o.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(word(&a), word(&b));
        assert_eq!(word(&b), word(&c));
    }
}
