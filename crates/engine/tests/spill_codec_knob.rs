//! The `SLX_ENGINE_SPILL_CODEC` environment knob.
//!
//! Lives in its own test binary (= its own process): the sibling suites
//! resolve the codec from the environment on every budgeted run, so
//! mutating the variable — in particular parking an invalid value on it
//! while probing the panic path — from inside their process would race
//! them. One `#[test]` keeps the mutations sequential within this
//! process too.

use slx_engine::{Checker, SpillCodec};

#[test]
fn env_knob_accepts_all_three_codecs_and_rejects_junk() {
    let checker = Checker::parallel_bfs(1);

    // Unset (and empty): the built-in default.
    std::env::remove_var("SLX_ENGINE_SPILL_CODEC");
    assert_eq!(checker.resolve_spill_codec(), SpillCodec::Delta);
    std::env::set_var("SLX_ENGINE_SPILL_CODEC", "");
    assert_eq!(checker.resolve_spill_codec(), SpillCodec::Delta);

    // The three accepted values.
    for (value, codec) in [
        ("delta", SpillCodec::Delta),
        ("plain", SpillCodec::Plain),
        ("replay", SpillCodec::Replay),
    ] {
        std::env::set_var("SLX_ENGINE_SPILL_CODEC", value);
        assert_eq!(checker.resolve_spill_codec(), codec, "{value}");
        // An explicit builder codec still wins over the variable.
        assert_eq!(
            checker
                .clone()
                .with_spill_codec(SpillCodec::Plain)
                .resolve_spill_codec(),
            SpillCodec::Plain,
            "{value}"
        );
    }

    // A typo must fail loudly, not silently re-test the default codec:
    // the variable exists to pin CI comparison arms.
    std::env::set_var("SLX_ENGINE_SPILL_CODEC", "rplay");
    let result = std::panic::catch_unwind(|| checker.resolve_spill_codec());
    std::env::remove_var("SLX_ENGINE_SPILL_CODEC");
    let err = result.expect_err("an unrecognized codec value must panic");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("\"delta\", \"plain\", or \"replay\"") && message.contains("rplay"),
        "the panic must name every accepted value and the offender: {message}"
    );
}
