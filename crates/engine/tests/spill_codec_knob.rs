//! The `SLX_ENGINE_*` environment knobs.
//!
//! Lives in its own test binary (= its own process): the sibling suites
//! resolve these knobs from the environment on every budgeted run, so
//! mutating the variables — in particular parking invalid values on them
//! while probing the panic paths — from inside their process would race
//! them. One `#[test]` keeps the mutations sequential within this
//! process too.
//!
//! Every knob shares one failure contract: a malformed value is a hard
//! error naming the variable and the offender, never a silent fall-back
//! to a default — the variables exist to pin CI comparison arms and
//! operational budgets, and a typo that silently meant "default" would
//! green-light a run that tested the wrong configuration.

use slx_engine::{Backend, Checker, CheckpointStore, Digest, Expansion, SpillCodec, StateSpace};

/// Renders a caught panic payload for message assertions.
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default()
}

/// Asserts that `probe` panics and that the message names `var` and the
/// offending `value` — the diagnosability contract of every knob.
fn assert_rejects(var: &str, value: &str, probe: impl FnOnce() + std::panic::UnwindSafe) {
    std::env::set_var(var, value);
    let result = std::panic::catch_unwind(probe);
    std::env::remove_var(var);
    let message = panic_message(result.expect_err("a malformed knob value must panic"));
    assert!(
        message.contains(var) && message.contains(value.trim_start_matches('"')),
        "{var}={value:?} must fail naming the variable and the value: {message}"
    );
}

/// A short chain, just big enough to drive the checkpoint knobs through
/// a real run.
struct Chain(u32);

impl StateSpace for Chain {
    type State = u32;
    type Finding = ();

    fn digest(&self, s: &u32) -> Digest {
        slx_engine::digest128_of(s)
    }

    fn expand(&self, &s: &u32, _depth: usize, ctx: &mut Expansion<Self>) {
        if s < self.0 {
            ctx.push(s + 1);
        }
    }
}

#[test]
fn env_knobs_resolve_and_reject_junk() {
    let checker = Checker::parallel_bfs(1);

    // SLX_ENGINE_SPILL_CODEC — unset (and empty): the built-in default.
    std::env::remove_var("SLX_ENGINE_SPILL_CODEC");
    assert_eq!(checker.resolve_spill_codec(), SpillCodec::Delta);
    std::env::set_var("SLX_ENGINE_SPILL_CODEC", "");
    assert_eq!(checker.resolve_spill_codec(), SpillCodec::Delta);

    // The three accepted values.
    for (value, codec) in [
        ("delta", SpillCodec::Delta),
        ("plain", SpillCodec::Plain),
        ("replay", SpillCodec::Replay),
    ] {
        std::env::set_var("SLX_ENGINE_SPILL_CODEC", value);
        assert_eq!(checker.resolve_spill_codec(), codec, "{value}");
        // An explicit builder codec still wins over the variable.
        assert_eq!(
            checker
                .clone()
                .with_spill_codec(SpillCodec::Plain)
                .resolve_spill_codec(),
            SpillCodec::Plain,
            "{value}"
        );
    }

    // A typo must fail loudly, not silently re-test the default codec.
    std::env::set_var("SLX_ENGINE_SPILL_CODEC", "rplay");
    let result = std::panic::catch_unwind(|| checker.resolve_spill_codec());
    std::env::remove_var("SLX_ENGINE_SPILL_CODEC");
    let message = panic_message(result.expect_err("an unrecognized codec value must panic"));
    assert!(
        message.contains("\"delta\", \"plain\", or \"replay\"") && message.contains("rplay"),
        "the panic must name every accepted value and the offender: {message}"
    );

    // SLX_ENGINE_THREADS — honored by Checker::auto, observable through
    // the backend; zero and junk hard-error (before this fix they fell
    // back silently to autodetection).
    std::env::set_var("SLX_ENGINE_THREADS", "3");
    assert_eq!(
        Checker::auto().backend(),
        Backend::ParallelBfs { threads: 3 }
    );
    std::env::set_var("SLX_ENGINE_THREADS", "");
    assert!(matches!(
        Checker::auto().backend(),
        Backend::ParallelBfs { threads } if threads >= 1
    ));
    std::env::remove_var("SLX_ENGINE_THREADS");
    for bad in ["two", "-2", "1.5", "0"] {
        assert_rejects("SLX_ENGINE_THREADS", bad, || {
            let _ = Checker::auto();
        });
    }

    // SLX_ENGINE_SHARDS — same contract; the explicit builder still wins.
    std::env::set_var("SLX_ENGINE_SHARDS", "16");
    assert_eq!(checker.resolve_shards(1), 16);
    assert_eq!(checker.clone().with_shards(4).resolve_shards(1), 4);
    std::env::set_var("SLX_ENGINE_SHARDS", "");
    assert_eq!(checker.resolve_shards(2), 8, "empty defers to threads*4");
    std::env::remove_var("SLX_ENGINE_SHARDS");
    for bad in ["four", "-1", "0x10", "0"] {
        assert_rejects("SLX_ENGINE_SHARDS", bad, || {
            let _ = checker.resolve_shards(1);
        });
    }

    // SLX_ENGINE_MEM_BUDGET — zero is the documented "spilling off" pin,
    // so it stays accepted; junk hard-errors.
    std::env::set_var("SLX_ENGINE_MEM_BUDGET", "4096");
    assert_eq!(checker.resolve_mem_budget(), Some(4096));
    std::env::set_var("SLX_ENGINE_MEM_BUDGET", "0");
    assert_eq!(checker.resolve_mem_budget(), None, "0 pins spilling off");
    std::env::remove_var("SLX_ENGINE_MEM_BUDGET");
    for bad in ["2KB", "-5", "lots"] {
        assert_rejects("SLX_ENGINE_MEM_BUDGET", bad, || {
            let _ = checker.resolve_mem_budget();
        });
    }

    // SLX_ENGINE_CHECKPOINT_DIR / _EVERY — the env-only activation path:
    // a run with the directory set commits checkpoints at the configured
    // cadence, and a malformed cadence hard-errors instead of silently
    // checkpointing every level.
    let dir = std::env::temp_dir().join(format!("slx-ckpt-knob-{}", std::process::id()));
    std::env::set_var("SLX_ENGINE_CHECKPOINT_DIR", &dir);
    std::env::set_var("SLX_ENGINE_CHECKPOINT_EVERY", "2");
    let out = checker.run(&Chain(6), vec![0u32]);
    assert_eq!(out.stats.configs, 7);
    assert_eq!(out.stats.checkpoints_written, 3, "levels 2, 4, and 6");
    assert!(CheckpointStore::exists(&dir));
    std::env::remove_var("SLX_ENGINE_CHECKPOINT_DIR");
    std::env::remove_var("SLX_ENGINE_CHECKPOINT_EVERY");
    for bad in ["every-sunday", "0", "-3"] {
        std::env::set_var("SLX_ENGINE_CHECKPOINT_DIR", &dir);
        assert_rejects("SLX_ENGINE_CHECKPOINT_EVERY", bad, || {
            let _ = checker.run(&Chain(6), vec![0u32]);
        });
        std::env::remove_var("SLX_ENGINE_CHECKPOINT_DIR");
    }
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}
