//! Shared helpers for the engine's integration-test harnesses.
//!
//! Each integration test is its own crate, so anything both harnesses
//! need lives here; not every harness uses every helper.
#![allow(dead_code)]

/// SplitMix64, reimplemented locally (the engine crate is dependency-free
/// and deliberately does not export a PRNG).
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    /// A random 128-bit digest. Half the time the top bits are squeezed
    /// into a few values so shard routing sees skewed streams too.
    pub fn digest(&mut self) -> u128 {
        let lo = self.next() as u128;
        let hi = if self.next().is_multiple_of(2) {
            self.next() as u128
        } else {
            (self.next() % 3) as u128
        };
        hi << 64 | lo
    }

    /// Fisher–Yates shuffle driven by this generator.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i as u64 + 1) as usize);
        }
    }
}
