//! Property-based validation of fingerprint deduplication.
//!
//! The external `proptest` crate is unavailable in offline builds, so
//! this is a self-contained property harness: a seeded SplitMix64
//! generator produces hundreds of random state spaces, and for each one
//! the kernel is compared against an exact reference explorer that
//! retains full states.
//!
//! Two properties are checked at small scope:
//!
//! 1. **Full-width digests are exact**: with 128-bit fingerprints the
//!    kernel's verdict (the finding set) and visited-configuration count
//!    equal the retained-state reference on every generated space, on
//!    both backends.
//! 2. **Collisions are sound**: with digests deliberately truncated to 12
//!    bits (collisions guaranteed — the spaces have up to tens of
//!    thousands of state/depth combinations), every finding the kernel
//!    reports is still a finding of the reference. Collisions can only
//!    hide states, never fabricate verdicts.

use std::collections::{BTreeSet, HashMap, VecDeque};

use slx_engine::{digest128_of, Checker, Digest, Expansion, StateSpace};

mod common;
use common::Rng;

/// A pseudo-random transition system over `0..universe`: each state has a
/// structure-derived branching factor and successor set (so diamonds and
/// reconvergence abound), a depth horizon, and findings at states
/// divisible by `finding_mod`.
#[derive(Clone)]
struct RandomSpace {
    seed: u64,
    universe: u64,
    max_branch: u64,
    bound: usize,
    finding_mod: u64,
    digest_bits: u32,
}

impl RandomSpace {
    fn succs_of(&self, s: u64) -> Vec<u64> {
        let mut rng = Rng(self.seed ^ s.wrapping_mul(0xa076_1d64_78bd_642f));
        let branch = rng.below(self.max_branch + 1);
        (0..branch).map(|_| rng.below(self.universe)).collect()
    }

    fn is_finding(&self, s: u64) -> bool {
        s.is_multiple_of(self.finding_mod)
    }
}

impl StateSpace for RandomSpace {
    type State = u64;
    type Finding = u64;

    fn digest(&self, s: &u64) -> Digest {
        digest128_of(s).truncated(self.digest_bits)
    }

    fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
        if self.is_finding(s) {
            ctx.finding(s);
        }
        if depth >= self.bound {
            return;
        }
        for succ in self.succs_of(s) {
            ctx.push(succ);
        }
    }
}

/// Exact reference: breadth-first with fully retained states, visiting
/// exactly the states whose minimal depth is within the bound.
fn reference(space: &RandomSpace, initial: u64) -> (BTreeSet<u64>, usize) {
    let mut depth_of: HashMap<u64, usize> = HashMap::new();
    let mut queue: VecDeque<(u64, usize)> = VecDeque::new();
    depth_of.insert(initial, 0);
    queue.push_back((initial, 0));
    let mut findings = BTreeSet::new();
    let mut configs = 0usize;
    while let Some((s, d)) = queue.pop_front() {
        configs += 1;
        if space.is_finding(s) {
            findings.insert(s);
        }
        if d >= space.bound {
            continue;
        }
        for succ in space.succs_of(s) {
            if let std::collections::hash_map::Entry::Vacant(e) = depth_of.entry(succ) {
                e.insert(d + 1);
                queue.push_back((succ, d + 1));
            }
        }
    }
    (findings, configs)
}

fn random_space(rng: &mut Rng, digest_bits: u32) -> RandomSpace {
    RandomSpace {
        seed: rng.next(),
        universe: 50 + rng.below(2000),
        max_branch: 1 + rng.below(4),
        bound: 2 + rng.below(12) as usize,
        finding_mod: 3 + rng.below(20),
        digest_bits,
    }
}

#[test]
fn full_width_digests_reproduce_exact_exploration() {
    let mut rng = Rng(0xC0FFEE);
    for case in 0..200 {
        let space = random_space(&mut rng, 128);
        let initial = rng.below(space.universe);
        let (expected_findings, expected_configs) = reference(&space, initial);

        for checker in [Checker::parallel_bfs(2), Checker::sequential_dfs()] {
            let out = checker.run(&space, vec![initial]);
            let got: BTreeSet<u64> = out.findings.iter().copied().collect();
            assert_eq!(
                got,
                expected_findings,
                "case {case}: finding set diverged ({:?})",
                checker.backend()
            );
            assert_eq!(
                out.stats.configs,
                expected_configs,
                "case {case}: configs diverged ({:?})",
                checker.backend()
            );
        }
    }
}

#[test]
fn truncated_digests_stay_sound() {
    let mut rng = Rng(0xBEEF);
    let mut collided_somewhere = false;
    for case in 0..200 {
        let space = random_space(&mut rng, 12);
        let initial = rng.below(space.universe);
        let (expected_findings, expected_configs) = reference(&space, initial);

        let out = Checker::parallel_bfs(2).run(&space, vec![initial]);
        let got: BTreeSet<u64> = out.findings.iter().copied().collect();
        assert!(
            got.is_subset(&expected_findings),
            "case {case}: a colliding digest fabricated findings {:?}",
            got.difference(&expected_findings).collect::<Vec<_>>()
        );
        assert!(
            out.stats.configs <= expected_configs,
            "case {case}: collisions cannot visit more states than exist"
        );
        collided_somewhere |= out.stats.configs < expected_configs;
    }
    assert!(
        collided_somewhere,
        "12-bit digests over these spaces must actually collide, \
         or the property is vacuous"
    );
}

#[test]
fn verdicts_survive_forced_collisions_when_findings_are_on_every_path() {
    // When every path to the horizon passes through a finding state (here:
    // state 0 is initial and a finding), even heavy collisions cannot lose
    // the verdict: the first arrival is expanded before anything can
    // collide with it.
    let mut rng = Rng(0x5EED);
    for _ in 0..100 {
        let mut space = random_space(&mut rng, 8);
        space.finding_mod = 1; // every state is a finding
        let out = Checker::parallel_bfs(1).run(&space, vec![0]);
        assert!(
            !out.findings.is_empty(),
            "a finding on the initial state can never be masked"
        );
    }
}
