//! Fault-soak differential: a run under a seeded fault schedule must
//! either finish **bit-identical** to the fault-free run or fail with a
//! typed [`EngineError`] — never a panic, never a torn checkpoint image,
//! never a leaked spill file — across the
//! {resident, plain, delta, replay} × {symmetry on, off} matrix.
//!
//! Faults come from the engine's own [`FaultPlan`] seams (spill
//! create/write/read/unlink, checkpoint write/sync/rename), injected by
//! a SplitMix64 schedule: with a single worker thread the draw order is
//! fixed, so every cell's outcome is deterministic and the asserts are
//! exact, not probabilistic. Transient faults (EINTR, short writes) must
//! be absorbed by the bounded retry loop; ENOSPC on the spill path must
//! degrade to resident frontiers; everything else must surface as a
//! structured error whose checkpoint directory still resumes cleanly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use slx_engine::{
    Checker, CheckpointStore, Digest, EngineError, Expansion, ExploreStats, FaultKind, FaultOp,
    FaultPlan, SpillCodec, StateSpace,
};

/// Transpose-symmetric grid walk, the `checkpoint_resume` fixture
/// without the crash switch: `(x, y)` with moves +x/+y to a bound, a
/// finding at the far corner, coordinate-sort canonicalization.
struct SymGrid {
    bound: u32,
}

impl StateSpace for SymGrid {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }

    fn has_symmetry_reduction(&self) -> bool {
        true
    }

    fn canonical_digest(&self, state: &Self::State) -> Digest {
        self.digest(&self.orbit_representative(state))
    }

    fn orbit_representative(&self, &(x, y): &Self::State) -> Self::State {
        (x.min(y), x.max(y))
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slx-fault-soak-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

fn dir_entries(dir: &PathBuf) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|err| panic!("dir {} unreadable: {err}", dir.display()))
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect()
}

/// The statistics the differential pins bit-identically — the same set
/// as the resume contract. Spill-volume counters measure I/O actually
/// performed and legitimately differ once faults force retries or
/// degraded (resident) levels.
fn identical_part(stats: &ExploreStats) -> impl PartialEq + std::fmt::Debug {
    (
        stats.configs,
        stats.transitions,
        stats.dedup_hits,
        stats.orbit_hits,
        stats.peak_frontier,
        stats.shard_occupancy.clone(),
        stats.truncated,
        stats.stopped_early,
    )
}

fn cell_checker(budget: usize, codec: SpillCodec, symmetry: bool) -> Checker {
    Checker::parallel_bfs(1)
        .with_shards(8)
        .with_mem_budget(budget)
        .with_spill_codec(codec)
        .with_symmetry(symmetry)
}

/// Every engine-side seam (the socket ops belong to `slx-server`).
const ENGINE_OPS: [FaultOp; 7] = [
    FaultOp::SpillCreate,
    FaultOp::SpillWrite,
    FaultOp::SpillRead,
    FaultOp::SpillUnlink,
    FaultOp::CkptWrite,
    FaultOp::CkptSync,
    FaultOp::CkptRename,
];

#[test]
fn seeded_fault_schedules_never_change_the_verdict_or_tear_state() {
    // (budget, codec) arms as in `checkpoint_resume`: budget 0 is the
    // resident arm (checkpoint seams only), 128 bytes forces every wide
    // unreduced level of the 41-wide grid to spill through the cell's
    // codec.
    let arms = [
        (0usize, SpillCodec::Delta),
        (128, SpillCodec::Plain),
        (128, SpillCodec::Delta),
        (128, SpillCodec::Replay),
    ];
    // Three soak schedules per cell, graded by survivability: a
    // transient-only storm the retry loop must mostly absorb, a mixed
    // low-rate drizzle, and a hard-fault schedule that mostly ends in a
    // structured failure (exercising the resume-after-failure leg). The
    // draw schedule is per-(seed, op), so each is a genuinely different
    // soak.
    let schedules: [(u64, u32, &[FaultKind]); 3] = [
        (3, 128, &[FaultKind::Eintr, FaultKind::Short]),
        (
            0x5EED,
            24,
            &[
                FaultKind::Enospc,
                FaultKind::Eintr,
                FaultKind::Short,
                FaultKind::Torn,
            ],
        ),
        (0xDEAD_BEEF, 64, &[FaultKind::Enospc, FaultKind::Torn]),
    ];
    let mut survived_with_faults = 0u64;
    let mut total_injected = 0u64;
    let mut total_retries = 0u64;
    let mut clean_failures = 0u64;
    let mut resumed_after_failure = 0u64;
    let mut cell = 0u64;
    for (budget, codec) in arms {
        for symmetry in [false, true] {
            cell += 1;
            let space = SymGrid { bound: 40 };
            let baseline = cell_checker(budget, codec, symmetry).run(&space, vec![(0, 0)]);
            assert_eq!(baseline.findings, vec![(40, 40)]);
            // The disabled-plane discipline: with no plan armed the new
            // counters must stay exactly zero.
            assert_eq!(baseline.stats.faults_injected, 0);
            assert_eq!(baseline.stats.io_retries, 0);
            assert_eq!(baseline.stats.degraded_levels, 0);

            for (base_seed, rate, kinds) in schedules {
                // Salt the schedule per cell: identical seeds would make
                // every budget-0 cell draw the same checkpoint-seam
                // sequence and die at the same commit.
                let seed = base_seed ^ (cell << 32);
                let ckpt_dir = unique_dir("ckpt");
                let spill_dir = unique_dir("spill");
                let label =
                    format!("{codec:?}/sym={symmetry}/budget={budget}/seed={seed:#x}/rate={rate}");
                let plan = FaultPlan::seeded(seed)
                    .with_rate(rate)
                    .with_ops(&ENGINE_OPS)
                    .with_kinds(kinds);
                let result = cell_checker(budget, codec, symmetry)
                    .with_spill_dir(&spill_dir)
                    .with_checkpoint(&ckpt_dir, 2)
                    .with_fault_plan(plan)
                    .try_run(&space, vec![(0, 0)]);
                match result {
                    Ok(out) => {
                        assert_eq!(out.findings, baseline.findings, "{label}");
                        assert_eq!(
                            identical_part(&out.stats),
                            identical_part(&baseline.stats),
                            "{label}"
                        );
                        if out.stats.faults_injected > 0 {
                            survived_with_faults += 1;
                        }
                        total_injected += out.stats.faults_injected;
                        total_retries += out.stats.io_retries;
                    }
                    Err(err) => {
                        // A clean structured failure: an I/O-shaped
                        // variant naming its seam — any other class
                        // (corruption, version, config) would mean the
                        // injection broke an invariant it must not.
                        clean_failures += 1;
                        match &err {
                            EngineError::SpillIo { .. }
                            | EngineError::SpillExhausted { .. }
                            | EngineError::CheckpointIo { .. } => {}
                            other => panic!("{label}: unexpected failure class: {other}"),
                        }
                        // Never a torn image: no staging file survives a
                        // failed commit, and whatever image did commit
                        // resumes fault-free to the baseline verdict.
                        assert!(
                            !ckpt_dir.join("slx-checkpoint.bin.tmp").exists(),
                            "{label}: stranded staging file after {err}"
                        );
                        if CheckpointStore::exists(&ckpt_dir) {
                            resumed_after_failure += 1;
                            let resumed = cell_checker(budget, codec, symmetry)
                                .resume(&ckpt_dir)
                                .run(&space, vec![(0, 0)]);
                            assert_eq!(resumed.findings, baseline.findings, "{label}");
                            assert_eq!(
                                identical_part(&resumed.stats),
                                identical_part(&baseline.stats),
                                "{label}"
                            );
                        }
                    }
                }
                // Never a leaked spill file, however the run ended.
                if spill_dir.exists() {
                    assert_eq!(dir_entries(&spill_dir), Vec::<String>::new(), "{label}");
                }
                std::fs::remove_dir_all(&ckpt_dir).expect("ckpt dir cleanup");
                let _ = std::fs::remove_dir_all(&spill_dir);
            }
        }
    }
    // The soak must exercise both sides of the differential: runs that
    // absorbed faults and still matched bit for bit, and runs that
    // failed structurally and resumed. All deterministic given the
    // seeds, so these are exact floors, not probabilistic hopes.
    assert!(
        survived_with_faults > 0 && total_injected > 0 && total_retries > 0,
        "no run absorbed faults ({survived_with_faults} runs, {total_injected} faults, \
         {total_retries} retries)"
    );
    assert!(
        clean_failures > 0 && resumed_after_failure > 0,
        "no run failed structurally ({clean_failures} failures, \
         {resumed_after_failure} resumed)"
    );
}

#[test]
fn enospc_on_the_spill_path_degrades_to_resident_levels() {
    // ENOSPC-only schedule aimed at the spill seams: the run must finish
    // (levels fall back to resident once the disk "fills"), report the
    // degradation, and still match the fault-free run bit for bit.
    for codec in [SpillCodec::Plain, SpillCodec::Delta, SpillCodec::Replay] {
        let space = SymGrid { bound: 40 };
        let baseline = cell_checker(128, codec, false).run(&space, vec![(0, 0)]);
        let spill_dir = unique_dir("enospc");
        let plan = FaultPlan::seeded(0xD15C)
            .with_rate(512)
            .with_ops(&[FaultOp::SpillCreate, FaultOp::SpillWrite])
            .with_kinds(&[FaultKind::Enospc]);
        let out = cell_checker(128, codec, false)
            .with_spill_dir(&spill_dir)
            .with_fault_plan(plan)
            .try_run(&space, vec![(0, 0)])
            .unwrap_or_else(|err| panic!("{codec:?}: ENOSPC must degrade, not fail: {err}"));
        assert_eq!(out.findings, baseline.findings, "{codec:?}");
        assert_eq!(
            identical_part(&out.stats),
            identical_part(&baseline.stats),
            "{codec:?}"
        );
        assert!(out.stats.faults_injected > 0, "{codec:?}");
        assert!(
            out.stats.degraded_levels > 0,
            "{codec:?}: a half-rate ENOSPC schedule must degrade some level"
        );
        if spill_dir.exists() {
            assert_eq!(dir_entries(&spill_dir), Vec::<String>::new(), "{codec:?}");
        }
        let _ = std::fs::remove_dir_all(&spill_dir);
    }
}
