//! Spill-file hygiene: temp files must vanish however a run ends.
//!
//! The disk-backed frontier creates at most one temp file per frontier
//! and deletes it when the frontier drops. These tests pin that behaviour
//! at the `Checker` level for every exit path — normal completion, early
//! stop mid-level, and a panic mid-exploration — plus the
//! `SLX_ENGINE_SPILL_DIR` / `SLX_ENGINE_MEM_BUDGET` environment knobs
//! (directory honored and created if absent).
//!
//! Every test other than the env-var one pins its budget and directory
//! explicitly, so the `set_var` below cannot leak into them regardless of
//! test-thread interleaving.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use slx_engine::{digest128_of, Checker, Digest, Expansion, SpillCodec, StateSpace};

/// All three chunk record encodings; the hygiene guarantees must hold
/// under each (replay in particular re-enters `expand` *during* chunk
/// replay, a code path the other codecs never take).
const CODECS: [SpillCodec; 3] = [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay];

/// A fresh, unique, not-yet-created directory for one test.
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "slx-hygiene-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dir_entries(dir: &PathBuf) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|err| panic!("spill dir {} unreadable: {err}", dir.display()))
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect()
}

/// A wide binary tree with a cross edge, as in `shard_props`: levels grow
/// to hundreds of states, far past a tiny byte budget.
struct WideTree {
    bound: usize,
    /// Depth at which every expansion panics (`usize::MAX` = never).
    panic_depth: usize,
}

impl StateSpace for WideTree {
    type State = u64;
    type Finding = u64;

    fn digest(&self, s: &u64) -> Digest {
        digest128_of(s)
    }

    fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
        assert!(depth < self.panic_depth, "injected mid-exploration panic");
        if depth >= self.bound {
            ctx.finding(s);
            return;
        }
        ctx.push(s * 2 + 1);
        ctx.push(s * 2 + 2);
        ctx.push(s | 1);
    }
}

fn tree(bound: usize) -> WideTree {
    WideTree {
        bound,
        panic_depth: usize::MAX,
    }
}

#[test]
fn normal_completion_creates_the_dir_and_removes_every_file() {
    for codec in CODECS {
        let dir = fresh_dir("normal");
        assert!(!dir.exists(), "test premise: dir must start absent");
        let out = Checker::parallel_bfs(1)
            .with_mem_budget(256)
            .with_spill_dir(&dir)
            .with_spill_codec(codec)
            .run(&tree(9), vec![0]);
        assert!(
            out.stats.spilled_chunks >= 2,
            "{codec:?}: budget must force spilling"
        );
        assert!(dir.exists(), "{codec:?}: absent spill dir must be created");
        assert_eq!(dir_entries(&dir), Vec::<String>::new(), "{codec:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn early_stop_removes_every_file() {
    for codec in CODECS {
        let dir = fresh_dir("early-stop");
        // Findings only appear at the horizon, so the stop fires while
        // both the consumed frontier and the half-built next frontier
        // hold spill files.
        let out = Checker::parallel_bfs(1)
            .with_mem_budget(256)
            .with_spill_dir(&dir)
            .with_spill_codec(codec)
            .run_until(&tree(9), vec![0], |findings| !findings.is_empty());
        assert!(out.stats.stopped_early, "{codec:?}");
        assert!(
            out.stats.spilled_chunks >= 2,
            "{codec:?}: budget must force spilling"
        );
        assert_eq!(dir_entries(&dir), Vec::<String>::new(), "{codec:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn panic_mid_exploration_removes_every_file() {
    for codec in CODECS {
        let dir = fresh_dir("panic");
        let space = WideTree {
            bound: 9,
            panic_depth: 6,
        };
        let checker = Checker::parallel_bfs(1)
            .with_mem_budget(256)
            .with_spill_dir(&dir)
            .with_spill_codec(codec);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            checker.run(&space, vec![0])
        }));
        assert!(
            result.is_err(),
            "{codec:?}: the injected panic must surface"
        );
        assert!(
            dir.exists(),
            "{codec:?}: spilling must have started before the depth-6 panic"
        );
        assert_eq!(
            dir_entries(&dir),
            Vec::<String>::new(),
            "{codec:?}: unwinding must drop (and delete) live spill files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn panic_inside_replay_regeneration_removes_every_file() {
    // Replay is the only codec that re-enters `expand` *while a chunk is
    // being replayed*: a panic there unwinds through the chunk iterator
    // and both live frontiers at once. A regeneration is detectable from
    // inside the space: BFS depths are non-decreasing for ordinary
    // expansions, so any `expand` call whose depth is *below* the
    // maximum depth already seen must be a replay re-expansion (parents
    // of a level's second and later chunks re-expand after that level's
    // own expansions began).
    struct PanicOnRegen {
        bound: usize,
        max_depth: AtomicUsize,
    }
    impl StateSpace for PanicOnRegen {
        type State = u64;
        type Finding = u64;
        fn digest(&self, s: &u64) -> Digest {
            digest128_of(s)
        }
        fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
            let seen = self.max_depth.fetch_max(depth, Ordering::Relaxed);
            assert!(
                depth >= seen,
                "injected panic inside replay regeneration (depth {depth} < seen {seen})"
            );
            if depth >= self.bound {
                ctx.finding(s);
                return;
            }
            ctx.push(s * 2 + 1);
            ctx.push(s * 2 + 2);
            ctx.push(s | 1);
        }
    }
    let dir = fresh_dir("replay-panic");
    let space = PanicOnRegen {
        bound: 9,
        max_depth: AtomicUsize::new(0),
    };
    let checker = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .with_spill_codec(SpillCodec::Replay);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        checker.run(&space, vec![0])
    }));
    assert!(result.is_err(), "the regeneration panic must surface");
    assert!(dir.exists(), "spilling must have started before the panic");
    assert_eq!(
        dir_entries(&dir),
        Vec::<String>::new(),
        "unwinding from inside a chunk replay must still delete every file"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_truncation_and_reexpansion_accounting_match_resident() {
    // Two pins in one run shape: (a) a config budget that truncates
    // mid-level cuts the same prefix under replay spilling as resident
    // exploration; (b) replay re-expands each parent at most once per
    // level — total expansions are exactly configs + replayed_parents
    // (WideTree has no successor fast path, so every replayed record
    // costs one fallback re-expansion).
    struct CountingTree {
        inner: WideTree,
        expansions: AtomicUsize,
    }
    impl StateSpace for CountingTree {
        type State = u64;
        type Finding = u64;
        fn digest(&self, s: &u64) -> Digest {
            digest128_of(s)
        }
        fn expand(&self, s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
            self.expansions.fetch_add(1, Ordering::Relaxed);
            if depth >= self.inner.bound {
                ctx.finding(*s);
                return;
            }
            ctx.push(s * 2 + 1);
            ctx.push(s * 2 + 2);
            ctx.push(s | 1);
        }
    }
    let counting = |bound: usize| CountingTree {
        inner: tree(bound),
        expansions: AtomicUsize::new(0),
    };
    for config_budget in [None, Some(500usize)] {
        let dir = fresh_dir("replay-trunc");
        let space = counting(8);
        let mut resident_checker = Checker::parallel_bfs(1).with_mem_budget(0);
        let mut replay_checker = Checker::parallel_bfs(1)
            .with_mem_budget(256)
            .with_spill_dir(&dir)
            .with_spill_codec(SpillCodec::Replay);
        if let Some(budget) = config_budget {
            resident_checker = resident_checker.with_budget(budget);
            replay_checker = replay_checker.with_budget(budget);
        }
        let resident = resident_checker.run(&space, vec![0]);
        let resident_expansions = space.expansions.swap(0, Ordering::Relaxed);
        let replayed = replay_checker.run(&space, vec![0]);
        let replay_expansions = space.expansions.load(Ordering::Relaxed);
        let label = format!("config budget {config_budget:?}");
        assert_eq!(replayed.findings, resident.findings, "{label}");
        assert_eq!(replayed.stats.configs, resident.stats.configs, "{label}");
        assert_eq!(
            replayed.stats.dedup_hits, resident.stats.dedup_hits,
            "{label}"
        );
        assert_eq!(
            replayed.stats.truncated, resident.stats.truncated,
            "{label}"
        );
        assert_eq!(resident_expansions, resident.stats.configs, "{label}");
        assert!(replayed.stats.spilled_chunks >= 2, "{label}: must spill");
        assert!(replayed.stats.replayed_parents > 0, "{label}");
        assert_eq!(
            replay_expansions,
            replayed.stats.configs + replayed.stats.replayed_parents,
            "{label}: replay must re-expand each spilled parent exactly once \
             per level ({} expansions for {} configs + {} replayed parents)",
            replay_expansions,
            replayed.stats.configs,
            replayed.stats.replayed_parents
        );
        assert!(
            replayed.stats.replayed_parents <= replayed.stats.configs,
            "{label}: more regenerations than parents"
        );
        assert_eq!(dir_entries(&dir), Vec::<String>::new(), "{label}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn env_knobs_are_honored_and_dir_created_if_absent() {
    let dir = fresh_dir("env");
    assert!(!dir.exists());
    std::env::set_var("SLX_ENGINE_SPILL_DIR", &dir);
    std::env::set_var("SLX_ENGINE_MEM_BUDGET", "256");
    // No explicit knobs: budget and directory must come from the
    // environment.
    let checker = Checker::parallel_bfs(1);
    assert_eq!(checker.resolve_mem_budget(), Some(256));
    let out = checker.run(&tree(9), vec![0]);
    assert!(
        out.stats.spilled_chunks >= 2,
        "SLX_ENGINE_MEM_BUDGET must force spilling"
    );
    assert!(out.stats.spilled_bytes > 0);
    assert!(
        dir.exists(),
        "SLX_ENGINE_SPILL_DIR must be created if absent"
    );
    assert_eq!(dir_entries(&dir), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pool_recycles_at_most_two_files_under_delta_spilling() {
    use std::sync::atomic::AtomicUsize;

    // Observes the spill directory from *inside* the exploration: at any
    // point of a multi-level forced-spill run (delta-encoded chunks, the
    // default), at most two pooled files may exist — one for the level
    // being consumed, one for the level being built — and both inodes
    // are recycled across levels rather than churned.
    struct Watched {
        bound: usize,
        dir: PathBuf,
        max_seen: AtomicUsize,
    }

    impl StateSpace for Watched {
        type State = u64;
        type Finding = u64;

        fn digest(&self, s: &u64) -> Digest {
            digest128_of(s)
        }

        fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
            if self.dir.exists() {
                let seen = std::fs::read_dir(&self.dir).unwrap().count();
                self.max_seen.fetch_max(seen, Ordering::Relaxed);
                assert!(
                    seen <= 2,
                    "{seen} spill files at depth {depth}; the pool must hold \
                     at most two (consumed level + built level)"
                );
            }
            if depth >= self.bound {
                ctx.finding(s);
                return;
            }
            ctx.push(s * 2 + 1);
            ctx.push(s * 2 + 2);
            ctx.push(s | 1);
        }
    }

    let dir = fresh_dir("pool");
    let space = Watched {
        bound: 9,
        dir: dir.clone(),
        max_seen: AtomicUsize::new(0),
    };
    let out = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run(&space, vec![0]);
    assert!(
        out.stats.spilled_chunks >= 4,
        "several levels must spill (got {} chunks)",
        out.stats.spilled_chunks
    );
    assert_eq!(
        space.max_seen.load(Ordering::Relaxed),
        2,
        "both pooled files must actually be exercised"
    );
    assert_eq!(dir_entries(&dir), Vec::<String>::new(), "cleanup on end");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_enospc_leaves_no_spill_files_behind() {
    // The temp-file-leak regression: a chunk write that fails with
    // ENOSPC used to strand the half-written file outside the pool's
    // cleanup. Under an injected out-of-space schedule every codec must
    // finish (degrading to resident levels) or fail with a typed error —
    // and either way the spill directory must end empty.
    use slx_engine::{EngineError, FaultKind, FaultOp, FaultPlan};
    for codec in CODECS {
        let dir = fresh_dir("enospc");
        let baseline = Checker::parallel_bfs(1)
            .with_mem_budget(0)
            .run(&tree(9), vec![0]);
        let plan = FaultPlan::seeded(0xBAD_D15C)
            .with_rate(256)
            .with_ops(&[
                FaultOp::SpillCreate,
                FaultOp::SpillWrite,
                FaultOp::SpillRead,
            ])
            .with_kinds(&[FaultKind::Enospc]);
        let result = Checker::parallel_bfs(1)
            .with_mem_budget(256)
            .with_spill_dir(&dir)
            .with_spill_codec(codec)
            .with_fault_plan(plan)
            .try_run(&tree(9), vec![0]);
        match result {
            Ok(out) => {
                assert_eq!(out.findings, baseline.findings, "{codec:?}");
                assert_eq!(out.stats.configs, baseline.stats.configs, "{codec:?}");
                assert!(out.stats.faults_injected > 0, "{codec:?}");
                assert!(
                    out.stats.degraded_levels > 0,
                    "{codec:?}: a quarter-rate ENOSPC schedule must degrade"
                );
            }
            Err(err) => assert!(
                matches!(
                    err,
                    EngineError::SpillIo { .. } | EngineError::SpillExhausted { .. }
                ),
                "{codec:?}: unexpected failure class: {err}"
            ),
        }
        if dir.exists() {
            assert_eq!(
                dir_entries(&dir),
                Vec::<String>::new(),
                "{codec:?}: ENOSPC must not strand spill files"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn spilled_run_is_bit_identical_to_resident_run() {
    // The hygiene suite's sanity anchor: the same space explored with and
    // without spilling (budget pinned off) reports identical results.
    let dir = fresh_dir("identical");
    let resident = Checker::parallel_bfs(1)
        .with_mem_budget(0)
        .run(&tree(8), vec![0]);
    let spilled = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run(&tree(8), vec![0]);
    assert_eq!(spilled.findings, resident.findings);
    assert_eq!(spilled.stats.configs, resident.stats.configs);
    assert_eq!(spilled.stats.transitions, resident.stats.transitions);
    assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
    assert_eq!(spilled.stats.peak_frontier, resident.stats.peak_frontier);
    assert_eq!(resident.stats.spilled_chunks, 0);
    assert!(spilled.stats.spilled_chunks > 0);
    assert!(spilled.stats.peak_resident_states < spilled.stats.peak_frontier);
    std::fs::remove_dir_all(&dir).unwrap();
}
