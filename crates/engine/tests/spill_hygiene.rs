//! Spill-file hygiene: temp files must vanish however a run ends.
//!
//! The disk-backed frontier creates at most one temp file per frontier
//! and deletes it when the frontier drops. These tests pin that behaviour
//! at the `Checker` level for every exit path — normal completion, early
//! stop mid-level, and a panic mid-exploration — plus the
//! `SLX_ENGINE_SPILL_DIR` / `SLX_ENGINE_MEM_BUDGET` environment knobs
//! (directory honored and created if absent).
//!
//! Every test other than the env-var one pins its budget and directory
//! explicitly, so the `set_var` below cannot leak into them regardless of
//! test-thread interleaving.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use slx_engine::{digest128_of, Checker, Digest, Expansion, StateSpace};

/// A fresh, unique, not-yet-created directory for one test.
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "slx-hygiene-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn dir_entries(dir: &PathBuf) -> Vec<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|err| panic!("spill dir {} unreadable: {err}", dir.display()))
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect()
}

/// A wide binary tree with a cross edge, as in `shard_props`: levels grow
/// to hundreds of states, far past a tiny byte budget.
struct WideTree {
    bound: usize,
    /// Depth at which every expansion panics (`usize::MAX` = never).
    panic_depth: usize,
}

impl StateSpace for WideTree {
    type State = u64;
    type Finding = u64;

    fn digest(&self, s: &u64) -> Digest {
        digest128_of(s)
    }

    fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
        assert!(depth < self.panic_depth, "injected mid-exploration panic");
        if depth >= self.bound {
            ctx.finding(s);
            return;
        }
        ctx.push(s * 2 + 1);
        ctx.push(s * 2 + 2);
        ctx.push(s | 1);
    }
}

fn tree(bound: usize) -> WideTree {
    WideTree {
        bound,
        panic_depth: usize::MAX,
    }
}

#[test]
fn normal_completion_creates_the_dir_and_removes_every_file() {
    let dir = fresh_dir("normal");
    assert!(!dir.exists(), "test premise: dir must start absent");
    let out = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run(&tree(9), vec![0]);
    assert!(out.stats.spilled_chunks >= 2, "budget must force spilling");
    assert!(dir.exists(), "absent spill dir must be created");
    assert_eq!(dir_entries(&dir), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn early_stop_removes_every_file() {
    let dir = fresh_dir("early-stop");
    // Findings only appear at the horizon, so the stop fires while both
    // the consumed frontier and the half-built next frontier hold spill
    // files.
    let out = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run_until(&tree(9), vec![0], |findings| !findings.is_empty());
    assert!(out.stats.stopped_early);
    assert!(out.stats.spilled_chunks >= 2, "budget must force spilling");
    assert_eq!(dir_entries(&dir), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn panic_mid_exploration_removes_every_file() {
    let dir = fresh_dir("panic");
    let space = WideTree {
        bound: 9,
        panic_depth: 6,
    };
    let checker = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        checker.run(&space, vec![0])
    }));
    assert!(result.is_err(), "the injected panic must surface");
    assert!(
        dir.exists(),
        "spilling must have started before the depth-6 panic"
    );
    assert_eq!(
        dir_entries(&dir),
        Vec::<String>::new(),
        "unwinding must drop (and delete) live spill files"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn env_knobs_are_honored_and_dir_created_if_absent() {
    let dir = fresh_dir("env");
    assert!(!dir.exists());
    std::env::set_var("SLX_ENGINE_SPILL_DIR", &dir);
    std::env::set_var("SLX_ENGINE_MEM_BUDGET", "256");
    // No explicit knobs: budget and directory must come from the
    // environment.
    let checker = Checker::parallel_bfs(1);
    assert_eq!(checker.resolve_mem_budget(), Some(256));
    let out = checker.run(&tree(9), vec![0]);
    assert!(
        out.stats.spilled_chunks >= 2,
        "SLX_ENGINE_MEM_BUDGET must force spilling"
    );
    assert!(out.stats.spilled_bytes > 0);
    assert!(
        dir.exists(),
        "SLX_ENGINE_SPILL_DIR must be created if absent"
    );
    assert_eq!(dir_entries(&dir), Vec::<String>::new());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pool_recycles_at_most_two_files_under_delta_spilling() {
    use std::sync::atomic::AtomicUsize;

    // Observes the spill directory from *inside* the exploration: at any
    // point of a multi-level forced-spill run (delta-encoded chunks, the
    // default), at most two pooled files may exist — one for the level
    // being consumed, one for the level being built — and both inodes
    // are recycled across levels rather than churned.
    struct Watched {
        bound: usize,
        dir: PathBuf,
        max_seen: AtomicUsize,
    }

    impl StateSpace for Watched {
        type State = u64;
        type Finding = u64;

        fn digest(&self, s: &u64) -> Digest {
            digest128_of(s)
        }

        fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
            if self.dir.exists() {
                let seen = std::fs::read_dir(&self.dir).unwrap().count();
                self.max_seen.fetch_max(seen, Ordering::Relaxed);
                assert!(
                    seen <= 2,
                    "{seen} spill files at depth {depth}; the pool must hold \
                     at most two (consumed level + built level)"
                );
            }
            if depth >= self.bound {
                ctx.finding(s);
                return;
            }
            ctx.push(s * 2 + 1);
            ctx.push(s * 2 + 2);
            ctx.push(s | 1);
        }
    }

    let dir = fresh_dir("pool");
    let space = Watched {
        bound: 9,
        dir: dir.clone(),
        max_seen: AtomicUsize::new(0),
    };
    let out = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run(&space, vec![0]);
    assert!(
        out.stats.spilled_chunks >= 4,
        "several levels must spill (got {} chunks)",
        out.stats.spilled_chunks
    );
    assert_eq!(
        space.max_seen.load(Ordering::Relaxed),
        2,
        "both pooled files must actually be exercised"
    );
    assert_eq!(dir_entries(&dir), Vec::<String>::new(), "cleanup on end");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spilled_run_is_bit_identical_to_resident_run() {
    // The hygiene suite's sanity anchor: the same space explored with and
    // without spilling (budget pinned off) reports identical results.
    let dir = fresh_dir("identical");
    let resident = Checker::parallel_bfs(1)
        .with_mem_budget(0)
        .run(&tree(8), vec![0]);
    let spilled = Checker::parallel_bfs(1)
        .with_mem_budget(256)
        .with_spill_dir(&dir)
        .run(&tree(8), vec![0]);
    assert_eq!(spilled.findings, resident.findings);
    assert_eq!(spilled.stats.configs, resident.stats.configs);
    assert_eq!(spilled.stats.transitions, resident.stats.transitions);
    assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
    assert_eq!(spilled.stats.peak_frontier, resident.stats.peak_frontier);
    assert_eq!(resident.stats.spilled_chunks, 0);
    assert!(spilled.stats.spilled_chunks > 0);
    assert!(spilled.stats.peak_resident_states < spilled.stats.peak_frontier);
    std::fs::remove_dir_all(&dir).unwrap();
}
