//! Differential pin for the deterministic-hasher migration.
//!
//! PR 9 swapped every default-hasher `HashMap`/`HashSet` on a
//! verdict-producing path (BFS exact-seen, DFS visited, visited-set
//! shards, delta-intern tables) for the fixed-seed [`DetHashMap`] /
//! [`DetHashSet`] aliases. The swap must be *invisible*: identical
//! verdicts, counters, findings, and occupancies across backends, thread
//! counts, and shard counts — and bit-identical stats across repeated
//! runs of the same configuration, which the fixed seed now guarantees
//! by construction rather than by every call site remembering to sort.

use slx_engine::{digest128_of, Checker, DetHashMap, DetHashSet, Digest, Expansion, StateSpace};

/// The usual diamond-rich grid walk: plenty of dedup, wide digests.
struct GridWalk {
    bound: u32,
}

impl StateSpace for GridWalk {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }
}

#[test]
fn verdicts_agree_across_backends_threads_and_shards() {
    let space = GridWalk { bound: 24 };
    let reference = Checker::sequential_dfs().run(&space, vec![(0, 0)]);
    assert_eq!(reference.findings, vec![(24, 24)]);
    assert!(!reference.stats.truncated);

    for threads in [1usize, 2, 4] {
        for shards in [1usize, 8, 64] {
            let out = Checker::parallel_bfs(threads)
                .with_shards(shards)
                .run(&space, vec![(0, 0)]);
            let label = format!("{threads} threads, {shards} shards");
            assert_eq!(out.findings, reference.findings, "{label}");
            assert_eq!(out.stats.configs, reference.stats.configs, "{label}");
            assert_eq!(
                out.stats.transitions, reference.stats.transitions,
                "{label}"
            );
            assert_eq!(out.stats.dedup_hits, reference.stats.dedup_hits, "{label}");
            assert_eq!(out.stats.truncated, reference.stats.truncated, "{label}");
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical_including_occupancies() {
    // Shard occupancy is the stat that would smoke out a hasher change:
    // it is reported per shard in shard order, straight off the visited
    // set. Two runs of the same configuration must agree exactly.
    let space = GridWalk { bound: 24 };
    let run = || {
        Checker::parallel_bfs(4)
            .with_shards(16)
            .run(&space, vec![(0, 0)])
    };
    let (a, b) = (run(), run());
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.stats.shard_occupancy, b.stats.shard_occupancy);
    assert_eq!(a.stats.configs, b.stats.configs);
    assert_eq!(a.stats.dedup_hits, b.stats.dedup_hits);
}

#[test]
fn det_containers_iterate_identically_across_instances() {
    // The property the fixed seed buys: same inserts, same order out —
    // across separately built containers (std's default hasher reseeds
    // per map, so this fails for it even within one process).
    let digests: Vec<u128> = (0..2000u64).map(|i| digest128_of(&i).0).collect();

    let mut set_a = DetHashSet::default();
    let mut set_b = DetHashSet::default();
    let mut map_a = DetHashMap::default();
    let mut map_b = DetHashMap::default();
    for &d in &digests {
        set_a.insert(d);
        set_b.insert(d);
        map_a.insert(d, d as u32);
        map_b.insert(d, d as u32);
    }
    assert_eq!(
        set_a.iter().copied().collect::<Vec<_>>(),
        set_b.iter().copied().collect::<Vec<_>>()
    );
    assert_eq!(
        map_a.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        map_b.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
    );
}
