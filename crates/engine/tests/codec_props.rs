//! Property-based validation of the scenario [`StateCodec`]s.
//!
//! Like `shard_props`, this is a self-contained SplitMix64 harness (the
//! external `proptest` crate is unavailable offline). For each scenario
//! the disk-backed frontier spills — consensus (`System<ConsWord, _>`
//! over CAS and obstruction-free implementations), transactional memory
//! (`System<TmWord, _>` over the global-version and AGP algorithms), and
//! the automata executions — it drives ~500+ randomly generated states
//! through `decode(encode(s))` and checks:
//!
//! 1. **Round trip**: the decoded state equals the original, *including*
//!    the history and event log (which `System`'s `Eq` deliberately
//!    ignores but findings and liveness views observe);
//! 2. **Digest stability**: the decoded state fingerprints identically,
//!    so a spilled-and-restored frontier dedups exactly like a resident
//!    one;
//! 3. **Encode determinism**: re-encoding produces identical bytes (chunk
//!    boundaries — hence spill determinism — depend on this).

use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use slx_engine::{DeltaCodec, DeltaCtx, StateCodec};
use slx_history::{Operation, ProcessId, Value, VarId};
use slx_memory::{Memory, System, Word};
use slx_tm::{AgpTm, GlobalVersionTm, TmWord};

mod common;
use common::Rng;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Checks the full-state invariants the spill replay depends on.
fn assert_faithful<W, P>(decoded: &System<W, P>, sys: &System<W, P>, label: &str, law: &str)
where
    W: Word + DeltaCodec + Send + Sync,
    P: slx_memory::Process<W> + DeltaCodec + Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    assert_eq!(
        decoded, sys,
        "{label}: {law}: configuration must round-trip"
    );
    assert_eq!(
        decoded.history(),
        sys.history(),
        "{label}: {law}: history must round-trip (Eq ignores it; findings do not)"
    );
    assert_eq!(
        decoded.events(),
        sys.events(),
        "{label}: {law}: event log must round-trip"
    );
    assert_eq!(
        decoded.digest128(),
        sys.digest128(),
        "{label}: {law}: fingerprint must be stable across the round trip"
    );
}

/// Round-trips one system state and checks all three codec laws, plus —
/// when a chunk predecessor is given — the delta-codec laws against it
/// (round trip, self-delimitation, encode determinism, and the
/// self-contained `prev = None` form the first record of a chunk uses).
fn check_system<W, P>(sys: &System<W, P>, prev: Option<&System<W, P>>, label: &str)
where
    W: Word + DeltaCodec + Send + Sync,
    P: slx_memory::Process<W> + DeltaCodec + Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut buf = Vec::new();
    sys.encode(&mut buf);

    let mut again = Vec::new();
    sys.encode(&mut again);
    assert_eq!(buf, again, "{label}: encode must be deterministic");

    let mut input = buf.as_slice();
    let decoded = System::<W, P>::decode(&mut input).unwrap_or_else(|| {
        panic!("{label}: decode failed on a freshly encoded state");
    });
    assert!(
        input.is_empty(),
        "{label}: decode must consume the encoding"
    );
    assert_faithful(&decoded, sys, label, "plain");

    for (delta_prev, law) in [(prev, "delta"), (None, "delta-self-contained")] {
        let mut delta = Vec::new();
        sys.encode_delta(delta_prev, &mut delta);
        let mut again = Vec::new();
        sys.encode_delta(delta_prev, &mut again);
        assert_eq!(delta, again, "{label}: {law} encode must be deterministic");
        let mut input = delta.as_slice();
        let mut ctx = DeltaCtx::new();
        let decoded = System::<W, P>::decode_delta(delta_prev, &mut input, &mut ctx)
            .unwrap_or_else(|| panic!("{label}: {law} decode failed on a fresh encoding"));
        assert!(
            input.is_empty(),
            "{label}: {law} decode must consume the encoding"
        );
        assert_faithful(&decoded, sys, label, law);
    }
}

/// Takes up to `steps` random steps, round-tripping after every one —
/// delta-checking each state against its predecessor on the walk (the
/// chunk-neighbour relationship the spill path encodes against).
fn walk_and_check<W, P>(sys: &mut System<W, P>, rng: &mut Rng, steps: usize, label: &str) -> usize
where
    W: Word + DeltaCodec + Send + Sync,
    P: slx_memory::Process<W> + DeltaCodec + Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut checked = 0;
    check_system(sys, None, label);
    checked += 1;
    for _ in 0..steps {
        let steppable = sys.steppable();
        if steppable.is_empty() {
            break;
        }
        let prev = sys.clone();
        let q = steppable[rng.below(steppable.len() as u64) as usize];
        sys.step(q).expect("steppable process steps");
        check_system(sys, Some(&prev), label);
        checked += 1;
    }
    checked
}

#[test]
fn consensus_states_round_trip() {
    let mut rng = Rng(0x00C0_DEC0);
    let mut checked = 0;
    for case in 0..18 {
        // Obstruction-free consensus: long adoptive runs under contention
        // exercise deep AdoptCommit sub-machine states.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(Value::new(rng.below(100) as i64)))
            .unwrap();
        sys.invoke(p(1), Operation::Propose(Value::new(rng.below(100) as i64)))
            .unwrap();
        checked += walk_and_check(&mut sys, &mut rng, 40, &format!("of-consensus case {case}"));

        // CAS consensus: short wait-free runs, including decided states.
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(Value::new(rng.below(100) as i64)))
            .unwrap();
        sys.invoke(p(1), Operation::Propose(Value::new(rng.below(100) as i64)))
            .unwrap();
        checked += walk_and_check(
            &mut sys,
            &mut rng,
            10,
            &format!("cas-consensus case {case}"),
        );
    }
    assert!(checked >= 500, "only {checked} consensus states checked");
}

/// Invokes a random TM operation on `q` if it is idle (ignoring the
/// occasional invalid invocation).
fn random_tm_invoke<P: slx_memory::Process<TmWord> + Clone + Eq + std::hash::Hash>(
    sys: &mut System<TmWord, P>,
    q: ProcessId,
    rng: &mut Rng,
) {
    if sys.is_pending(q) {
        return;
    }
    let x = VarId::new(0);
    let op = match rng.below(4) {
        0 => Operation::TxStart,
        1 => Operation::TxRead(x),
        2 => Operation::TxWrite(x, Value::new(rng.below(50) as i64)),
        _ => Operation::TxCommit,
    };
    let _ = sys.invoke(q, op);
}

#[test]
fn tm_states_round_trip() {
    let mut rng = Rng(0x7A11);
    let mut checked = 0;
    for case in 0..12 {
        // Global-version TM.
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = vec![GlobalVersionTm::new(c, 1), GlobalVersionTm::new(c, 1)];
        let mut sys = System::new(mem, procs);
        for _ in 0..12 {
            for i in 0..2 {
                random_tm_invoke(&mut sys, p(i), &mut rng);
            }
            checked += walk_and_check(&mut sys, &mut rng, 2, &format!("gv-tm case {case}"));
        }

        // AGP (Algorithm 1): adds the snapshot object and timestamps.
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, 2, 1);
        let procs = vec![AgpTm::new(c, r, p(0), 2, 1), AgpTm::new(c, r, p(1), 2, 1)];
        let mut sys = System::new(mem, procs);
        for _ in 0..8 {
            for i in 0..2 {
                random_tm_invoke(&mut sys, p(i), &mut rng);
            }
            checked += walk_and_check(&mut sys, &mut rng, 2, &format!("agp-tm case {case}"));
        }
    }
    assert!(checked >= 500, "only {checked} TM states checked");
}

#[test]
fn automata_states_round_trip() {
    use slx_automata::{Execution, StateId};

    let mut rng = Rng(0xA07A);
    let mut checked = 0;
    for case in 0..500 {
        let state = StateId(rng.below(1000) as usize);
        let mut buf = Vec::new();
        state.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(StateId::decode(&mut input), Some(state), "case {case}");
        assert!(input.is_empty());
        assert_eq!(
            slx_engine::digest128_of(&state),
            slx_engine::digest128_of(&StateId(state.0)),
            "case {case}: digest stability"
        );

        // A well-formed execution: n+1 states, n action labels.
        let n = rng.below(20) as usize;
        let exec = Execution {
            states: (0..=n).map(|_| StateId(rng.below(64) as usize)).collect(),
            actions: (0..n).map(|_| rng.next()).collect::<Vec<u64>>(),
        };
        let mut buf = Vec::new();
        exec.encode(&mut buf);
        let mut again = Vec::new();
        exec.encode(&mut again);
        assert_eq!(buf, again, "case {case}: encode determinism");
        let mut input = buf.as_slice();
        let decoded = Execution::<u64>::decode(&mut input).expect("fresh encoding decodes");
        assert!(input.is_empty());
        assert_eq!(decoded, exec, "case {case}");
        checked += 2;
    }
    assert!(checked >= 500);
}

#[test]
fn sibling_deltas_are_much_smaller_than_plain_records() {
    // One scheduled step apart — exactly the spill chunk neighbour
    // relationship. The delta must be a small fraction of the plain
    // record on the consensus workload (this is the ~1.3x-overhead
    // tentpole's mechanism, so pin it).
    let mut rng = Rng(0xD317A);
    let mut total_plain = 0usize;
    let mut total_delta = 0usize;
    for _ in 0..10 {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(Value::new(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(Value::new(2))).unwrap();
        for _ in 0..30 {
            let steppable = sys.steppable();
            if steppable.is_empty() {
                break;
            }
            let prev = sys.clone();
            let q = steppable[rng.below(steppable.len() as u64) as usize];
            sys.step(q).expect("steppable");
            let mut plain = Vec::new();
            sys.encode(&mut plain);
            let mut delta = Vec::new();
            sys.encode_delta(Some(&prev), &mut delta);
            total_plain += plain.len();
            total_delta += delta.len();
        }
    }
    assert!(
        total_delta * 4 < total_plain,
        "sibling deltas ({total_delta} bytes) must be under a quarter of \
         the plain records ({total_plain} bytes)"
    );
}

#[test]
fn overlong_varints_fail_cleanly_at_every_layer() {
    // `0x80 0x00` is an overlong LEB128 zero: a damaged spill file must
    // fail to decode rather than alias the valid one-byte form.
    let overlong: &[u8] = &[0x80, 0x00];
    let mut input = overlong;
    assert_eq!(u64::decode(&mut input), None);
    let mut input = overlong;
    assert_eq!(usize::decode(&mut input), None);
    let mut input = overlong;
    assert_eq!(ProcessId::decode(&mut input), None);
    let mut input = overlong;
    assert_eq!(Value::decode(&mut input), None, "zigzag path");
    // An otherwise-valid system encoding with one varint replaced by an
    // overlong form must fail loudly, not decode to a different state.
    let mut mem: Memory<ConsWord> = Memory::new();
    let obj = CasConsensus::alloc(&mut mem);
    let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
    sys.invoke(p(0), Operation::Propose(Value::new(1))).unwrap();
    let mut buf = Vec::new();
    sys.encode(&mut buf);
    // Splice: stretch the first zero byte (a varint in the memory pool
    // encoding) into its two-byte overlong form.
    let zero_at = buf
        .iter()
        .position(|&b| b == 0x00)
        .expect("some varint is zero");
    let mut damaged = buf[..zero_at].to_vec();
    damaged.extend_from_slice(&[0x80, 0x00]);
    damaged.extend_from_slice(&buf[zero_at + 1..]);
    let mut input = damaged.as_slice();
    let decoded = System::<ConsWord, CasConsensus>::decode(&mut input);
    assert!(
        decoded.is_none() || !input.is_empty(),
        "an overlong splice must not silently decode as a full valid record"
    );
}

#[test]
fn truncated_delta_encodings_fail_cleanly() {
    // Every strict prefix of a delta record must decode to None against
    // the same predecessor — same totality law as the plain codec.
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 8);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
        ObstructionFreeConsensus::new(layout, p(1), 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p(0), Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p(1), Operation::Propose(Value::new(2))).unwrap();
    let prev = sys.clone();
    for _ in 0..3 {
        sys.step(p(0)).unwrap();
    }
    let mut buf = Vec::new();
    sys.encode_delta(Some(&prev), &mut buf);
    for cut in 0..buf.len() {
        let mut input = &buf[..cut];
        let mut ctx = DeltaCtx::new();
        assert!(
            System::<ConsWord, ObstructionFreeConsensus>::decode_delta(
                Some(&prev),
                &mut input,
                &mut ctx
            )
            .is_none(),
            "delta prefix of length {cut} must not decode"
        );
    }
}

#[test]
fn truncated_system_encodings_fail_cleanly() {
    // Every strict prefix of a real encoding must decode to None — a
    // truncated spill file cannot silently yield a different state.
    let mut mem: Memory<ConsWord> = Memory::new();
    let obj = CasConsensus::alloc(&mut mem);
    let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
    sys.invoke(p(0), Operation::Propose(Value::new(1))).unwrap();
    sys.step(p(0)).unwrap();
    let mut buf = Vec::new();
    sys.encode(&mut buf);
    for cut in 0..buf.len() {
        let mut input = &buf[..cut];
        assert!(
            System::<ConsWord, CasConsensus>::decode(&mut input).is_none(),
            "prefix of length {cut} must not decode"
        );
    }
}
