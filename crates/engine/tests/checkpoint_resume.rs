//! Crash/resume differential: a checkpointed run killed at a random
//! level boundary and resumed must be **bit-identical** to the
//! uninterrupted run — verdict (findings), state counts (`configs`,
//! `transitions`, `dedup_hits`, `orbit_hits`, `peak_frontier`,
//! `shard_occupancy`), and truncation flags — across the
//! {resident, plain, delta, replay} × {symmetry on, off} matrix.
//!
//! The "crash" is an injected panic on the first expansion of the kill
//! level, caught with `catch_unwind`: the last committed checkpoint
//! survives (commits are atomic renames at level boundaries), everything
//! after it dies mid-level, exactly like a SIGKILL between two commits.
//! Kill depths are drawn from a SplitMix64 stream so each matrix cell
//! exercises a different boundary; the fixed seed keeps failures
//! reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};

use slx_engine::{
    Checker, CheckpointStore, Digest, Expansion, ExploreStats, SpillCodec, StateSpace,
};

const SEED: u64 = 0xC0FF_EE00_D15E_A5E5;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Transpose-symmetric grid walk with an injectable crash: `(x, y)` with
/// moves +x/+y to a bound, a finding at the far corner, coordinate-sort
/// canonicalization (sound: the dynamics and the finding are
/// swap-invariant) — and a panic on the first expansion at `kill_depth`,
/// standing in for the process dying mid-level.
struct CrashyGrid {
    bound: u32,
    kill_depth: usize,
}

/// Disarmed value for [`CrashyGrid::kill_depth`].
const NEVER: usize = usize::MAX;

impl StateSpace for CrashyGrid {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
        assert!(depth < self.kill_depth, "injected crash at level {depth}");
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }

    fn has_symmetry_reduction(&self) -> bool {
        true
    }

    fn canonical_digest(&self, state: &Self::State) -> Digest {
        self.digest(&self.orbit_representative(state))
    }

    fn orbit_representative(&self, &(x, y): &Self::State) -> Self::State {
        (x.min(y), x.max(y))
    }
}

fn grid(bound: u32) -> CrashyGrid {
    CrashyGrid {
        bound,
        kill_depth: NEVER,
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slx-ckpt-resume-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("test checkpoint dir");
    dir
}

/// The statistics the resume contract pins bit-identically. Spill-volume
/// counters (`spilled_*`, `peak_resident_*`, `replayed_parents`) measure
/// I/O actually performed and legitimately differ across a resume.
fn identical_part(stats: &ExploreStats) -> impl PartialEq + std::fmt::Debug {
    (
        stats.configs,
        stats.transitions,
        stats.dedup_hits,
        stats.orbit_hits,
        stats.peak_frontier,
        stats.shard_occupancy.clone(),
        stats.truncated,
        stats.stopped_early,
    )
}

/// One checker per matrix cell: single-threaded, pinned shards, the
/// cell's spill budget/codec and symmetry setting.
fn cell_checker(budget: usize, codec: SpillCodec, symmetry: bool) -> Checker {
    Checker::parallel_bfs(1)
        .with_shards(8)
        .with_mem_budget(budget)
        .with_spill_codec(codec)
        .with_symmetry(symmetry)
}

#[test]
fn killed_and_resumed_runs_match_uninterrupted_ones_across_the_matrix() {
    // (budget, codec): budget 0 is the resident arm (the codec is inert
    // there for spilling but still the checkpoint frontier encoding);
    // 128 bytes (64-byte chunks of two-varint-byte records) forces every
    // level of the 41-wide grid wider than ~32 states to spill.
    let arms = [
        (0usize, SpillCodec::Delta),
        (128, SpillCodec::Plain),
        (128, SpillCodec::Delta),
        (128, SpillCodec::Replay),
    ];
    let mut rng = SEED;
    for (budget, codec) in arms {
        for symmetry in [false, true] {
            let space = grid(40);
            let baseline = cell_checker(budget, codec, symmetry).run(&space, vec![(0, 0)]);
            assert_eq!(baseline.findings, vec![(40, 40)]);
            assert_eq!(baseline.stats.checkpoints_written, 0);
            if symmetry {
                assert!(baseline.stats.orbit_hits > 0);
            }
            // Symmetry halves level widths (only x <= y survives), which
            // keeps every window under the 64-byte chunk bound — so only
            // the unreduced budgeted arms are guaranteed to spill.
            if budget > 0 && !symmetry {
                assert!(baseline.stats.spilled_chunks > 0, "{codec:?} must spill");
            }

            // Cadence in [1, 3], kill somewhere past the first boundary
            // (so a committed checkpoint exists to resume from) and
            // before the run ends at depth 80.
            let every = 1 + (splitmix64(&mut rng) % 3) as usize;
            let kill = every + (splitmix64(&mut rng) as usize) % (78 - every);
            let dir = unique_dir("matrix");
            let label =
                format!("{codec:?}/sym={symmetry}/budget={budget}/every={every}/kill={kill}");

            // Crash: the injected panic fires expanding level `kill`,
            // after the last cadence boundary at or below it committed.
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cell_checker(budget, codec, symmetry)
                    .with_checkpoint(&dir, every)
                    .run(
                        &CrashyGrid {
                            bound: 40,
                            kill_depth: kill,
                        },
                        vec![(0, 0)],
                    )
            }));
            assert!(crashed.is_err(), "{label}: the kill level must be reached");
            assert!(
                CheckpointStore::exists(&dir),
                "{label}: a committed checkpoint must survive the crash"
            );

            // Resume: bit-identical verdict, counts, and flags.
            let resumed = cell_checker(budget, codec, symmetry)
                .resume(&dir)
                .run(&space, vec![(0, 0)]);
            assert_eq!(resumed.findings, baseline.findings, "{label}");
            assert_eq!(
                identical_part(&resumed.stats),
                identical_part(&baseline.stats),
                "{label}"
            );
            let resumed_from = resumed
                .stats
                .resumed_from_depth
                .expect("resumed runs report their entry level");
            assert!(
                resumed_from.is_multiple_of(every) && resumed_from <= kill,
                "{label}: resumed at {resumed_from}, not a committed boundary"
            );
            // Whenever the uninterrupted replay-codec run spilled, the
            // crash/resume pair must have replayed too: either the
            // crashed segment already regenerated (and the restored
            // counter carries it) or the resumed tail crosses the wide
            // spilling levels itself.
            if codec == SpillCodec::Replay && baseline.stats.spilled_chunks > 0 {
                assert!(
                    resumed.stats.replayed_parents > 0,
                    "{label}: the resumed run must still replay-regenerate"
                );
            }
            std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
        }
    }
}

#[test]
fn checkpointing_overhead_changes_no_verdict_or_count() {
    // Checkpoint-on vs checkpoint-off, uninterrupted: the store must be
    // a pure observer. Also pins the lifetime checkpoint count and that
    // a completed run leaves its last image on disk (callers own the
    // directory's lifecycle).
    let space = grid(12);
    let off = cell_checker(128, SpillCodec::Delta, true).run(&space, vec![(0, 0)]);
    let dir = unique_dir("observer");
    let on = cell_checker(128, SpillCodec::Delta, true)
        .with_checkpoint(&dir, 5)
        .run(&space, vec![(0, 0)]);
    assert_eq!(on.findings, off.findings);
    assert_eq!(identical_part(&on.stats), identical_part(&off.stats));
    assert_eq!(on.stats.checkpoints_written, 4, "levels 5, 10, 15, 20");
    assert!(CheckpointStore::exists(&dir));
    assert_eq!(off.stats.checkpoints_written, 0);
    assert!(off.stats.resumed_from_depth.is_none());
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

#[test]
fn resumed_runs_keep_checkpointing_and_can_resume_again() {
    // Crash twice at different boundaries: each resume re-arms the store
    // in the same directory, and the lifetime checkpoint count carried
    // across both segments equals the uninterrupted run's.
    let dir = unique_dir("twice");
    let baseline = cell_checker(128, SpillCodec::Delta, false).run(&grid(15), vec![(0, 0)]);
    let ckpt_baseline = {
        let dir = unique_dir("twice-ref");
        let out = cell_checker(128, SpillCodec::Delta, false)
            .with_checkpoint(&dir, 2)
            .run(&grid(15), vec![(0, 0)]);
        std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
        out
    };
    for kill in [7usize, 19] {
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let checker = cell_checker(128, SpillCodec::Delta, false).with_checkpoint(&dir, 2);
            let checker = if CheckpointStore::exists(&dir) {
                checker.resume(&dir)
            } else {
                checker
            };
            checker.run(
                &CrashyGrid {
                    bound: 15,
                    kill_depth: kill,
                },
                vec![(0, 0)],
            )
        }));
        assert!(crashed.is_err(), "kill at {kill} must be reached");
    }
    // The cadence is deliberately not part of the validated header (it
    // affects only checkpoint timing, never the verdict), so a resume
    // that wants the same lifetime count must re-state it.
    let finished = cell_checker(128, SpillCodec::Delta, false)
        .with_checkpoint(&dir, 2)
        .resume(&dir)
        .run(&grid(15), vec![(0, 0)]);
    assert_eq!(finished.findings, baseline.findings);
    assert_eq!(
        identical_part(&finished.stats),
        identical_part(&baseline.stats)
    );
    assert_eq!(
        finished.stats.checkpoints_written, ckpt_baseline.stats.checkpoints_written,
        "the lifetime count spans all segments, without double-counting \
         the boundaries the resumes re-entered at"
    );
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

#[test]
fn parallel_resume_matches_single_threaded_baseline() {
    // Determinism across thread counts extends to crash/resume: kill a
    // 2-thread checkpointed run, resume with 2 threads, compare against
    // the 1-thread uninterrupted baseline.
    let baseline = Checker::parallel_bfs(1)
        .with_shards(8)
        .run(&grid(40), vec![(0, 0)]);
    let dir = unique_dir("threads");
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Checker::parallel_bfs(2)
            .with_shards(8)
            .with_checkpoint(&dir, 3)
            .run(
                &CrashyGrid {
                    bound: 40,
                    kill_depth: 31,
                },
                vec![(0, 0)],
            )
    }));
    assert!(crashed.is_err());
    let resumed = Checker::parallel_bfs(2)
        .with_shards(8)
        .resume(&dir)
        .run(&grid(40), vec![(0, 0)]);
    assert_eq!(resumed.findings, baseline.findings);
    assert_eq!(
        identical_part(&resumed.stats),
        identical_part(&baseline.stats)
    );
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

/// Chain walk whose every expansion sleeps: `0 -> 1 -> ... -> bound`,
/// one state per level, a finding at the end — so wall-clock grows
/// linearly and predictably with depth. Used to pin the *lifetime*
/// `elapsed` accounting across a crash/resume.
struct SlowChain {
    bound: u32,
    kill_depth: usize,
    step: std::time::Duration,
}

impl StateSpace for SlowChain {
    type State = u32;
    type Finding = u32;

    fn digest(&self, state: &Self::State) -> Digest {
        slx_engine::digest128_of(state)
    }

    fn expand(&self, &s: &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
        assert!(depth < self.kill_depth, "injected crash at level {depth}");
        std::thread::sleep(self.step);
        if s < self.bound {
            ctx.push(s + 1);
        } else {
            ctx.finding(s);
        }
    }
}

#[test]
fn resumed_elapsed_accumulates_the_pre_crash_segments() {
    // The inflated-throughput regression: `configs` is a lifetime counter
    // restored from the image, but `elapsed` used to restart at zero for
    // the resumed segment — so `states_per_sec` over-reported by the
    // ratio of lifetime work to tail work. Images now persist lifetime
    // elapsed (format v2) and resumed runs accumulate it.
    let step = std::time::Duration::from_millis(3);
    let dir = unique_dir("elapsed");
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Checker::parallel_bfs(1).with_checkpoint(&dir, 1).run(
            &SlowChain {
                bound: 40,
                kill_depth: 30,
                step,
            },
            vec![0u32],
        )
    }));
    assert!(crashed.is_err(), "the kill level must be reached");
    let resumed = Checker::parallel_bfs(1).resume(&dir).run(
        &SlowChain {
            bound: 40,
            kill_depth: NEVER,
            step,
        },
        vec![0u32],
    );
    assert_eq!(resumed.findings, vec![40]);
    // Thirty pre-crash levels of >= 3ms each were already on the clock
    // when the last image committed; the resumed tail alone is ~11
    // levels (~33ms). Without accumulation the final elapsed would sit
    // far below this floor — and the derived rate (lifetime configs over
    // tail elapsed) would be inflated several-fold vs the fresh run.
    assert!(
        resumed.stats.elapsed >= std::time::Duration::from_millis(90),
        "lifetime elapsed must include the pre-crash segment: {:?}",
        resumed.stats.elapsed
    );
    assert!(
        resumed.stats.states_per_sec() <= resumed.stats.configs as f64 / 0.090,
        "states/s must be derived from lifetime elapsed, got {}",
        resumed.stats.states_per_sec()
    );
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

#[test]
fn stale_staging_files_from_a_kill_mid_commit_are_reclaimed_on_resume() {
    // A SIGKILL between writing `slx-checkpoint.bin.tmp` and the atomic
    // rename strands the staging file: nothing ever committed it, and
    // before the hygiene fix nothing ever deleted it either. Re-arming a
    // store in that directory must reclaim it, and the stranded bytes
    // must not disturb the resume (commits only ever read FILE_NAME).
    let dir = unique_dir("stale-tmp");
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cell_checker(0, SpillCodec::Delta, false)
            .with_checkpoint(&dir, 2)
            .run(
                &CrashyGrid {
                    bound: 15,
                    kill_depth: 9,
                },
                vec![(0, 0)],
            )
    }));
    assert!(crashed.is_err(), "the kill level must be reached");
    let tmp = dir.join("slx-checkpoint.bin.tmp");
    std::fs::write(&tmp, b"half-written staging garbage").expect("plant stale tmp");

    let baseline = cell_checker(0, SpillCodec::Delta, false).run(&grid(15), vec![(0, 0)]);
    let resumed = cell_checker(0, SpillCodec::Delta, false)
        .with_checkpoint(&dir, 2)
        .resume(&dir)
        .run(&grid(15), vec![(0, 0)]);
    assert_eq!(resumed.findings, baseline.findings);
    assert_eq!(
        identical_part(&resumed.stats),
        identical_part(&baseline.stats)
    );
    assert!(
        !tmp.exists(),
        "the stranded staging file must be reclaimed by the next commit cycle"
    );
    assert!(CheckpointStore::exists(&dir));
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

#[test]
fn a_failed_commit_never_tears_the_previous_image() {
    // ENOSPC or a torn write *during* `commit_bytes` (injected on the
    // checkpoint write/sync/rename seams) must surface as a typed error
    // that leaves the previously committed image loadable and no staging
    // file behind — the atomic-rename discipline under real fault
    // pressure, not just a planted panic between commits. Seed-pinned:
    // one worker thread makes every schedule's outcome deterministic.
    use slx_engine::{FaultKind, FaultOp, FaultPlan};
    let baseline = cell_checker(0, SpillCodec::Delta, false).run(&grid(20), vec![(0, 0)]);
    let mut failures = 0u32;
    let mut failures_with_an_image = 0u32;
    for seed in 0..16u64 {
        let dir = unique_dir("commit-fault");
        let plan = FaultPlan::seeded(seed)
            .with_rate(96)
            .with_ops(&[FaultOp::CkptWrite, FaultOp::CkptSync, FaultOp::CkptRename])
            .with_kinds(&[FaultKind::Enospc, FaultKind::Torn]);
        let result = cell_checker(0, SpillCodec::Delta, false)
            .with_checkpoint(&dir, 1)
            .with_fault_plan(plan)
            .try_run(&grid(20), vec![(0, 0)]);
        match result {
            Ok(out) => {
                assert_eq!(out.findings, baseline.findings, "seed {seed}");
                assert_eq!(
                    identical_part(&out.stats),
                    identical_part(&baseline.stats),
                    "seed {seed}"
                );
            }
            Err(err) => {
                failures += 1;
                assert!(
                    !dir.join("slx-checkpoint.bin.tmp").exists(),
                    "seed {seed}: staging file stranded after {err}"
                );
                if CheckpointStore::exists(&dir) {
                    failures_with_an_image += 1;
                    let resumed = cell_checker(0, SpillCodec::Delta, false)
                        .resume(&dir)
                        .run(&grid(20), vec![(0, 0)]);
                    assert_eq!(resumed.findings, baseline.findings, "seed {seed}");
                    assert_eq!(
                        identical_part(&resumed.stats),
                        identical_part(&baseline.stats),
                        "seed {seed}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
    }
    // Exact floors, not probabilistic hopes (the schedules are fixed):
    // the seeds must produce commit failures, and some of those failures
    // must happen *after* an image committed — the interesting case.
    assert!(failures > 0, "no seed made a commit fail");
    assert!(
        failures_with_an_image > 0,
        "no failure left a prior image to validate ({failures} failures)"
    );
}

/// Renders a caught panic payload for message assertions.
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default()
}

/// Runs `f` expecting a panic, returning its message.
fn expect_panic<T>(f: impl FnOnce() -> T) -> String {
    panic_message(
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
            .map(|_| ())
            .expect_err("must panic"),
    )
}

#[test]
fn mismatched_configurations_are_refused_not_resumed() {
    // Commit a checkpoint under one configuration, then try to resume it
    // under different ones: every mismatch must hard-error naming the
    // field — a silent resume under the wrong configuration would be a
    // silently wrong answer.
    let dir = unique_dir("mismatch");
    let committed = cell_checker(128, SpillCodec::Delta, true)
        .with_checkpoint(&dir, 2)
        .run(&grid(8), vec![(0, 0)]);
    assert!(committed.stats.checkpoints_written > 0);

    let message = expect_panic(|| {
        cell_checker(128, SpillCodec::Plain, true)
            .resume(&dir)
            .run(&grid(8), vec![(0, 0)])
    });
    assert!(
        message.contains("different configuration") && message.contains("spill codec"),
        "codec mismatch: {message}"
    );

    let message = expect_panic(|| {
        cell_checker(128, SpillCodec::Delta, false)
            .resume(&dir)
            .run(&grid(8), vec![(0, 0)])
    });
    assert!(
        message.contains("different configuration") && message.contains("symmetry"),
        "symmetry mismatch: {message}"
    );

    let message = expect_panic(|| {
        cell_checker(128, SpillCodec::Delta, true)
            .with_shards(16)
            .resume(&dir)
            .run(&grid(8), vec![(0, 0)])
    });
    assert!(
        message.contains("different configuration") && message.contains("shard count"),
        "shard mismatch: {message}"
    );

    // Different initial states = a different exploration entirely.
    let message = expect_panic(|| {
        cell_checker(128, SpillCodec::Delta, true)
            .resume(&dir)
            .run(&grid(8), vec![(1, 0)])
    });
    assert!(
        message.contains("different configuration") && message.contains("state space"),
        "space mismatch: {message}"
    );

    // The matching configuration still resumes (and, with the store
    // already at the final image, just finishes the tail).
    let resumed = cell_checker(128, SpillCodec::Delta, true)
        .resume(&dir)
        .run(&grid(8), vec![(0, 0)]);
    assert_eq!(resumed.findings, committed.findings);
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}

#[test]
fn resuming_without_a_checkpoint_or_on_dfs_fails_loudly() {
    let dir = unique_dir("absent");
    assert!(!CheckpointStore::exists(&dir));
    let message = expect_panic(|| {
        cell_checker(0, SpillCodec::Delta, false)
            .resume(&dir)
            .run(&grid(4), vec![(0, 0)])
    });
    assert!(
        message.contains("cannot read checkpoint"),
        "missing store: {message}"
    );
    let message = expect_panic(|| {
        Checker::sequential_dfs()
            .resume(&dir)
            .run(&grid(4), vec![(0, 0)])
    });
    assert!(
        message.contains("parallel BFS backend"),
        "DFS resume: {message}"
    );
    std::fs::remove_dir_all(&dir).expect("checkpoint dir cleanup");
}
