//! Property-based validation of the sharded visited set.
//!
//! Like `collision_props`, this is a self-contained property harness (the
//! external `proptest` crate is unavailable offline): a seeded SplitMix64
//! generator produces hundreds of random digest streams and state spaces,
//! and [`ShardedVisited`] is compared against a single-map reference.
//!
//! Properties checked (
//! well over 500 generated cases across the suite):
//!
//! 1. **Shard transparency**: on any digest stream, at any shard count and
//!    worker count, the sharded set reports exactly the fresh/duplicate
//!    bits, membership, and final size of a single `HashSet<u128>`.
//! 2. **Insert-order independence**: permuting a stream changes neither
//!    the final size nor the per-shard occupancy.
//! 3. **Single-shard routing**: every digest routes to exactly one shard
//!    — routing is a pure function of the digest, and occupancies sum to
//!    the distinct-digest count (a digest living in two shards would make
//!    the sum exceed the reference size).
//! 4. **Budget truncation under sharding**: a `Checker::with_budget` hit
//!    mid-exploration reports identical `ExploreStats` truncation
//!    accounting (configs, truncated, transitions, dedup hits) for every
//!    shard and thread count.

use std::collections::HashSet;

use slx_engine::{digest128_of, Checker, Digest, Expansion, ShardedVisited, StateSpace};

mod common;
use common::Rng;

/// A random digest stream with deliberate duplicates: digests are drawn
/// from a pool smaller than the stream, so re-inserts are common.
fn random_stream(rng: &mut Rng) -> Vec<u128> {
    let pool_size = 1 + rng.below(200) as usize;
    let pool: Vec<u128> = (0..pool_size).map(|_| rng.digest()).collect();
    let len = rng.below(400) as usize;
    (0..len)
        .map(|_| pool[rng.below(pool_size as u64) as usize])
        .collect()
}

#[test]
fn sharded_set_is_transparent_over_random_streams() {
    let mut rng = Rng(0x5AAD);
    for case in 0..250 {
        let stream = random_stream(&mut rng);
        let shards = 1usize << rng.below(7); // 1..=64
        let mut reference: HashSet<u128> = HashSet::new();
        let expected_bits: Vec<bool> = stream.iter().map(|&d| reference.insert(d)).collect();

        let mut sharded = ShardedVisited::new(shards);
        let got_bits: Vec<bool> = stream.iter().map(|&d| sharded.insert(d)).collect();
        assert_eq!(got_bits, expected_bits, "case {case} ({shards} shards)");
        assert_eq!(sharded.len(), reference.len(), "case {case}");
        for &d in &stream {
            assert!(sharded.contains(d), "case {case}: member lost");
        }
        for _ in 0..20 {
            let probe = rng.digest();
            assert_eq!(
                sharded.contains(probe),
                reference.contains(&probe),
                "case {case}: membership diverged on probe"
            );
        }
    }
}

#[test]
fn batched_parallel_inserts_are_transparent_too() {
    let mut rng = Rng(0xBA7C);
    for case in 0..150 {
        let stream = random_stream(&mut rng);
        let shards = 1usize << rng.below(6); // 1..=32
        let workers = 1 + rng.below(8) as usize;
        let mut reference: HashSet<u128> = HashSet::new();
        let expected_bits: Vec<bool> = stream.iter().map(|&d| reference.insert(d)).collect();

        let mut sharded = ShardedVisited::new(shards);
        let mut batches: Vec<Vec<u128>> = vec![Vec::new(); sharded.shard_count()];
        let mut route: Vec<(usize, usize)> = Vec::with_capacity(stream.len());
        for &d in &stream {
            let s = sharded.shard_of(d);
            route.push((s, batches[s].len()));
            batches[s].push(d);
        }
        let fresh = sharded.insert_batches(&batches, workers);
        let got_bits: Vec<bool> = route.iter().map(|&(s, k)| fresh[s][k]).collect();
        assert_eq!(
            got_bits, expected_bits,
            "case {case} ({shards} shards, {workers} workers)"
        );
        assert_eq!(sharded.len(), reference.len(), "case {case}");
    }
}

#[test]
fn counts_are_insert_order_independent() {
    let mut rng = Rng(0x0DDE);
    for case in 0..150 {
        let stream = random_stream(&mut rng);
        let shards = 1usize << rng.below(7);
        let mut in_order = ShardedVisited::new(shards);
        for &d in &stream {
            in_order.insert(d);
        }
        let mut permuted = stream.clone();
        rng.shuffle(&mut permuted);
        let mut shuffled = ShardedVisited::new(shards);
        for &d in &permuted {
            shuffled.insert(d);
        }
        assert_eq!(shuffled.len(), in_order.len(), "case {case}");
        assert_eq!(shuffled.occupancy(), in_order.occupancy(), "case {case}");
    }
}

#[test]
fn every_digest_routes_to_exactly_one_shard() {
    let mut rng = Rng(0x10CA);
    for case in 0..100 {
        let stream = random_stream(&mut rng);
        let shards = 1usize << rng.below(7);
        let mut sharded = ShardedVisited::new(shards);
        let mut reference: HashSet<u128> = HashSet::new();
        for &d in &stream {
            let route = sharded.shard_of(d);
            assert!(route < sharded.shard_count(), "case {case}: shard range");
            assert_eq!(route, sharded.shard_of(d), "case {case}: routing unstable");
            sharded.insert(d);
            reference.insert(d);
        }
        // Occupancies summing to the distinct count means no digest was
        // stored in two shards (and membership above means none in zero).
        assert_eq!(
            sharded.occupancy().iter().sum::<usize>(),
            reference.len(),
            "case {case}: a digest occupies two shards"
        );
    }
}

/// Grid walk with digests wide enough to spread over every shard; many
/// diamonds, so dedup accounting is exercised.
struct GridWalk {
    bound: u32,
}

impl StateSpace for GridWalk {
    type State = (u32, u32);
    type Finding = (u32, u32);

    fn digest(&self, state: &Self::State) -> Digest {
        digest128_of(state)
    }

    fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        if x == self.bound && y == self.bound {
            ctx.finding((x, y));
            return;
        }
        if x < self.bound {
            ctx.push((x + 1, y));
        }
        if y < self.bound {
            ctx.push((x, y + 1));
        }
    }
}

#[test]
fn budget_truncation_is_identical_across_shard_and_thread_counts() {
    // Budgets chosen to land mid-level on the diagonal frontier (level d
    // of the grid has d+1 states), so truncation cuts a level in half —
    // the accounting must not depend on how the visited set is sharded,
    // nor (since the disk-backed frontier) on whether the cut tail was
    // resident or already spilled: a `(u32, u32)` record is two encoded
    // varint bytes (digests are no longer stored), so the 32-byte memory
    // budget keeps only ~8 states resident and truncation almost always
    // cuts into spilled chunks.
    let space = GridWalk { bound: 40 };
    for budget in [1usize, 7, 55, 300, 1000] {
        let baseline = Checker::parallel_bfs(1)
            .with_shards(1)
            .with_budget(budget)
            .with_mem_budget(0)
            .run(&space, vec![(0, 0)]);
        assert!(baseline.stats.truncated, "budget {budget} must truncate");
        assert_eq!(baseline.stats.configs, budget, "budget {budget}");
        for threads in [1usize, 2, 4, 8] {
            for shards in [1usize, 4, 16] {
                for mem_budget in [0usize, 32] {
                    let out = Checker::parallel_bfs(threads)
                        .with_shards(shards)
                        .with_budget(budget)
                        .with_mem_budget(mem_budget)
                        .run(&space, vec![(0, 0)]);
                    let label = format!(
                        "budget {budget}, {threads} threads, {shards} shards, \
                         mem budget {mem_budget}"
                    );
                    assert_eq!(out.stats.configs, baseline.stats.configs, "{label}");
                    assert_eq!(out.stats.truncated, baseline.stats.truncated, "{label}");
                    assert_eq!(out.stats.transitions, baseline.stats.transitions, "{label}");
                    assert_eq!(out.stats.dedup_hits, baseline.stats.dedup_hits, "{label}");
                    assert_eq!(
                        out.stats.peak_frontier, baseline.stats.peak_frontier,
                        "{label}"
                    );
                    assert_eq!(out.findings, baseline.findings, "{label}");
                    assert_eq!(out.stats.shards, shards, "{label}");
                    assert_eq!(
                        out.stats.shard_occupancy.iter().sum::<usize>(),
                        baseline.stats.shard_occupancy.iter().sum::<usize>(),
                        "{label}: sharding must not change the visited count"
                    );
                    if mem_budget == 0 {
                        assert_eq!(out.stats.spilled_chunks, 0, "{label}");
                    } else if budget > 16 {
                        // Wide-enough explorations must actually have hit
                        // disk, or this arm tests nothing.
                        assert!(out.stats.spilled_chunks >= 2, "{label}: no spilling");
                    }
                }
            }
        }
    }
}

/// A wide binary tree: level `d` holds `2^d` states, so deep bounds push
/// thousands of successors per level — enough to cross the kernel's
/// parallel-dedup threshold and exercise the sharded merge path for real.
struct WideTree {
    bound: usize,
}

impl StateSpace for WideTree {
    type State = u64;
    type Finding = u64;

    fn digest(&self, s: &u64) -> Digest {
        digest128_of(s)
    }

    fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
        if s % 4097 == 0 {
            ctx.finding(s);
        }
        if depth >= self.bound {
            return;
        }
        ctx.push(s * 2 + 1);
        ctx.push(s * 2 + 2);
        // A cross edge per state, creating dedup hits across the level.
        ctx.push(s | 1);
    }
}

/// A wide binary tree whose every depth-12 state reports a finding: the
/// stop predicate fires mid-merge of a level wide enough to cross the
/// parallel-dedup threshold, which is exactly where the batched path has
/// pre-inserted successors the merge never reaches.
struct StopTree;

impl StateSpace for StopTree {
    type State = u64;
    type Finding = u64;

    fn digest(&self, s: &u64) -> Digest {
        digest128_of(s)
    }

    fn expand(&self, &s: &u64, depth: usize, ctx: &mut Expansion<Self>) {
        if depth == 12 {
            ctx.finding(s);
        }
        if depth >= 13 {
            return;
        }
        ctx.push(s * 2 + 1);
        ctx.push(s * 2 + 2);
        ctx.push(s | 1);
    }
}

#[test]
fn early_stop_stats_are_thread_and_shard_independent() {
    // Regression: the batched dedup path pre-inserts a whole level before
    // the merge loop; an early stop mid-level must still report the same
    // occupancy (and everything else) as the lazy inline path.
    let base = Checker::parallel_bfs(1)
        .with_shards(1)
        .run_until(&StopTree, vec![0], |f| f.len() >= 5);
    assert!(base.stats.stopped_early, "stop must fire");
    // The stop fires while merging the 4096-wide depth-12 level, whose
    // ~3x successors are what cross the kernel's 4096-successor
    // parallel-dedup threshold for the multi-threaded runs below.
    assert!(
        base.stats.peak_frontier >= 2048,
        "stop must fire on a level wide enough for the batched path, \
         got peak frontier {}",
        base.stats.peak_frontier
    );
    for threads in [2usize, 4, 8] {
        for shards in [4usize, 16] {
            let out = Checker::parallel_bfs(threads)
                .with_shards(shards)
                .run_until(&StopTree, vec![0], |f| f.len() >= 5);
            let label = format!("{threads} threads, {shards} shards");
            assert!(out.stats.stopped_early, "{label}");
            assert_eq!(out.findings, base.findings, "{label}");
            assert_eq!(out.stats.configs, base.stats.configs, "{label}");
            assert_eq!(out.stats.transitions, base.stats.transitions, "{label}");
            assert_eq!(out.stats.dedup_hits, base.stats.dedup_hits, "{label}");
            assert_eq!(
                out.stats.shard_occupancy.iter().sum::<usize>(),
                base.stats.shard_occupancy.iter().sum::<usize>(),
                "{label}: early-stop occupancy must not depend on the dedup path"
            );
        }
    }
}

#[test]
fn parallel_sharded_dedup_matches_inline_path_on_wide_levels() {
    // Depth 13 → final levels are thousands wide, so with >1 thread the
    // run crosses PAR_MIN_DEDUP and dedups via parallel shard batches,
    // while the 1-thread run takes the inline path. Everything observable
    // must agree.
    let space = WideTree { bound: 13 };
    let inline = Checker::parallel_bfs(1).with_shards(1).run(&space, vec![0]);
    assert!(
        inline.stats.peak_frontier > 4096,
        "space too small to cross the parallel-dedup threshold"
    );
    for threads in [2usize, 4, 8] {
        for shards in [4usize, 16, 64] {
            let out = Checker::parallel_bfs(threads)
                .with_shards(shards)
                .run(&space, vec![0]);
            let label = format!("{threads} threads, {shards} shards");
            assert_eq!(out.stats.configs, inline.stats.configs, "{label}");
            assert_eq!(out.stats.transitions, inline.stats.transitions, "{label}");
            assert_eq!(out.stats.dedup_hits, inline.stats.dedup_hits, "{label}");
            assert_eq!(out.findings, inline.findings, "{label}");
            assert_eq!(
                out.stats.shard_occupancy.iter().sum::<usize>(),
                inline.stats.configs,
                "{label}: occupancy must sum to the visited count"
            );
        }
    }
}
