//! The central registry of every `SLX_*` environment knob.
//!
//! Before this module, knob parsing was string-matched across a dozen
//! files: the checker read `SLX_ENGINE_*` inline, the server and
//! checkpoint probe binaries parsed their stall knobs by hand, and the
//! authoritative list of "which variables exist, what do they accept,
//! what do they default to" lived nowhere. Now every knob is one
//! [`Knob`] entry in [`REGISTRY`], every read goes through the typed
//! accessors below, and `slx-analyze` mechanically checks three-way
//! agreement: any `"SLX_*"` string literal outside this module must name
//! a registered knob, every registered knob must be referenced by the
//! code, and the EXPERIMENTS.md knob table must list exactly the
//! registry.
//!
//! The failure contract is unchanged from PR 7: a malformed value is a
//! **hard error naming the variable and the offender**, never a silent
//! fall-back to a default. These variables exist to pin CI comparison
//! arms and operational budgets; a typo that silently meant "default"
//! would green-light a run that tested the wrong configuration. The
//! `spill_codec_knob` suite drives every accessor through its accept and
//! reject paths in a dedicated process.

use std::path::PathBuf;

/// The value shape a knob accepts. Drives both parsing (each kind has
/// exactly one accessor) and the documentation table `slx-analyze`
/// cross-checks against EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// A positive decimal integer; `0` is rejected as a near-certain typo.
    PositiveInt,
    /// A non-negative decimal integer; `0` is a meaningful value (e.g.
    /// "spilling off").
    NonNegativeInt,
    /// A boolean: `1`/`true` or `0`/`false`.
    Flag,
    /// One of a closed set of strings.
    Choice(&'static [&'static str]),
    /// A filesystem path, taken verbatim.
    Path,
    /// Free-form text with its own downstream parser (e.g. the fault
    /// plan grammar); the accessor hands the raw string through and the
    /// consumer owns validation — still a hard error naming the
    /// variable, never a silent default.
    Text,
}

/// One environment knob: its name, value shape, default, and one-line
/// effect. The registry below is the single source of truth the analyzer
/// checks code and docs against.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// The environment variable, verbatim.
    pub name: &'static str,
    /// What values it accepts.
    pub kind: KnobKind,
    /// Human-readable default used when the variable is unset or empty.
    pub default: &'static str,
    /// One-line effect, rendered into the docs table.
    pub doc: &'static str,
}

/// Worker thread count for [`crate::Checker::auto`].
pub static SLX_ENGINE_THREADS: Knob = Knob {
    name: "SLX_ENGINE_THREADS",
    kind: KnobKind::PositiveInt,
    default: "available parallelism",
    doc: "Worker threads for Checker::auto",
};

/// Visited-set shard count (see [`crate::Checker::with_shards`]).
pub static SLX_ENGINE_SHARDS: Knob = Knob {
    name: "SLX_ENGINE_SHARDS",
    kind: KnobKind::PositiveInt,
    default: "4 per thread, capped at 256",
    doc: "BFS visited-set shards (rounded up to a power of two)",
};

/// Frontier memory budget in bytes (see
/// [`crate::Checker::with_mem_budget`]); `0` pins spilling off.
pub static SLX_ENGINE_MEM_BUDGET: Knob = Knob {
    name: "SLX_ENGINE_MEM_BUDGET",
    kind: KnobKind::NonNegativeInt,
    default: "0 (spilling off)",
    doc: "Frontier memory budget in bytes; 0 disables spilling",
};

/// Directory spill files are created in (see
/// [`crate::Checker::with_spill_dir`]).
pub static SLX_ENGINE_SPILL_DIR: Knob = Knob {
    name: "SLX_ENGINE_SPILL_DIR",
    kind: KnobKind::Path,
    default: "system temp directory",
    doc: "Directory for spill chunk files (created if absent)",
};

/// Spill-chunk record encoding (see [`crate::Checker::with_spill_codec`]).
pub static SLX_ENGINE_SPILL_CODEC: Knob = Knob {
    name: "SLX_ENGINE_SPILL_CODEC",
    kind: KnobKind::Choice(&["delta", "plain", "replay"]),
    default: "delta",
    doc: "Spill-chunk record encoding",
};

/// Symmetry-reduction request (see [`crate::Checker::with_symmetry`]).
pub static SLX_ENGINE_SYMMETRY: Knob = Knob {
    name: "SLX_ENGINE_SYMMETRY",
    kind: KnobKind::Flag,
    default: "0 (off)",
    doc: "Dedup on canonical orbit digests when the space supports it",
};

/// Checkpoint-store directory (see [`crate::Checker::with_checkpoint`]);
/// unset means checkpointing off.
pub static SLX_ENGINE_CHECKPOINT_DIR: Knob = Knob {
    name: "SLX_ENGINE_CHECKPOINT_DIR",
    kind: KnobKind::Path,
    default: "unset (checkpointing off)",
    doc: "Directory for crash-tolerant checkpoint images",
};

/// Checkpoint cadence in BFS levels.
pub static SLX_ENGINE_CHECKPOINT_EVERY: Knob = Knob {
    name: "SLX_ENGINE_CHECKPOINT_EVERY",
    kind: KnobKind::PositiveInt,
    default: "1 (every level)",
    doc: "Checkpoint commit cadence in BFS levels",
};

/// Parks a served check once it passes this many BFS levels — the
/// check service's deterministic `kill -9` window for the CI crash probe.
pub static SLX_SERVER_STALL_AFTER: Knob = Knob {
    name: "SLX_SERVER_STALL_AFTER",
    kind: KnobKind::PositiveInt,
    default: "unset (never stall)",
    doc: "slx_server crash probe: park runs after this many levels",
};

/// Parks the `checkpoint_run` probe binary after this many BFS levels —
/// the engine-level `kill -9` window.
pub static SLX_CKPT_RUN_STALL_AFTER: Knob = Knob {
    name: "SLX_CKPT_RUN_STALL_AFTER",
    kind: KnobKind::PositiveInt,
    default: "unset (never stall)",
    doc: "checkpoint_run crash probe: park after this many levels",
};

/// Seeded fault-injection plan (see [`crate::FaultPlan`]); unset means
/// the fault plane is disarmed and every seam is a no-op.
pub static SLX_ENGINE_FAULT_PLAN: Knob = Knob {
    name: "SLX_ENGINE_FAULT_PLAN",
    kind: KnobKind::Text,
    default: "unset (fault injection off)",
    doc: "Seeded fault-injection plan: seed=N[,rate=R][,ops=a+b][,kinds=x+y]",
};

/// Every knob the workspace reads, in documentation order. `slx-analyze`
/// checks this list against both the code (no unregistered `SLX_*`
/// literal, no unreferenced entry) and the EXPERIMENTS.md knob table.
pub static REGISTRY: &[&Knob] = &[
    &SLX_ENGINE_THREADS,
    &SLX_ENGINE_SHARDS,
    &SLX_ENGINE_MEM_BUDGET,
    &SLX_ENGINE_SPILL_DIR,
    &SLX_ENGINE_SPILL_CODEC,
    &SLX_ENGINE_SYMMETRY,
    &SLX_ENGINE_CHECKPOINT_DIR,
    &SLX_ENGINE_CHECKPOINT_EVERY,
    &SLX_ENGINE_FAULT_PLAN,
    &SLX_SERVER_STALL_AFTER,
    &SLX_CKPT_RUN_STALL_AFTER,
];

impl Knob {
    /// The raw value, or `None` when the variable is unset or empty
    /// (empty always means "use the default", for every kind).
    ///
    /// # Panics
    ///
    /// Panics on non-UTF-8 bytes: no knob accepts them, and the usual
    /// contract (name the variable and the offender) applies.
    fn raw(&self) -> Option<String> {
        let value = std::env::var_os(self.name)?;
        let Some(text) = value.to_str() else {
            panic!("{} must be valid UTF-8, got {:?}", self.name, value)
        };
        if text.is_empty() {
            return None;
        }
        Some(text.to_string())
    }

    /// Parses an integer knob ([`KnobKind::PositiveInt`] or
    /// [`KnobKind::NonNegativeInt`]). `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics — naming the variable and the offending value — on
    /// anything that does not parse, and on `0` for a positive knob.
    #[must_use]
    pub fn usize_value(&self) -> Option<usize> {
        let allow_zero = match self.kind {
            KnobKind::PositiveInt => false,
            KnobKind::NonNegativeInt => true,
            other => panic!("{} is not an integer knob (kind {other:?})", self.name),
        };
        let text = self.raw()?;
        match text.parse::<usize>() {
            Ok(n) if n > 0 || allow_zero => Some(n),
            Ok(_) => panic!("{} must be a positive integer, got \"0\"", self.name),
            Err(_) => {
                let expected = if allow_zero {
                    "non-negative"
                } else {
                    "positive"
                };
                panic!(
                    "{} must be a {expected} decimal integer, got {text:?}",
                    self.name
                )
            }
        }
    }

    /// Parses a [`KnobKind::Flag`] knob. `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on anything but `1`/`true`/`0`/`false`.
    #[must_use]
    pub fn flag_value(&self) -> Option<bool> {
        assert!(
            matches!(self.kind, KnobKind::Flag),
            "{} is not a flag knob",
            self.name
        );
        match self.raw()?.as_str() {
            "1" | "true" => Some(true),
            "0" | "false" => Some(false),
            other => panic!(
                "{} must be \"1\"/\"true\" or \"0\"/\"false\", got {other:?}",
                self.name
            ),
        }
    }

    /// Parses a [`KnobKind::Choice`] knob, returning the matched choice.
    /// `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics — naming every accepted value and the offender — on a
    /// value outside the choice set: the knob exists to pin comparison
    /// arms, and a typo silently meaning "default" would re-test the
    /// wrong one.
    #[must_use]
    pub fn choice_value(&self) -> Option<&'static str> {
        let KnobKind::Choice(choices) = self.kind else {
            panic!("{} is not a choice knob", self.name)
        };
        let text = self.raw()?;
        match choices.iter().find(|&&c| c == text) {
            Some(&choice) => Some(choice),
            None => {
                let mut rendered = String::new();
                for (i, choice) in choices.iter().enumerate() {
                    if i > 0 {
                        rendered.push_str(if i + 1 == choices.len() {
                            ", or "
                        } else {
                            ", "
                        });
                    }
                    rendered.push('"');
                    rendered.push_str(choice);
                    rendered.push('"');
                }
                panic!("{} must be {rendered}, got {text:?}", self.name)
            }
        }
    }

    /// Reads a [`KnobKind::Path`] knob verbatim. `None` when unset or
    /// empty.
    #[must_use]
    pub fn path_value(&self) -> Option<PathBuf> {
        assert!(
            matches!(self.kind, KnobKind::Path),
            "{} is not a path knob",
            self.name
        );
        // Paths tolerate non-UTF-8 on principle (the filesystem does),
        // so read the OS string directly instead of through `raw`.
        std::env::var_os(self.name)
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    }

    /// Reads a [`KnobKind::Text`] knob verbatim. `None` when unset or
    /// empty. The consumer owns parsing (and the hard-error contract).
    #[must_use]
    pub fn text_value(&self) -> Option<String> {
        assert!(
            matches!(self.kind, KnobKind::Text),
            "{} is not a text knob",
            self.name
        );
        self.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_sorted_per_prefix_and_slx_prefixed() {
        let names: Vec<&str> = REGISTRY.iter().map(|k| k.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate knob registered");
        assert!(names.iter().all(|n| n.starts_with("SLX_")));
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_SPILL_DIR.usize_value()).is_err());
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_THREADS.flag_value()).is_err());
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_THREADS.choice_value()).is_err());
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_THREADS.path_value()).is_err());
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_THREADS.text_value()).is_err());
        assert!(std::panic::catch_unwind(|| SLX_ENGINE_FAULT_PLAN.usize_value()).is_err());
    }

    // The accept/reject parsing contract itself (hard errors naming the
    // variable and the offender, empty-means-default, builder overrides)
    // is driven end to end by the process-isolated `spill_codec_knob`
    // suite: accessors read the live environment, which must not be
    // mutated from inside this concurrently-running test binary.
}
