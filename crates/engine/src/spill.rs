//! The disk-backed BFS frontier.
//!
//! Since the visited set became fingerprint-only (PR 1) and sharded
//! (PR 2), the frontier `Vec` is the only kernel structure that retains
//! full configurations between levels — the structure that caps how far
//! past RAM an exploration can go. [`SpillFrontier`] removes that cap:
//! under a memory budget it keeps only a bounded decoded window resident,
//! serializing cold chunks to a temp file and streaming them back chunk
//! by chunk during level expansion, so the peak number of decoded states
//! resident at once is bounded regardless of level size.
//!
//! Chunk records are **delta-encoded** ([`crate::DeltaCodec`], the
//! default; [`SpillCodec::Plain`] keeps the PR 3 self-contained records
//! for comparison): consecutive records of a level are siblings sharing
//! layouts, memory words, and history prefixes, so each record encodes
//! against its chunk predecessor and unchanged fields collapse to a few
//! skip/copy varints. The first record of every chunk stays
//! self-contained, so chunks decode independently and replay order stays
//! deterministic; on decode, a per-replay [`crate::DeltaCtx`] intern
//! table restores the `Arc` sharing between records that a per-field
//! materialization would lose.
//!
//! The chunk window is **byte-measured**: every pushed pair is encoded
//! into the window buffer immediately, and the window flushes as soon as
//! its actual encoded size reaches the chunk byte budget — so the
//! resident-window bound holds even when encoded state size grows across
//! a level (accumulating histories), where the old first-record
//! state-count probe overshot.
//!
//! Determinism is preserved by construction: chunk boundaries depend only
//! on the (deterministic) encoded byte sizes of the pushed states, chunks
//! are replayed in push order, and the no-spill mode stores the plain
//! `Vec` with zero overhead — so merge order, verdicts, and every
//! `ExploreStats` count are identical with spilling on or off. The
//! differential suites pin exactly that equivalence.
//!
//! Spill files are self-cleaning: each frontier owns at most one temp
//! file, deleted when the frontier (or its chunk iterator) is dropped —
//! including on early stop and on panic unwind.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{DeltaCodec, DeltaCtx, StateCodec};
use crate::Digest;

/// How spill-chunk records are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCodec {
    /// Each record delta-encoded against its chunk predecessor
    /// ([`crate::DeltaCodec`]); the first record of a chunk is
    /// self-contained. The default: siblings share most of their
    /// structure, so deltas cut both spill volume and decode cost.
    #[default]
    Delta,
    /// Every record self-contained (the PR 3 baseline). Kept as the
    /// comparison arm for `engine_bench` and the differential suites.
    Plain,
}

/// Resolved spill settings for one exploration run.
#[derive(Debug, Clone)]
pub(crate) struct SpillConfig {
    /// Byte size a chunk aims for (the decoded window's encoded bytes are
    /// measured against it). Each of the two frontiers alive at a time
    /// (the level being consumed and the level being built) keeps its
    /// window at this size plus at most one record.
    pub(crate) chunk_bytes: usize,
    /// Record encoding for spilled chunks.
    pub(crate) codec: SpillCodec,
    /// The run's shared file pool.
    pub(crate) pool: Rc<RefCell<SpillPool>>,
}

impl SpillConfig {
    pub(crate) fn new(chunk_bytes: usize, codec: SpillCodec, dir: PathBuf) -> SpillConfig {
        SpillConfig {
            chunk_bytes,
            codec,
            pool: Rc::new(RefCell::new(SpillPool {
                dir,
                free: Vec::new(),
            })),
        }
    }
}

/// The spill files of one exploration run.
///
/// At most two frontiers are alive at a time, so the pool holds at most
/// two files, leased to spilling frontiers and recycled (truncated to
/// zero) when a frontier's replay is dropped. Reuse matters: creating and
/// unlinking a temp file per BFS level costs directory operations that
/// measurably drag the spill arm on a real filesystem. The files are
/// unlinked when the pool itself drops — end of run or panic unwind.
#[derive(Debug)]
pub(crate) struct SpillPool {
    dir: PathBuf,
    free: Vec<SpillFile>,
}

impl SpillPool {
    fn lease(&mut self) -> SpillFile {
        self.free
            .pop()
            .unwrap_or_else(|| SpillFile::create(&self.dir))
    }

    fn recycle(&mut self, file: SpillFile) {
        // Drop the bytes but keep the inode for the next frontier.
        if file.file.set_len(0).is_ok() {
            self.free.push(file);
        }
    }
}

/// Descriptor of one chunk written to the spill file.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    offset: u64,
    len: usize,
    count: usize,
}

/// An open spill file that removes itself from disk on drop (normal
/// completion, early stop, and panic unwind alike).
#[derive(Debug)]
struct SpillFile {
    file: File,
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Process-wide sequence number making spill file names unique.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillFile {
    fn create(dir: &std::path::Path) -> SpillFile {
        loop {
            let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("slx-spill-{}-{seq}.bin", std::process::id()));
            match OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => return SpillFile { file, path },
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(err) => panic!("cannot create spill file {}: {err}", path.display()),
            }
        }
    }
}

/// One BFS level's frontier of `(state, digest)` pairs, optionally backed
/// by disk.
///
/// Without a [`SpillConfig`] this is a plain `Vec` (the kernel's historic
/// behaviour, zero overhead). With one, pushed pairs accumulate in a
/// decoded tail window whose encoded byte size is tracked exactly (each
/// push appends the record — delta-encoded against its window predecessor
/// under [`SpillCodec::Delta`] — to the window buffer); the moment the
/// buffer reaches the chunk byte budget, it is appended to a
/// self-cleaning temp file and the window restarts. Only states that
/// overflow into a flushed chunk ever round-trip through a decode — the
/// final window of every frontier replays its decoded states directly —
/// and [`SpillFrontier::into_chunks`] replays the pairs in push order,
/// one chunk resident at a time.
#[derive(Debug)]
pub(crate) struct SpillFrontier<S> {
    /// The decoded pairs: everything (no-spill mode) or the tail window
    /// not yet spilled (spill mode).
    resident: Vec<(S, Digest)>,
    spill: Option<SpillState>,
    /// Pairs pushed.
    total: usize,
    /// Truncation point from [`SpillFrontier::truncate`].
    limit: Option<usize>,
}

#[derive(Debug)]
struct SpillState {
    config: SpillConfig,
    /// Encoded records of the current window (`resident`), appended push
    /// by push; its length is the window's exact byte measure.
    buf: Vec<u8>,
    /// Largest window byte measure observed (the resident-byte bound the
    /// memory budget is supposed to enforce).
    peak_window_bytes: usize,
    /// Chunks already written to `file`, in push order.
    chunks: Vec<ChunkMeta>,
    /// Leased from the pool on the first spill, so small levels never
    /// touch disk even in spill mode; recycled on drop.
    file: Option<SpillFile>,
    /// Byte length of this frontier's file contents so far (the next
    /// write offset).
    spilled_bytes: u64,
}

impl Drop for SpillState {
    fn drop(&mut self) {
        if let Some(file) = self.file.take() {
            self.config.pool.borrow_mut().recycle(file);
        }
    }
}

impl<S: DeltaCodec> SpillFrontier<S> {
    /// A frontier; `config: None` keeps every pair decoded and resident.
    pub(crate) fn new(config: Option<SpillConfig>) -> Self {
        SpillFrontier {
            resident: Vec::new(),
            spill: config.map(|config| SpillState {
                config,
                buf: Vec::new(),
                peak_window_bytes: 0,
                chunks: Vec::new(),
                file: None,
                spilled_bytes: 0,
            }),
            total: 0,
            limit: None,
        }
    }

    /// Appends one pair. Push order is replay order.
    pub(crate) fn push(&mut self, state: S, digest: Digest) {
        debug_assert!(self.limit.is_none(), "push after truncate is undefined");
        self.total += 1;
        self.resident.push((state, digest));
        let Some(spill) = &mut self.spill else {
            return;
        };
        let (prev, record) = match self.resident.as_slice() {
            [.., prev, record] => (Some(&prev.0), record),
            [record] => (None, record),
            [] => unreachable!("just pushed"),
        };
        spill.append_record(prev, record);
        if spill.buf.len() >= spill.config.chunk_bytes {
            spill.flush_chunk(self.resident.len());
            self.resident.clear();
        }
    }

    /// Pairs the frontier will replay (pushes, capped by any truncation).
    pub(crate) fn len(&self) -> usize {
        self.limit.map_or(self.total, |limit| limit.min(self.total))
    }

    /// Whether no pair will be replayed.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Caps replay at the first `len` pairs — the same prefix whether the
    /// tail is resident or already spilled (the budget-truncation
    /// regression suite pins this).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.limit = Some(self.limit.map_or(len, |limit| limit.min(len)));
    }

    /// Chunks written to disk by this frontier.
    pub(crate) fn spilled_chunks(&self) -> usize {
        self.spill.as_ref().map_or(0, |spill| spill.chunks.len())
    }

    /// Bytes written to disk by this frontier.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |spill| spill.spilled_bytes)
    }

    /// Largest encoded byte size the decoded window reached (0 without a
    /// spill config: unbudgeted frontiers never encode, so there is
    /// nothing to measure).
    pub(crate) fn peak_window_bytes(&self) -> usize {
        self.spill
            .as_ref()
            .map_or(0, |spill| spill.peak_window_bytes)
    }

    /// Consumes the frontier into its chunk replay. Chunks come back in
    /// push order; the spill file (if any) is deleted when the replay is
    /// dropped.
    pub(crate) fn into_chunks(self) -> FrontierChunks<S> {
        let remaining = self.len();
        FrontierChunks {
            resident: Some(self.resident),
            spill: self.spill,
            ctx: DeltaCtx::new(),
            next_chunk: 0,
            remaining,
        }
    }
}

impl SpillState {
    /// Encodes one just-pushed pair onto the window buffer, delta-chained
    /// to its window predecessor (`None` for the first record of the
    /// window, which therefore stays self-contained — the chunk boundary
    /// invariant the replay relies on).
    fn append_record<S: DeltaCodec>(&mut self, prev: Option<&S>, (state, digest): &(S, Digest)) {
        digest.0.encode(&mut self.buf);
        match self.config.codec {
            SpillCodec::Delta => state.encode_delta(prev, &mut self.buf),
            SpillCodec::Plain => state.encode(&mut self.buf),
        }
        self.peak_window_bytes = self.peak_window_bytes.max(self.buf.len());
    }

    /// Appends the window buffer (holding `count` records) to the spill
    /// file as one chunk.
    fn flush_chunk(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        let file = self
            .file
            .get_or_insert_with(|| self.config.pool.borrow_mut().lease());
        // Seek explicitly: a recycled file's cursor is wherever the
        // previous frontier's replay left it.
        file.file
            .seek(SeekFrom::Start(self.spilled_bytes))
            .and_then(|_| file.file.write_all(&self.buf))
            .unwrap_or_else(|err| panic!("spill write to {} failed: {err}", file.path.display()));
        self.chunks.push(ChunkMeta {
            offset: self.spilled_bytes,
            len: self.buf.len(),
            count,
        });
        self.spilled_bytes += self.buf.len() as u64;
        self.buf.clear();
    }
}

/// Consuming chunk replay of a [`SpillFrontier`]; owns (and on drop
/// deletes) the spill file.
#[derive(Debug)]
pub(crate) struct FrontierChunks<S> {
    /// The final decoded window (spill mode) or the whole frontier
    /// (no-spill mode), yielded after the file chunks.
    resident: Option<Vec<(S, Digest)>>,
    spill: Option<SpillState>,
    /// Per-replay intern table: self-contained chunk-first records
    /// rebuild their shared sub-structures through it, so records in
    /// different chunks of one replay share allocations again.
    ctx: DeltaCtx,
    next_chunk: usize,
    /// Pairs still to yield (pre-capped by any truncation).
    remaining: usize,
}

impl<S: DeltaCodec> FrontierChunks<S> {
    /// The next chunk of pairs, in push order, or `None` when the replay
    /// (or its truncation point) is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the spill file cannot be read back or a record fails to
    /// decode — a damaged spill file cannot be explored soundly, so the
    /// run fails loudly rather than silently dropping states.
    pub(crate) fn next_chunk(&mut self) -> Option<Vec<(S, Digest)>> {
        if self.remaining == 0 {
            return None;
        }
        if let Some(spill) = &mut self.spill {
            if let Some(meta) = spill.chunks.get(self.next_chunk).copied() {
                self.next_chunk += 1;
                let file = spill.file.as_mut().expect("spilled chunks imply a file");
                let mut bytes = vec![0u8; meta.len];
                file.file
                    .seek(SeekFrom::Start(meta.offset))
                    .and_then(|_| file.file.read_exact(&mut bytes))
                    .unwrap_or_else(|err| {
                        panic!("spill read from {} failed: {err}", file.path.display())
                    });
                let yield_count = meta.count.min(self.remaining);
                self.remaining -= yield_count;
                let mut input = bytes.as_slice();
                let mut pairs: Vec<(S, Digest)> = Vec::with_capacity(yield_count);
                for _ in 0..yield_count {
                    let digest = u128::decode(&mut input).expect("corrupt spill record: digest");
                    let state = match spill.config.codec {
                        SpillCodec::Delta => {
                            let prev = pairs.last().map(|(state, _)| state);
                            S::decode_delta(prev, &mut input, &mut self.ctx)
                                .expect("corrupt spill record: state")
                        }
                        SpillCodec::Plain => {
                            S::decode(&mut input).expect("corrupt spill record: state")
                        }
                    };
                    pairs.push((state, Digest(digest)));
                }
                return Some(pairs);
            }
        }
        // The decoded tail: never touched a decode.
        let mut window = self.resident.take()?;
        window.truncate(self.remaining);
        self.remaining = 0;
        if window.is_empty() {
            None
        } else {
            Some(window)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slx-spill-unit-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("test spill dir");
        dir
    }

    fn test_config(chunk_bytes: usize) -> SpillConfig {
        SpillConfig::new(chunk_bytes, SpillCodec::Delta, test_dir())
    }

    fn drain<S: DeltaCodec>(mut chunks: FrontierChunks<S>) -> (Vec<(S, Digest)>, Vec<usize>) {
        let mut all = Vec::new();
        let mut sizes = Vec::new();
        while let Some(chunk) = chunks.next_chunk() {
            sizes.push(chunk.len());
            all.extend(chunk);
        }
        (all, sizes)
    }

    fn pairs(n: u64) -> Vec<(u64, Digest)> {
        (0..n)
            .map(|i| (i, Digest(u128::from(i) << 64 | 7)))
            .collect()
    }

    #[test]
    fn resident_mode_replays_in_one_chunk() {
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(None);
        for (s, d) in pairs(10) {
            frontier.push(s, d);
        }
        assert_eq!(frontier.len(), 10);
        assert_eq!(frontier.spilled_chunks(), 0);
        assert_eq!(frontier.peak_window_bytes(), 0, "nothing encoded");
        let (all, sizes) = drain(frontier.into_chunks());
        assert_eq!(all, pairs(10));
        assert_eq!(sizes, vec![10]);
    }

    #[test]
    fn spill_mode_round_trips_in_push_order() {
        // Each record is 16 (digest) + 1 (small u64 varint) = 17 bytes;
        // a 50-byte chunk threshold spills every third push.
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(50)));
        for (s, d) in pairs(100) {
            frontier.push(s, d);
        }
        assert!(frontier.spilled_chunks() >= 30, "must have spilled");
        assert!(frontier.spilled_bytes() >= 17 * 90);
        let (all, sizes) = drain(frontier.into_chunks());
        assert_eq!(all, pairs(100));
        assert!(
            sizes.iter().all(|&s| s <= 3),
            "chunks stay bounded: {sizes:?}"
        );
    }

    #[test]
    fn plain_and_delta_codecs_replay_identically() {
        for chunk_bytes in [40usize, 64, 200] {
            let mut delta: SpillFrontier<Vec<u64>> = SpillFrontier::new(Some(SpillConfig::new(
                chunk_bytes,
                SpillCodec::Delta,
                test_dir(),
            )));
            let mut plain: SpillFrontier<Vec<u64>> = SpillFrontier::new(Some(SpillConfig::new(
                chunk_bytes,
                SpillCodec::Plain,
                test_dir(),
            )));
            // Sibling-shaped states: a long shared prefix plus a varying
            // tail, like the configurations of one BFS level.
            let states: Vec<(Vec<u64>, Digest)> = (0..64u64)
                .map(|i| {
                    let mut v: Vec<u64> = (0..12).collect();
                    v.push(i);
                    (v, Digest(u128::from(i) | 0xabc0))
                })
                .collect();
            for (s, d) in &states {
                delta.push(s.clone(), *d);
                plain.push(s.clone(), *d);
            }
            assert!(
                delta.spilled_chunks() >= 2,
                "chunk {chunk_bytes} must spill"
            );
            assert!(
                delta.spilled_bytes() < plain.spilled_bytes(),
                "chunk {chunk_bytes}: delta ({}) must beat plain ({}) on sibling-shaped states",
                delta.spilled_bytes(),
                plain.spilled_bytes()
            );
            let (from_delta, _) = drain(delta.into_chunks());
            let (from_plain, _) = drain(plain.into_chunks());
            assert_eq!(from_delta, states, "chunk {chunk_bytes}");
            assert_eq!(from_plain, states, "chunk {chunk_bytes}");
        }
    }

    #[test]
    fn growing_records_respect_the_byte_budget() {
        // Records grow from ~18 to ~120 encoded bytes across the level —
        // the accumulating-history shape. The old state-count window
        // (chunk_bytes / first_record_size states per chunk) would pack
        // 256/18 = 14 of the large records = ~1.7 KiB into one window;
        // the byte-measured window must stay within chunk_bytes plus one
        // record regardless of growth. Plain encoding so the sizes are
        // predictable.
        const CHUNK: usize = 256;
        let mut frontier: SpillFrontier<Vec<u64>> =
            SpillFrontier::new(Some(SpillConfig::new(CHUNK, SpillCodec::Plain, test_dir())));
        let states: Vec<(Vec<u64>, Digest)> = (0..100u64)
            .map(|i| ((0..i).collect(), Digest(u128::from(i))))
            .collect();
        let mut max_record = 0;
        for (s, d) in &states {
            let mut one = Vec::new();
            s.encode(&mut one);
            max_record = max_record.max(16 + one.len());
            frontier.push(s.clone(), *d);
        }
        assert!(frontier.spilled_chunks() >= 4, "must spill repeatedly");
        assert!(
            frontier.peak_window_bytes() <= CHUNK + max_record,
            "window peaked at {} bytes; budget {CHUNK} + one record {max_record}",
            frontier.peak_window_bytes()
        );
        let spill = frontier.spill.as_ref().expect("spill mode");
        for meta in &spill.chunks {
            assert!(
                meta.len <= CHUNK + max_record,
                "chunk of {} bytes exceeds budget {CHUNK} + record {max_record}",
                meta.len
            );
        }
        let (all, _) = drain(frontier.into_chunks());
        assert_eq!(all, states);
    }

    #[test]
    fn truncation_cuts_the_same_prefix_resident_or_spilled() {
        for cut in [0usize, 1, 5, 17, 99, 100, 1000] {
            let mut resident: SpillFrontier<u64> = SpillFrontier::new(None);
            let mut spilled: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(64)));
            for (s, d) in pairs(100) {
                resident.push(s, d);
                spilled.push(s, d);
            }
            resident.truncate(cut);
            spilled.truncate(cut);
            assert_eq!(resident.len(), cut.min(100), "cut {cut}");
            assert_eq!(spilled.len(), cut.min(100), "cut {cut}");
            let (from_resident, _) = drain(resident.into_chunks());
            let (from_spilled, _) = drain(spilled.into_chunks());
            assert_eq!(from_resident, from_spilled, "cut {cut}");
            assert_eq!(from_spilled.len(), cut.min(100), "cut {cut}");
        }
    }

    #[test]
    fn small_levels_never_touch_disk() {
        let dir = test_dir();
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(SpillConfig::new(
            1 << 20,
            SpillCodec::Delta,
            dir.clone(),
        )));
        for (s, d) in pairs(50) {
            frontier.push(s, d);
        }
        assert_eq!(frontier.spilled_chunks(), 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let (all, _) = drain(frontier.into_chunks());
        assert_eq!(all, pairs(50));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_file_dies_with_the_last_pool_holder() {
        let dir = test_dir();
        let config = SpillConfig::new(32, SpillCodec::Delta, dir.clone());
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
        for (s, d) in pairs(64) {
            frontier.push(s, d);
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1, "one spill file per frontier");
        // The run (`config`) still holds the pool: the frontier's file is
        // recycled, not deleted, so the next level reuses the inode.
        drop(frontier);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(config.pool.borrow().free.len(), 1, "file went to the pool");
        drop(config);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "dropping the last pool holder must delete the spill files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn consecutive_frontiers_reuse_the_pooled_file() {
        let dir = test_dir();
        let config = SpillConfig::new(32, SpillCodec::Delta, dir.clone());
        for round in 0..3 {
            let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
            for (s, d) in pairs(64) {
                frontier.push(s, d);
            }
            let (all, _) = drain(frontier.into_chunks());
            assert_eq!(all, pairs(64), "round {round}");
            assert_eq!(
                std::fs::read_dir(&dir).unwrap().count(),
                1,
                "round {round}: one recycled file serves every level"
            );
        }
        drop(config);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recycled_files_never_leak_stale_tails() {
        // A big frontier fills the pooled file with many chunks; the next
        // frontier over the same pool is smaller and must replay only its
        // own (fully rewritten) records — never a stale tail from before
        // the recycle's `set_len(0)`.
        let dir = test_dir();
        let config = SpillConfig::new(48, SpillCodec::Delta, dir.clone());
        let mut big: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
        for (s, d) in pairs(200) {
            big.push(s, d);
        }
        let (all_big, _) = drain(big.into_chunks());
        assert_eq!(all_big, pairs(200));
        for round in 0..3 {
            let mut small: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
            let expected: Vec<(u64, Digest)> = pairs(20)
                .into_iter()
                .map(|(s, d)| (s + 1000 * round, d))
                .collect();
            for (s, d) in &expected {
                small.push(*s, *d);
            }
            assert!(small.spilled_chunks() >= 2, "round {round} must spill");
            let (all_small, _) = drain(small.into_chunks());
            assert_eq!(all_small, expected, "round {round}: no stale records");
        }
        drop(config);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partially_consumed_replay_cleans_up_too() {
        let dir = test_dir();
        let mut frontier: SpillFrontier<u64> =
            SpillFrontier::new(Some(SpillConfig::new(32, SpillCodec::Delta, dir.clone())));
        for (s, d) in pairs(64) {
            frontier.push(s, d);
        }
        let mut chunks = frontier.into_chunks();
        let _ = chunks.next_chunk();
        drop(chunks);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
