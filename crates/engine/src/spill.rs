//! The disk-backed BFS frontier.
//!
//! Since the visited set became fingerprint-only (PR 1) and sharded
//! (PR 2), the frontier `Vec` is the only kernel structure that retains
//! full configurations between levels — the structure that caps how far
//! past RAM an exploration can go. [`SpillFrontier`] removes that cap:
//! under a memory budget it keeps only a bounded decoded window resident,
//! serializing cold chunks to a temp file and streaming them back chunk
//! by chunk during level expansion, so the peak number of decoded states
//! resident at once is bounded regardless of level size.
//!
//! Records hold **states only**: a frontier entry's digest is consumed by
//! the visited set before the entry is pushed and never read again, so
//! spilling it would cost 16 bytes per record of pure dead weight (it did,
//! until the replay refactor).
//!
//! Three record encodings ([`SpillCodec`]):
//!
//! - **Delta** (the default): each record delta-encodes against its chunk
//!   predecessor ([`crate::DeltaCodec`]) — consecutive records of a level
//!   are siblings sharing layouts, memory words, and history prefixes, so
//!   unchanged fields collapse to a few skip/copy varints.
//! - **Plain**: every record self-contained (the PR 3 baseline, kept as
//!   the comparison arm).
//! - **Replay**: records store *(parent state, child action indices)*
//!   instead of the children themselves, and the replay **regenerates**
//!   the children by re-expanding the parent (see
//!   [`crate::StateSpace::successor_at`]) — no per-child codec work at
//!   all. One group record covers a parent's whole contiguous run of
//!   spilled children; chunk-first parents stay self-contained while
//!   subsequent parents delta-encode against their chunk predecessor, so
//!   only parents ever touch the codec.
//!
//! The first record of every chunk is self-contained, so chunks decode
//! independently and replay order stays deterministic; on decode, a
//! per-replay [`crate::DeltaCtx`] intern table restores the `Arc` sharing
//! between records that a per-field materialization would lose.
//!
//! The chunk window is **lazily encoded, byte-exact at the boundary**:
//! pushes stay decoded until the window's estimated record bytes (state
//! count × the run's measured record size, kept current by periodic
//! sonde measurements) reach the chunk budget; records then materialize
//! one at a time into the window buffer, whose exact length triggers the
//! flush. Levels that fit the budget never touch the codec at all —
//! under the previous eager scheme the encode of never-flushed windows
//! was the single largest spill cost — while the flushed-chunk byte
//! bound still holds record-exactly, even when encoded state size grows
//! across a level (accumulating histories), where the original
//! first-record state-count probe overshot.
//!
//! Determinism is preserved by construction: the size estimate and the
//! chunk boundaries are pure functions of the (deterministic) push
//! history, chunks are replayed in push order, re-expansion is pure (a
//! [`StateSpace`] contract), and the no-spill mode stores the plain
//! `Vec` with zero overhead — so merge order, verdicts, and every
//! `ExploreStats` count are identical with spilling on or off and across
//! all three codecs. The differential suites pin exactly that
//! equivalence.
//!
//! Spill files are self-cleaning: each frontier owns at most one temp
//! file, deleted when the frontier (or its chunk iterator) is dropped —
//! including on early stop and on panic unwind.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{DeltaCodec, DeltaCtx, StateCodec};
use crate::fault::{self, EngineError, FaultOp, FaultPlane};

/// How spill-chunk records are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCodec {
    /// Each record delta-encoded against its chunk predecessor
    /// ([`crate::DeltaCodec`]); the first record of a chunk is
    /// self-contained. The default: siblings share most of their
    /// structure, so deltas cut both spill volume and decode cost.
    #[default]
    Delta,
    /// Every record self-contained (the PR 3 baseline). Kept as the
    /// comparison arm for `engine_bench` and the differential suites.
    Plain,
    /// Recompute-from-parent: a record stores a parent state plus the
    /// push-order indices of its spilled children, and the replay
    /// regenerates the children by re-expanding the parent
    /// ([`crate::StateSpace::successor_at`], falling back to one shared
    /// digest-free expansion per record). Only parents are ever encoded
    /// or decoded, which removes per-child codec work from the spill hot
    /// path entirely — the classic external-memory reconstruction trade.
    Replay,
}

/// Regenerates spilled successors for [`SpillCodec::Replay`] chunks: the
/// checker supplies one per BFS level, closing over the space and the
/// parents' expansion depth. `regenerate` must append the successors that
/// a full expansion of `parent` would have pushed at the (strictly
/// increasing) `indices`, in index order.
pub(crate) trait Regenerator<S> {
    fn regenerate(&self, parent: &S, indices: &[usize], out: &mut Vec<S>);
}

impl<S, F: Fn(&S, &[usize], &mut Vec<S>)> Regenerator<S> for F {
    fn regenerate(&self, parent: &S, indices: &[usize], out: &mut Vec<S>) {
        self(parent, indices, out);
    }
}

/// Resolved spill settings for one exploration run.
#[derive(Debug, Clone)]
pub(crate) struct SpillConfig {
    /// Byte size a chunk aims for (the decoded window's encoded bytes are
    /// measured against it). Each of the two frontiers alive at a time
    /// (the level being consumed and the level being built) keeps its
    /// window at this size plus at most one record (one group record for
    /// the replay codec, whose groups never split across chunks).
    pub(crate) chunk_bytes: usize,
    /// Record encoding for spilled chunks.
    pub(crate) codec: SpillCodec,
    /// The run's shared file pool.
    pub(crate) pool: Rc<RefCell<SpillPool>>,
    /// The run's fault-injection seam (disarmed by default — one inline
    /// `None` check per I/O call).
    pub(crate) plane: FaultPlane,
}

impl SpillConfig {
    pub(crate) fn new(chunk_bytes: usize, codec: SpillCodec, dir: PathBuf) -> SpillConfig {
        SpillConfig {
            chunk_bytes,
            codec,
            pool: Rc::new(RefCell::new(SpillPool {
                dir,
                free: Vec::new(),
                encoded_states: 0,
                encoded_bytes: 0,
                sonde_state_bytes: INITIAL_STATE_BYTES,
                plane: FaultPlane::disabled(),
            })),
            plane: FaultPlane::disabled(),
        }
    }

    /// Routes this run's spill I/O through a fault-injection plane.
    pub(crate) fn with_fault_plane(mut self, plane: FaultPlane) -> SpillConfig {
        self.pool.borrow_mut().plane = plane.clone();
        self.plane = plane;
        self
    }
}

/// The spill files of one exploration run, plus the run's record-size
/// feedback.
///
/// At most two frontiers are alive at a time, so the pool holds at most
/// two files, leased to spilling frontiers and recycled (truncated to
/// zero) when a frontier's replay is dropped. Reuse matters: creating and
/// unlinking a temp file per BFS level costs directory operations that
/// measurably drag the spill arm on a real filesystem. The files are
/// unlinked when the pool itself drops — end of run or panic unwind.
///
/// The feedback counters make the **lazy window encode** possible: a
/// frontier defers encoding pushed records until the window's *estimated*
/// size reaches the chunk budget, and the estimate is the run's measured
/// average encoded bytes per state. Levels that fit the budget therefore
/// never touch the codec at all — with the eager scheme they paid a full
/// encode per push only to discard the buffer. The counters are a pure
/// function of the (deterministic) push history, so chunk boundaries
/// remain deterministic.
#[derive(Debug)]
pub(crate) struct SpillPool {
    dir: PathBuf,
    free: Vec<SpillFile>,
    /// States covered by records encoded so far this run.
    encoded_states: u64,
    /// Bytes those records encoded to.
    encoded_bytes: u64,
    /// Most recent sonde measurement: the per-state byte size of a
    /// recent record, scratch-encoded just for measurement (every
    /// [`SONDE_EVERY`]-th pushed state). Keeps the estimate tracking
    /// record-size *growth* across a level, which the cumulative average
    /// alone would lag behind — the accumulating-history shape that
    /// broke the original state-count window.
    sonde_state_bytes: u64,
    /// The run's fault-injection seam, carried into created files (the
    /// unlink seam lives on the file's drop).
    plane: FaultPlane,
}

/// Pessimistic per-state record-size estimate before any feedback exists:
/// low enough that encoding starts promptly on record-heavy states, high
/// enough that a handful of tiny test records do not defer forever.
const INITIAL_STATE_BYTES: u64 = 64;

/// One in this many pushed states is sonde-encoded to keep the lazy
/// window's size estimate current. The sonde is the lazy scheme's whole
/// residual encode cost on levels that never spill.
const SONDE_EVERY: usize = 8;

impl SpillPool {
    fn lease(&mut self) -> std::io::Result<SpillFile> {
        match self.free.pop() {
            Some(file) => Ok(file),
            None => SpillFile::create(&self.dir, self.plane.clone()),
        }
    }

    fn recycle(&mut self, file: SpillFile) {
        // Drop the bytes but keep the inode for the next frontier.
        if file.file.set_len(0).is_ok() {
            self.free.push(file);
        }
    }

    /// The per-state record-size estimate the lazy window works against:
    /// the larger of the run's measured average and the latest sonde, so
    /// both long-run drift and sudden growth err toward encoding early
    /// (the safe direction for the memory bound).
    fn est_state_bytes(&self) -> u64 {
        let avg = if self.encoded_states == 0 {
            0
        } else {
            self.encoded_bytes.div_ceil(self.encoded_states)
        };
        avg.max(self.sonde_state_bytes).max(1)
    }

    fn record_feedback(&mut self, states: usize, bytes: usize) {
        self.encoded_states += states as u64;
        self.encoded_bytes += bytes as u64;
    }
}

/// Descriptor of one chunk written to the spill file.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    offset: u64,
    len: usize,
    /// States the chunk replays to (group records count their children).
    count: usize,
}

/// Decode-site context: which file, which chunk, which codec. A corrupt
/// record aborts the run (a damaged frontier cannot be explored soundly),
/// and the report must name all three — "corrupt spill record" alone is
/// useless against a persistent store holding many files.
struct ChunkContext<'a> {
    path: &'a std::path::Path,
    chunk_index: usize,
    codec: SpillCodec,
}

impl ChunkContext<'_> {
    /// Aborts the replay, naming the record part that failed to decode
    /// plus the file path, chunk index, and active codec.
    fn corrupt(&self, what: &str) -> ! {
        panic!(
            "corrupt spill record in chunk {} of {}: bad {what} ({:?} codec)",
            self.chunk_index,
            self.path.display(),
            self.codec,
        )
    }
}

/// Decodes one chunk's records — its first `yield_count` states — onto
/// `states`, regenerating replay groups through `regen`. Shared by the
/// consuming replay ([`FrontierChunks::next_chunk`]) and the
/// non-destructive checkpoint snapshot
/// ([`SpillFrontier::snapshot_states`]), so both fail corrupt records
/// with the same fully-named report.
fn decode_chunk<S: DeltaCodec + Clone>(
    context: &ChunkContext<'_>,
    mut input: &[u8],
    yield_count: usize,
    ctx: &mut DeltaCtx,
    regen: &impl Regenerator<S>,
    regenerated_parents: &mut usize,
    states: &mut Vec<S>,
) {
    // `states` may already hold earlier chunks (the snapshot accumulates);
    // chunk-relative positions keep the delta chain and the yield count
    // anchored to *this* chunk, whose first record is self-contained.
    let base = states.len();
    match context.codec {
        SpillCodec::Replay => {
            let mut prev_parent: Option<S> = None;
            let mut indices: Vec<usize> = Vec::new();
            while states.len() - base < yield_count {
                let Some(kind) = usize::decode(&mut input) else {
                    context.corrupt("record kind");
                };
                if kind == 0 {
                    let Some(state) = S::decode(&mut input) else {
                        context.corrupt("literal state");
                    };
                    states.push(state);
                    continue;
                }
                let Some(parent) = S::decode_delta(prev_parent.as_ref(), &mut input, ctx) else {
                    context.corrupt("parent state");
                };
                // A truncation point mid-group regenerates only the
                // surviving prefix of the indices; the loop then exits,
                // so the unread tail of the chunk needs no stream
                // alignment.
                let take = kind.min(yield_count - (states.len() - base));
                indices.clear();
                let mut index = 0usize;
                for nth in 0..take {
                    let Some(gap) = usize::decode(&mut input) else {
                        context.corrupt("successor index");
                    };
                    index = if nth == 0 { gap } else { index + gap };
                    indices.push(index);
                }
                *regenerated_parents += 1;
                regen.regenerate(&parent, &indices, states);
                prev_parent = Some(parent);
            }
        }
        SpillCodec::Delta => {
            for _ in 0..yield_count {
                let prev = if states.len() > base {
                    states.last()
                } else {
                    None
                };
                let Some(state) = S::decode_delta(prev, &mut input, ctx) else {
                    context.corrupt("delta state");
                };
                states.push(state);
            }
        }
        SpillCodec::Plain => {
            for _ in 0..yield_count {
                let Some(state) = S::decode(&mut input) else {
                    context.corrupt("state");
                };
                states.push(state);
            }
        }
    }
}

/// An open spill file that removes itself from disk on drop (normal
/// completion, early stop, and panic unwind alike).
#[derive(Debug)]
struct SpillFile {
    file: File,
    path: PathBuf,
    plane: FaultPlane,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // An injected unlink fault models EINTR on the unlink syscall:
        // it is unconditionally retried (a spill file must never leak),
        // so the seam exercises only the retry accounting — the file is
        // removed either way.
        if self.plane.inject(FaultOp::SpillUnlink).is_some() {
            self.plane.note_retry();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Process-wide sequence number making spill file names unique.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillFile {
    fn create(dir: &std::path::Path, plane: FaultPlane) -> std::io::Result<SpillFile> {
        loop {
            if let Some(kind) = plane.inject(FaultOp::SpillCreate) {
                return Err(kind.to_io_error());
            }
            let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("slx-spill-{}-{seq}.bin", std::process::id()));
            match OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => return Ok(SpillFile { file, path, plane }),
                Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(err) => return Err(err),
            }
        }
    }
}

/// One BFS level's frontier of states, optionally backed by disk.
///
/// Without a [`SpillConfig`] this is a plain `Vec` (the kernel's historic
/// behaviour, zero overhead). With one, pushed states accumulate in a
/// decoded tail window that is encoded **lazily**: nothing touches the
/// codec until the window's *estimated* record bytes (state count times
/// the run's measured average record size — see
/// [`SpillPool::est_state_bytes`]) reach the chunk byte budget. Under
/// pressure, records materialize one at a time into the window buffer,
/// whose length is an exact byte measure; the moment it reaches the
/// budget, the encoded prefix is appended to a self-cleaning temp file
/// and the window restarts. Levels that fit the budget therefore do no
/// codec work at all (the eager scheme paid a full encode per push only
/// to discard the buffer), and the final window of every level — which
/// replays its decoded states directly — never encodes either. Chunk
/// boundaries are still byte-exact and the estimate is a pure function
/// of the deterministic push history, so replay order, chunk contents,
/// and every statistic remain deterministic.
///
/// States enter either one at a time ([`SpillFrontier::push`] — initial
/// states, encoded as self-contained "literal" records under the replay
/// codec) or as one parent's contiguous run of accepted successors
/// ([`SpillFrontier::push_group`] — the shape the replay codec stores as
/// a single *(parent, indices)* record).
#[derive(Debug)]
pub(crate) struct SpillFrontier<S> {
    /// The decoded states: everything (no-spill mode) or the unflushed
    /// tail window (spill mode; its prefix may already be encoded into
    /// the spill buffer).
    resident: Vec<S>,
    spill: Option<SpillState<S>>,
    /// States pushed.
    total: usize,
    /// Truncation point from [`SpillFrontier::truncate`].
    limit: Option<usize>,
}

/// Deferred replay-record shape for states not yet encoded: a literal
/// (initial state, no parent) or a parent group. Group action indices
/// live in the shared [`SpillState::pending_indices`] ring, consumed in
/// record order, so deferring costs no per-group allocation.
#[derive(Debug)]
struct ReplayMeta<S> {
    /// `None` for a literal record (the state itself sits in `resident`).
    parent: Option<S>,
    /// States the record covers (1 for a literal). Groups pop exactly
    /// this many action indices from the shared ring; literals pop none.
    count: usize,
}

#[derive(Debug)]
struct SpillState<S> {
    config: SpillConfig,
    /// Encoded records of `resident[..encoded]`; its length is the exact
    /// byte measure lazy encoding works against.
    buf: Vec<u8>,
    /// How many leading `resident` states have records in `buf`.
    encoded: usize,
    /// Replay codec: deferred record metas for `resident[encoded..]`.
    pending: VecDeque<ReplayMeta<S>>,
    /// Replay codec: the deferred groups' action indices, in record
    /// order.
    pending_indices: VecDeque<usize>,
    /// Replay codec: the parent of the current chunk's most recent
    /// encoded group, the delta anchor for the next one. `None` at chunk
    /// start, so chunk-first parents stay self-contained.
    prev_parent: Option<S>,
    /// Largest window byte measure observed (the resident-byte bound the
    /// memory budget is supposed to enforce).
    peak_window_bytes: usize,
    /// Chunks already written to `file`, in push order.
    chunks: Vec<ChunkMeta>,
    /// Leased from the pool on the first spill, so small levels never
    /// touch disk even in spill mode; recycled on drop.
    file: Option<SpillFile>,
    /// Byte length of this frontier's file contents so far (the next
    /// write offset).
    spilled_bytes: u64,
    /// Pushed states until the next sonde measurement fires (0 = the
    /// next push sondes).
    sonde_countdown: usize,
    /// Reused sonde buffer; never written anywhere, only measured.
    scratch: Vec<u8>,
    /// Set when a flush hit a persistent out-of-space error: the level
    /// finishes resident (no further encode or flush work), bounded by
    /// the [`fault::DEGRADED_CAP_CHUNKS`] hard cap.
    degraded: bool,
}

impl<S> Drop for SpillState<S> {
    fn drop(&mut self) {
        if let Some(file) = self.file.take() {
            self.config.pool.borrow_mut().recycle(file);
        }
    }
}

impl<S: DeltaCodec + Clone> SpillFrontier<S> {
    /// A frontier; `config: None` keeps every state decoded and resident.
    pub(crate) fn new(config: Option<SpillConfig>) -> Self {
        SpillFrontier {
            resident: Vec::new(),
            spill: config.map(|config| SpillState {
                config,
                buf: Vec::new(),
                encoded: 0,
                pending: VecDeque::new(),
                pending_indices: VecDeque::new(),
                prev_parent: None,
                peak_window_bytes: 0,
                chunks: Vec::new(),
                file: None,
                spilled_bytes: 0,
                sonde_countdown: 0,
                scratch: Vec::new(),
                degraded: false,
            }),
            total: 0,
            limit: None,
        }
    }

    /// Appends one state with no parent context (initial states). Push
    /// order is replay order. Fails only on a persistent spill I/O error
    /// ([`EngineError::SpillIo`]) or past the degraded-mode cap
    /// ([`EngineError::SpillExhausted`]); no-spill frontiers are
    /// infallible.
    pub(crate) fn push(&mut self, state: S) -> Result<(), EngineError> {
        debug_assert!(self.limit.is_none(), "push after truncate is undefined");
        self.total += 1;
        self.resident.push(state);
        let Some(spill) = &mut self.spill else {
            return Ok(());
        };
        if spill.config.codec == SpillCodec::Replay {
            spill.pending.push_back(ReplayMeta {
                parent: None,
                count: 1,
            });
        }
        if spill.sonde_due(1) {
            spill.scratch.clear();
            let state = self.resident.last().expect("just pushed");
            match spill.config.codec {
                SpillCodec::Plain => state.encode(&mut spill.scratch),
                SpillCodec::Delta => {
                    let prev = self
                        .resident
                        .len()
                        .checked_sub(2)
                        .map(|i| &self.resident[i]);
                    state.encode_delta(prev, &mut spill.scratch);
                }
                // A literal record: marker plus the self-contained state.
                SpillCodec::Replay => {
                    0usize.encode(&mut spill.scratch);
                    state.encode(&mut spill.scratch);
                }
            }
            spill.report_sonde(1);
        }
        self.settle()
    }

    /// Appends one parent's contiguous run of accepted successors:
    /// `children` (drained) with their push-order action `indices` in the
    /// parent's expansion. The parent is taken by value (the checker owns
    /// the consumed chunk and is done with it) so the replay codec can
    /// keep it as a deferred record — and later as the next group's delta
    /// anchor — without a clone.
    ///
    /// Under [`SpillCodec::Replay`] the run is stored as one *(parent,
    /// indices)* group record — the children themselves are never
    /// encoded, and a replay regenerates them by re-expanding the parent.
    /// Groups never split across chunks, so a parent is re-expanded at
    /// most once per frontier replay. Under the other codecs (and without
    /// a spill config) this is equivalent to pushing each child
    /// individually.
    pub(crate) fn push_group(
        &mut self,
        parent: S,
        children: &mut Vec<S>,
        indices: &[usize],
    ) -> Result<(), EngineError> {
        debug_assert_eq!(children.len(), indices.len(), "one index per child");
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "action indices are push-order positions, strictly increasing"
        );
        if children.is_empty() {
            return Ok(());
        }
        match &mut self.spill {
            None => {
                self.total += children.len();
                self.resident.append(children);
                Ok(())
            }
            Some(spill) if spill.config.codec == SpillCodec::Replay => {
                debug_assert!(self.limit.is_none(), "push after truncate is undefined");
                self.total += children.len();
                if spill.sonde_due(children.len()) {
                    spill.scratch.clear();
                    children.len().encode(&mut spill.scratch);
                    // Any plausible sibling works as the sonde's delta
                    // anchor; the newest deferred parent (else the
                    // encoded chain's anchor) is one push away.
                    let anchor = spill
                        .pending
                        .back()
                        .and_then(|meta| meta.parent.as_ref())
                        .or(spill.prev_parent.as_ref());
                    parent.encode_delta(anchor, &mut spill.scratch);
                    let mut prev_index = 0usize;
                    for &index in indices {
                        (index - prev_index).encode(&mut spill.scratch);
                        prev_index = index;
                    }
                    spill.report_sonde(children.len());
                }
                spill.pending.push_back(ReplayMeta {
                    parent: Some(parent),
                    count: children.len(),
                });
                spill.pending_indices.extend(indices.iter().copied());
                self.resident.append(children);
                self.settle()
            }
            Some(_) => {
                for child in children.drain(..) {
                    self.push(child)?;
                }
                Ok(())
            }
        }
    }

    /// Materializes deferred records while the window's estimated byte
    /// measure sits at or above the chunk budget, flushing the encoded
    /// prefix whenever its exact size reaches the budget. One record is
    /// encoded per iteration, so the buffer never overshoots the budget
    /// by more than a single record even when record sizes grow across a
    /// level.
    ///
    /// A frontier that has degraded (persistent out-of-space on a flush)
    /// does no further codec or disk work; it only polices the resident
    /// hard cap, failing with [`EngineError::SpillExhausted`] once the
    /// level's estimated resident bytes exceed
    /// [`fault::DEGRADED_CAP_CHUNKS`] chunk budgets.
    fn settle(&mut self) -> Result<(), EngineError> {
        let Some(spill) = &mut self.spill else {
            return Ok(());
        };
        loop {
            if spill.degraded {
                return spill.check_degraded_cap(self.resident.len());
            }
            let unencoded = self.resident.len() - spill.encoded;
            if unencoded == 0 {
                return Ok(());
            }
            let avg = spill.config.pool.borrow().est_state_bytes();
            let window_est = spill.buf.len() as u64 + unencoded as u64 * avg;
            if window_est < spill.config.chunk_bytes as u64 {
                return Ok(());
            }
            spill.encode_next(&self.resident);
            if spill.buf.len() >= spill.config.chunk_bytes {
                spill.flush_encoded(&mut self.resident)?;
            }
        }
    }

    /// States the frontier will replay (pushes, capped by any truncation).
    pub(crate) fn len(&self) -> usize {
        self.limit.map_or(self.total, |limit| limit.min(self.total))
    }

    /// Whether no state will be replayed.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Caps replay at the first `len` states — the same prefix whether the
    /// tail is resident or already spilled (the budget-truncation
    /// regression suite pins this), including mid-group under the replay
    /// codec (only the first surviving indices regenerate).
    pub(crate) fn truncate(&mut self, len: usize) {
        self.limit = Some(self.limit.map_or(len, |limit| limit.min(len)));
    }

    /// Chunks written to disk by this frontier.
    pub(crate) fn spilled_chunks(&self) -> usize {
        self.spill.as_ref().map_or(0, |spill| spill.chunks.len())
    }

    /// Bytes written to disk by this frontier.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |spill| spill.spilled_bytes)
    }

    /// Largest encoded byte size the decoded window reached (0 without a
    /// spill config: unbudgeted frontiers never encode, so there is
    /// nothing to measure).
    pub(crate) fn peak_window_bytes(&self) -> usize {
        self.spill
            .as_ref()
            .map_or(0, |spill| spill.peak_window_bytes)
    }

    /// Whether this frontier hit a persistent out-of-space error and
    /// finished (or is finishing) its level resident.
    pub(crate) fn degraded(&self) -> bool {
        self.spill.as_ref().is_some_and(|spill| spill.degraded)
    }

    /// A non-destructive copy of every state the frontier will replay, in
    /// push order — the checkpoint store's frontier image. Spilled chunks
    /// decode through the same record paths as
    /// [`FrontierChunks::next_chunk`], but with a fresh [`DeltaCtx`] and a
    /// caller-supplied regenerator, so snapshotting perturbs neither the
    /// frontier (still fully replayable afterwards) nor any replay
    /// statistics; the decoded resident tail is then cloned directly.
    ///
    /// Fails with [`EngineError::SpillIo`] if a spilled chunk cannot be
    /// read back past the bounded retry; panics (naming the file, chunk,
    /// and codec) if a read-back record fails to decode — a damaged
    /// spill file cannot be explored soundly.
    pub(crate) fn snapshot_states(
        &mut self,
        regen: &impl Regenerator<S>,
    ) -> Result<Vec<S>, EngineError> {
        let mut states: Vec<S> = Vec::with_capacity(self.len());
        if let Some(spill) = &mut self.spill {
            let mut ctx = DeltaCtx::new();
            let mut regenerated = 0usize;
            let plane = spill.config.plane.clone();
            let metas = spill.chunks.clone();
            for (chunk_index, meta) in metas.iter().enumerate() {
                let file = spill.file.as_mut().expect("spilled chunks imply a file");
                let bytes = read_chunk_bytes(&plane, file, meta)?;
                let context = ChunkContext {
                    path: &file.path,
                    chunk_index,
                    codec: spill.config.codec,
                };
                decode_chunk(
                    &context,
                    &bytes,
                    meta.count,
                    &mut ctx,
                    regen,
                    &mut regenerated,
                    &mut states,
                );
            }
        }
        states.extend_from_slice(&self.resident);
        states.truncate(self.len());
        Ok(states)
    }

    /// Consumes the frontier into its chunk replay. Chunks come back in
    /// push order; the spill file (if any) is deleted when the replay is
    /// dropped.
    pub(crate) fn into_chunks(mut self) -> FrontierChunks<S> {
        let remaining = self.len();
        FrontierChunks {
            resident: Some(std::mem::take(&mut self.resident)),
            spill: self.spill.take(),
            ctx: DeltaCtx::new(),
            next_chunk: 0,
            remaining,
            regenerated_parents: 0,
        }
    }
}

impl<S: DeltaCodec> SpillState<S> {
    /// Whether the record being pushed (covering `states` states) is due
    /// a sonde measurement, rearming the countdown if so.
    fn sonde_due(&mut self, states: usize) -> bool {
        if self.sonde_countdown < states {
            // The firing record itself counts toward the cadence.
            self.sonde_countdown = SONDE_EVERY - 1;
            true
        } else {
            self.sonde_countdown -= states;
            false
        }
    }

    /// Publishes the scratch buffer's measurement as the run's latest
    /// per-state record size.
    fn report_sonde(&mut self, states: usize) {
        self.config.pool.borrow_mut().sonde_state_bytes =
            (self.scratch.len().div_ceil(states) as u64).max(1);
    }

    /// Encodes the next deferred record onto the window buffer,
    /// delta-chained to its buffer predecessor (`None` for the first
    /// record of a chunk, which therefore stays self-contained — the
    /// chunk boundary invariant the replay relies on), and feeds the
    /// actual record size back to the pool's estimate.
    fn encode_next(&mut self, resident: &[S]) {
        let before = self.buf.len();
        let covered = match self.config.codec {
            SpillCodec::Delta => {
                let prev = self.encoded.checked_sub(1).map(|i| &resident[i]);
                resident[self.encoded].encode_delta(prev, &mut self.buf);
                1
            }
            SpillCodec::Plain => {
                resident[self.encoded].encode(&mut self.buf);
                1
            }
            SpillCodec::Replay => {
                let meta = self.pending.pop_front().expect("unencoded replay meta");
                match meta.parent {
                    // A literal record: zero children marker, then the
                    // state itself, self-contained (initial states have
                    // no parent to replay from).
                    None => {
                        0usize.encode(&mut self.buf);
                        resident[self.encoded].encode(&mut self.buf);
                    }
                    Some(parent) => {
                        meta.count.encode(&mut self.buf);
                        parent.encode_delta(self.prev_parent.as_ref(), &mut self.buf);
                        // First index absolute, then the (strictly
                        // positive) gaps.
                        let mut prev_index = 0usize;
                        for _ in 0..meta.count {
                            let index = self
                                .pending_indices
                                .pop_front()
                                .expect("index ring tracks metas");
                            (index - prev_index).encode(&mut self.buf);
                            prev_index = index;
                        }
                        self.prev_parent = Some(parent);
                    }
                }
                meta.count
            }
        };
        self.encoded += covered;
        self.config
            .pool
            .borrow_mut()
            .record_feedback(covered, self.buf.len() - before);
        self.peak_window_bytes = self.peak_window_bytes.max(self.buf.len());
    }

    /// Appends the window buffer (the records of `resident`'s encoded
    /// prefix) to the spill file as one chunk and drops that prefix from
    /// the decoded window.
    ///
    /// Transient (EINTR-class) errors — injected or real — get bounded
    /// retry; each attempt re-seeks to the chunk's start offset, so a
    /// torn partial write is simply overwritten by the next attempt and
    /// never becomes a live chunk. A persistent out-of-space error flips
    /// the frontier into degraded mode (the level finishes resident;
    /// already-committed chunks stay valid); any other persistent error
    /// is [`EngineError::SpillIo`].
    fn flush_encoded(&mut self, resident: &mut Vec<S>) -> Result<(), EngineError> {
        if self.encoded == 0 {
            return Ok(());
        }
        let plane = self.config.plane.clone();
        let write = fault::with_io_retries(&plane, || {
            if self.file.is_none() {
                self.file = Some(self.config.pool.borrow_mut().lease()?);
            }
            let file = self.file.as_mut().expect("just leased");
            // Seek explicitly: a recycled file's cursor is wherever the
            // previous frontier's replay left it — and a retry after a
            // torn write must restart from the chunk's own offset.
            file.file.seek(SeekFrom::Start(self.spilled_bytes))?;
            fault::faulty_write_all(&plane, FaultOp::SpillWrite, &mut file.file, &self.buf)
        });
        if let Err(err) = write {
            // A missing file means the lease (creation) itself failed.
            let (path, op) = match &self.file {
                Some(file) => (file.path.clone(), "write"),
                None => (self.config.pool.borrow().dir.clone(), "create"),
            };
            // Never strand the pooled file on the error path: an empty
            // lease goes straight back to the pool (hygiene holds even
            // under injected ENOSPC), while a file already holding
            // committed chunks of this frontier must stay — those chunks
            // are replayed at consume time.
            if self.chunks.is_empty() {
                if let Some(file) = self.file.take() {
                    self.config.pool.borrow_mut().recycle(file);
                }
            }
            if fault::is_out_of_space(&err) {
                // Graceful degradation: keep every unflushed state
                // resident and stop touching the disk. The encoded
                // buffer is discarded, not the states — `resident` still
                // holds everything past the committed chunks.
                self.degraded = true;
                self.buf.clear();
                self.encoded = 0;
                self.prev_parent = None;
                return self.check_degraded_cap(resident.len());
            }
            return Err(EngineError::SpillIo {
                path,
                op,
                msg: err.to_string(),
            });
        }
        self.chunks.push(ChunkMeta {
            offset: self.spilled_bytes,
            len: self.buf.len(),
            count: self.encoded,
        });
        self.spilled_bytes += self.buf.len() as u64;
        self.buf.clear();
        resident.drain(..self.encoded);
        self.encoded = 0;
        self.prev_parent = None;
        Ok(())
    }

    /// Polices the degraded-mode hard cap: a frontier that can no longer
    /// spill may keep at most [`fault::DEGRADED_CAP_CHUNKS`] chunk
    /// budgets of estimated resident bytes before the run fails typed,
    /// naming the spill directory and the cap.
    fn check_degraded_cap(&self, resident_states: usize) -> Result<(), EngineError> {
        let pool = self.config.pool.borrow();
        let budget = self
            .config
            .chunk_bytes
            .saturating_mul(fault::DEGRADED_CAP_CHUNKS);
        if resident_states as u64 * pool.est_state_bytes() > budget as u64 {
            return Err(EngineError::SpillExhausted {
                path: pool.dir.clone(),
                budget,
            });
        }
        Ok(())
    }
}

/// Reads one committed chunk's bytes back through the fault plane's
/// read seam, with bounded retry on transient errors; a persistent
/// failure is a typed [`EngineError::SpillIo`] naming the file.
fn read_chunk_bytes(
    plane: &FaultPlane,
    file: &mut SpillFile,
    meta: &ChunkMeta,
) -> Result<Vec<u8>, EngineError> {
    let mut bytes = vec![0u8; meta.len];
    fault::with_io_retries(plane, || {
        if let Some(kind) = plane.inject(FaultOp::SpillRead) {
            return Err(kind.to_io_error());
        }
        file.file.seek(SeekFrom::Start(meta.offset))?;
        file.file.read_exact(&mut bytes)
    })
    .map_err(|err| EngineError::SpillIo {
        path: file.path.clone(),
        op: "read",
        msg: err.to_string(),
    })?;
    Ok(bytes)
}

/// Consuming chunk replay of a [`SpillFrontier`]; owns (and on drop
/// deletes) the spill file.
#[derive(Debug)]
pub(crate) struct FrontierChunks<S> {
    /// The final decoded window (spill mode) or the whole frontier
    /// (no-spill mode), yielded after the file chunks.
    resident: Option<Vec<S>>,
    spill: Option<SpillState<S>>,
    /// Per-replay intern table: self-contained chunk-first records
    /// rebuild their shared sub-structures through it, so records in
    /// different chunks of one replay share allocations again.
    ctx: DeltaCtx,
    next_chunk: usize,
    /// States still to yield (pre-capped by any truncation).
    remaining: usize,
    /// Parents re-expanded by replay regeneration so far (one per group
    /// record reached).
    regenerated_parents: usize,
}

impl<S: DeltaCodec + Clone> FrontierChunks<S> {
    /// The next chunk of states, in push order, or `Ok(None)` when the
    /// replay (or its truncation point) is exhausted. `regen` regenerates
    /// [`SpillCodec::Replay`] group records and is never invoked for the
    /// other codecs.
    ///
    /// Fails with [`EngineError::SpillIo`] if the spill file cannot be
    /// read back past the bounded retry; panics if a read-back record
    /// fails to decode — a damaged spill file cannot be explored
    /// soundly, so the run fails loudly rather than silently dropping
    /// states.
    pub(crate) fn next_chunk(
        &mut self,
        regen: &impl Regenerator<S>,
    ) -> Result<Option<Vec<S>>, EngineError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if let Some(spill) = &mut self.spill {
            if let Some(meta) = spill.chunks.get(self.next_chunk).copied() {
                let chunk_index = self.next_chunk;
                self.next_chunk += 1;
                let file = spill.file.as_mut().expect("spilled chunks imply a file");
                let plane = spill.config.plane.clone();
                let bytes = read_chunk_bytes(&plane, file, &meta)?;
                let yield_count = meta.count.min(self.remaining);
                self.remaining -= yield_count;
                let mut states: Vec<S> = Vec::with_capacity(yield_count);
                let context = ChunkContext {
                    path: &file.path,
                    chunk_index,
                    codec: spill.config.codec,
                };
                decode_chunk(
                    &context,
                    &bytes,
                    yield_count,
                    &mut self.ctx,
                    regen,
                    &mut self.regenerated_parents,
                    &mut states,
                );
                return Ok(Some(states));
            }
        }
        // The decoded tail: never touched a decode or a regeneration.
        let Some(mut window) = self.resident.take() else {
            return Ok(None);
        };
        window.truncate(self.remaining);
        self.remaining = 0;
        if window.is_empty() {
            Ok(None)
        } else {
            Ok(Some(window))
        }
    }

    /// Parents re-expanded by replay regeneration so far (the checker
    /// tracks its own count inside the regenerator; this accessor backs
    /// the unit-level once-per-parent pins).
    #[cfg(test)]
    pub(crate) fn regenerated_parents(&self) -> usize {
        self.regenerated_parents
    }
}

#[cfg(test)]
mod tests {
    use std::io::Write as _;

    use super::*;
    use crate::Digest;

    fn test_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "slx-spill-unit-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("test spill dir");
        dir
    }

    fn test_config(chunk_bytes: usize) -> SpillConfig {
        SpillConfig::new(chunk_bytes, SpillCodec::Delta, test_dir())
    }

    /// A regenerator for codecs that never regenerate.
    fn no_regen<S>() -> impl Fn(&S, &[usize], &mut Vec<S>) {
        |_: &S, _: &[usize], _: &mut Vec<S>| panic!("non-replay chunks must not regenerate")
    }

    fn drain<S: DeltaCodec + Clone>(
        mut chunks: FrontierChunks<S>,
        regen: &impl Regenerator<S>,
    ) -> (Vec<S>, Vec<usize>) {
        let mut all = Vec::new();
        let mut sizes = Vec::new();
        while let Some(chunk) = chunks.next_chunk(regen).expect("replay read") {
            sizes.push(chunk.len());
            all.extend(chunk);
        }
        (all, sizes)
    }

    fn states(n: u64) -> Vec<u64> {
        (1000..1000 + n).collect()
    }

    /// The grouped shape the checker pushes: parent `p` contributes
    /// children `10 * p + index` at the given action indices. The
    /// matching regenerator rebuilds exactly that.
    fn push_parent_groups(frontier: &mut SpillFrontier<u64>, groups: &[(u64, &[usize])]) {
        for &(parent, indices) in groups {
            let mut children: Vec<u64> = indices.iter().map(|&i| 10 * parent + i as u64).collect();
            frontier.push_group(parent, &mut children, indices).unwrap();
        }
    }

    fn group_regen(parent: &u64, indices: &[usize], out: &mut Vec<u64>) {
        for &i in indices {
            out.push(10 * parent + i as u64);
        }
    }

    #[test]
    fn resident_mode_replays_in_one_chunk() {
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(None);
        for s in states(10) {
            frontier.push(s).unwrap();
        }
        assert_eq!(frontier.len(), 10);
        assert_eq!(frontier.spilled_chunks(), 0);
        assert_eq!(frontier.peak_window_bytes(), 0, "nothing encoded");
        let (all, sizes) = drain(frontier.into_chunks(), &no_regen());
        assert_eq!(all, states(10));
        assert_eq!(sizes, vec![10]);
    }

    #[test]
    fn spill_mode_round_trips_in_push_order() {
        // Each state is a two-byte varint (values ≥ 1000); an 8-byte
        // chunk threshold spills every fourth push.
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(8)));
        for s in states(100) {
            frontier.push(s).unwrap();
        }
        assert!(frontier.spilled_chunks() >= 20, "must have spilled");
        assert!(frontier.spilled_bytes() >= 2 * 90);
        let (all, sizes) = drain(frontier.into_chunks(), &no_regen());
        assert_eq!(all, states(100));
        assert!(
            sizes.iter().all(|&s| s <= 4),
            "chunks stay bounded: {sizes:?}"
        );
    }

    #[test]
    fn plain_and_delta_codecs_replay_identically() {
        for chunk_bytes in [24usize, 48, 96] {
            let mut delta: SpillFrontier<Vec<u64>> = SpillFrontier::new(Some(SpillConfig::new(
                chunk_bytes,
                SpillCodec::Delta,
                test_dir(),
            )));
            let mut plain: SpillFrontier<Vec<u64>> = SpillFrontier::new(Some(SpillConfig::new(
                chunk_bytes,
                SpillCodec::Plain,
                test_dir(),
            )));
            // Sibling-shaped states: a long shared prefix plus a varying
            // tail, like the configurations of one BFS level.
            let siblings: Vec<Vec<u64>> = (0..64u64)
                .map(|i| {
                    let mut v: Vec<u64> = (0..12).collect();
                    v.push(i);
                    v
                })
                .collect();
            for s in &siblings {
                delta.push(s.clone()).unwrap();
                plain.push(s.clone()).unwrap();
            }
            assert!(
                delta.spilled_chunks() >= 2,
                "chunk {chunk_bytes} must spill"
            );
            assert!(
                delta.spilled_bytes() < plain.spilled_bytes(),
                "chunk {chunk_bytes}: delta ({}) must beat plain ({}) on sibling-shaped states",
                delta.spilled_bytes(),
                plain.spilled_bytes()
            );
            let (from_delta, _) = drain(delta.into_chunks(), &no_regen());
            let (from_plain, _) = drain(plain.into_chunks(), &no_regen());
            assert_eq!(from_delta, siblings, "chunk {chunk_bytes}");
            assert_eq!(from_plain, siblings, "chunk {chunk_bytes}");
        }
    }

    #[test]
    fn replay_groups_round_trip_without_storing_children() {
        let groups: Vec<(u64, &[usize])> = vec![
            (7, &[0, 1, 2]),
            (8, &[1]),
            (9, &[0, 2, 5]),
            (11, &[3]),
            (12, &[0, 1]),
        ];
        let expected: Vec<u64> = groups
            .iter()
            .flat_map(|&(p, idx)| idx.iter().map(move |&i| 10 * p + i as u64))
            .collect();
        // A tiny chunk budget forces several flushes mid-run.
        for chunk_bytes in [4usize, 16, 1 << 20] {
            let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(SpillConfig::new(
                chunk_bytes,
                SpillCodec::Replay,
                test_dir(),
            )));
            push_parent_groups(&mut frontier, &groups);
            assert_eq!(frontier.len(), expected.len());
            let chunks = frontier.into_chunks();
            let (all, _) = drain(chunks, &group_regen);
            assert_eq!(all, expected, "chunk {chunk_bytes}");
        }
    }

    #[test]
    fn replay_regenerates_each_parent_at_most_once() {
        let groups: Vec<(u64, &[usize])> = (0..40u64).map(|p| (p, &[0usize, 1, 2][..])).collect();
        let mut frontier: SpillFrontier<u64> =
            SpillFrontier::new(Some(SpillConfig::new(12, SpillCodec::Replay, test_dir())));
        push_parent_groups(&mut frontier, &groups);
        assert!(frontier.spilled_chunks() >= 4, "must spill repeatedly");
        let mut chunks = frontier.into_chunks();
        let mut total = 0;
        while let Some(chunk) = chunks.next_chunk(&group_regen).expect("replay read") {
            total += chunk.len();
        }
        assert_eq!(total, 40 * 3);
        assert!(
            chunks.regenerated_parents() <= 40,
            "{} regenerations for 40 parents: groups must never split \
             across chunks or records",
            chunks.regenerated_parents()
        );
    }

    #[test]
    fn replay_spills_far_fewer_bytes_than_delta() {
        // Sibling-shaped Vec states: delta already collapses most of each
        // child, but replay stores no child bytes at all — one parent
        // record per group plus one varint per child.
        let parents: Vec<Vec<u64>> = (0..32u64)
            .map(|p| {
                let mut v: Vec<u64> = (0..16).collect();
                v.push(p);
                v
            })
            .collect();
        let make = |codec: SpillCodec| -> SpillFrontier<Vec<u64>> {
            SpillFrontier::new(Some(SpillConfig::new(64, codec, test_dir())))
        };
        let mut delta = make(SpillCodec::Delta);
        let mut replay = make(SpillCodec::Replay);
        // Each child scatters edits across the parent, so sibling deltas
        // cost several gap/value pairs per record while a replay group is
        // one parent record plus a varint per child.
        let child_of = |parent: &Vec<u64>, i: u64| {
            let mut child = parent.clone();
            for k in 0..4 {
                child[(k * 4) as usize] = i * 100 + k;
            }
            child
        };
        for parent in &parents {
            let mut children: Vec<Vec<u64>> = (0..3u64).map(|i| child_of(parent, i)).collect();
            let indices = [0usize, 1, 2];
            delta
                .push_group(parent.clone(), &mut children.clone(), &indices)
                .unwrap();
            replay
                .push_group(parent.clone(), &mut children, &indices)
                .unwrap();
        }
        assert!(delta.spilled_chunks() >= 2 && replay.spilled_chunks() >= 1);
        assert!(
            replay.spilled_bytes() * 2 < delta.spilled_bytes(),
            "replay ({}) must spill far fewer bytes than delta ({})",
            replay.spilled_bytes(),
            delta.spilled_bytes()
        );
        let regen = |parent: &Vec<u64>, indices: &[usize], out: &mut Vec<Vec<u64>>| {
            for &i in indices {
                let mut child = parent.clone();
                for k in 0..4 {
                    child[(k * 4) as usize] = i as u64 * 100 + k;
                }
                out.push(child);
            }
        };
        let (from_replay, _) = drain(replay.into_chunks(), &regen);
        let (from_delta, _) = drain(delta.into_chunks(), &no_regen());
        assert_eq!(from_replay, from_delta);
    }

    #[test]
    fn growing_records_respect_the_byte_budget() {
        // Records grow from ~2 to ~200 encoded bytes across the level —
        // the accumulating-history shape. The old state-count window
        // (chunk_bytes / first_record_size states per chunk) would pack
        // far too many of the large records into one window; the
        // byte-measured window must stay within chunk_bytes plus one
        // record regardless of growth. Plain encoding so the sizes are
        // predictable.
        const CHUNK: usize = 256;
        let mut frontier: SpillFrontier<Vec<u64>> =
            SpillFrontier::new(Some(SpillConfig::new(CHUNK, SpillCodec::Plain, test_dir())));
        let grown: Vec<Vec<u64>> = (0..100u64).map(|i| (0..i).collect()).collect();
        let mut max_record = 0;
        for s in &grown {
            let mut one = Vec::new();
            s.encode(&mut one);
            max_record = max_record.max(one.len());
            frontier.push(s.clone()).unwrap();
        }
        assert!(frontier.spilled_chunks() >= 4, "must spill repeatedly");
        assert!(
            frontier.peak_window_bytes() <= CHUNK + max_record,
            "window peaked at {} bytes; budget {CHUNK} + one record {max_record}",
            frontier.peak_window_bytes()
        );
        let spill = frontier.spill.as_ref().expect("spill mode");
        for meta in &spill.chunks {
            assert!(
                meta.len <= CHUNK + max_record,
                "chunk of {} bytes exceeds budget {CHUNK} + record {max_record}",
                meta.len
            );
        }
        let (all, _) = drain(frontier.into_chunks(), &no_regen());
        assert_eq!(all, grown);
    }

    #[test]
    fn truncation_cuts_the_same_prefix_resident_or_spilled() {
        for cut in [0usize, 1, 5, 17, 99, 100, 1000] {
            let mut resident: SpillFrontier<u64> = SpillFrontier::new(None);
            let mut spilled: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(16)));
            for s in states(100) {
                resident.push(s).unwrap();
                spilled.push(s).unwrap();
            }
            resident.truncate(cut);
            spilled.truncate(cut);
            assert_eq!(resident.len(), cut.min(100), "cut {cut}");
            assert_eq!(spilled.len(), cut.min(100), "cut {cut}");
            let (from_resident, _) = drain(resident.into_chunks(), &no_regen());
            let (from_spilled, _) = drain(spilled.into_chunks(), &no_regen());
            assert_eq!(from_resident, from_spilled, "cut {cut}");
            assert_eq!(from_spilled.len(), cut.min(100), "cut {cut}");
        }
    }

    #[test]
    fn truncation_mid_group_regenerates_only_the_surviving_prefix() {
        let groups: Vec<(u64, &[usize])> = (0..20u64).map(|p| (p, &[0usize, 1, 2][..])).collect();
        let full: Vec<u64> = groups
            .iter()
            .flat_map(|&(p, idx)| idx.iter().map(move |&i| 10 * p + i as u64))
            .collect();
        for cut in [0usize, 1, 2, 3, 4, 29, 30, 31, 59, 60, 61] {
            let mut frontier: SpillFrontier<u64> =
                SpillFrontier::new(Some(SpillConfig::new(12, SpillCodec::Replay, test_dir())));
            push_parent_groups(&mut frontier, &groups);
            frontier.truncate(cut);
            let (got, _) = drain(frontier.into_chunks(), &group_regen);
            assert_eq!(got, full[..cut.min(full.len())], "cut {cut}");
        }
    }

    #[test]
    fn replay_literals_round_trip() {
        // Initial states have no parent: they spill as self-contained
        // literal records even under the replay codec.
        let mut frontier: SpillFrontier<u64> =
            SpillFrontier::new(Some(SpillConfig::new(6, SpillCodec::Replay, test_dir())));
        for s in states(40) {
            frontier.push(s).unwrap();
        }
        assert!(frontier.spilled_chunks() >= 4);
        let (all, _) = drain(frontier.into_chunks(), &no_regen::<u64>());
        assert_eq!(all, states(40));
    }

    #[test]
    fn small_levels_never_touch_disk() {
        let dir = test_dir();
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            let mut frontier: SpillFrontier<u64> =
                SpillFrontier::new(Some(SpillConfig::new(1 << 20, codec, dir.clone())));
            for s in states(50) {
                frontier.push(s).unwrap();
            }
            assert_eq!(frontier.spilled_chunks(), 0, "{codec:?}");
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "{codec:?}");
            let (all, _) = drain(frontier.into_chunks(), &no_regen());
            assert_eq!(all, states(50), "{codec:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_file_dies_with_the_last_pool_holder() {
        let dir = test_dir();
        let config = SpillConfig::new(8, SpillCodec::Delta, dir.clone());
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
        for s in states(64) {
            frontier.push(s).unwrap();
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1, "one spill file per frontier");
        // The run (`config`) still holds the pool: the frontier's file is
        // recycled, not deleted, so the next level reuses the inode.
        drop(frontier);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(config.pool.borrow().free.len(), 1, "file went to the pool");
        drop(config);
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "dropping the last pool holder must delete the spill files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn consecutive_frontiers_reuse_the_pooled_file() {
        let dir = test_dir();
        let config = SpillConfig::new(8, SpillCodec::Delta, dir.clone());
        for round in 0..3 {
            let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
            for s in states(64) {
                frontier.push(s).unwrap();
            }
            let (all, _) = drain(frontier.into_chunks(), &no_regen());
            assert_eq!(all, states(64), "round {round}");
            assert_eq!(
                std::fs::read_dir(&dir).unwrap().count(),
                1,
                "round {round}: one recycled file serves every level"
            );
        }
        drop(config);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recycled_files_never_leak_stale_tails() {
        // A big frontier fills the pooled file with many chunks; the next
        // frontier over the same pool is smaller and must replay only its
        // own (fully rewritten) records — never a stale tail from before
        // the recycle's `set_len(0)`.
        let dir = test_dir();
        let config = SpillConfig::new(12, SpillCodec::Delta, dir.clone());
        let mut big: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
        for s in states(200) {
            big.push(s).unwrap();
        }
        let (all_big, _) = drain(big.into_chunks(), &no_regen());
        assert_eq!(all_big, states(200));
        for round in 0..3u64 {
            let mut small: SpillFrontier<u64> = SpillFrontier::new(Some(config.clone()));
            let expected: Vec<u64> = states(20).into_iter().map(|s| s + 1000 * round).collect();
            for &s in &expected {
                small.push(s).unwrap();
            }
            assert!(small.spilled_chunks() >= 2, "round {round} must spill");
            let (all_small, _) = drain(small.into_chunks(), &no_regen());
            assert_eq!(all_small, expected, "round {round}: no stale records");
        }
        drop(config);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partially_consumed_replay_cleans_up_too() {
        let dir = test_dir();
        for codec in [SpillCodec::Delta, SpillCodec::Replay] {
            let mut frontier: SpillFrontier<u64> =
                SpillFrontier::new(Some(SpillConfig::new(8, codec, dir.clone())));
            for s in states(64) {
                frontier.push(s).unwrap();
            }
            let mut chunks = frontier.into_chunks();
            let _ = chunks.next_chunk(&no_regen()).expect("replay read");
            drop(chunks);
            assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "{codec:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_leaves_the_frontier_fully_replayable() {
        // The snapshot must equal the replay (same states, same order)
        // without consuming anything — the checkpoint store reads it
        // mid-run and the level is then expanded as if nothing happened.
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            let mut frontier: SpillFrontier<u64> =
                SpillFrontier::new(Some(SpillConfig::new(12, codec, test_dir())));
            let groups: Vec<(u64, &[usize])> =
                (0..20u64).map(|p| (p, &[0usize, 1, 2][..])).collect();
            push_parent_groups(&mut frontier, &groups);
            assert!(frontier.spilled_chunks() >= 2, "{codec:?} must spill");
            let snapshot = frontier.snapshot_states(&group_regen).unwrap();
            assert_eq!(snapshot.len(), frontier.len(), "{codec:?}");
            let again = frontier.snapshot_states(&group_regen).unwrap();
            assert_eq!(snapshot, again, "{codec:?}: snapshot is repeatable");
            let (replayed, _) = drain(frontier.into_chunks(), &group_regen);
            assert_eq!(snapshot, replayed, "{codec:?}");
        }
        // Resident-only frontier (nothing spilled): a straight clone.
        let mut resident: SpillFrontier<u64> = SpillFrontier::new(None);
        for s in states(10) {
            resident.push(s).unwrap();
        }
        assert_eq!(resident.snapshot_states(&no_regen()).unwrap(), states(10));
        // Truncation caps the snapshot exactly like the replay.
        let mut cut: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(16)));
        for s in states(50) {
            cut.push(s).unwrap();
        }
        cut.truncate(13);
        assert_eq!(cut.snapshot_states(&no_regen()).unwrap(), states(13));
    }

    #[test]
    fn corrupt_records_name_the_file_chunk_and_codec() {
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            let mut frontier: SpillFrontier<u64> =
                SpillFrontier::new(Some(SpillConfig::new(8, codec, test_dir())));
            for s in states(40) {
                frontier.push(s).unwrap();
            }
            assert!(frontier.spilled_chunks() >= 2, "{codec:?} must spill");
            // Overwrite the second chunk with bytes no varint decoder
            // accepts (ten continuation bytes overflow the u64 shift).
            let path = {
                let spill = frontier.spill.as_mut().expect("spill mode");
                let meta = spill.chunks[1];
                let file = spill.file.as_mut().expect("spilled chunks imply a file");
                file.file
                    .seek(SeekFrom::Start(meta.offset))
                    .and_then(|_| file.file.write_all(&vec![0xff; meta.len]))
                    .expect("corrupting the spill file");
                file.path.clone()
            };
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                drain(frontier.into_chunks(), &no_regen())
            }))
            .expect_err("corrupt chunk must abort the replay");
            let message = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .expect("panic payload is a message");
            assert!(
                message.contains("corrupt spill record"),
                "{codec:?}: {message}"
            );
            assert!(message.contains("chunk 1"), "{codec:?}: {message}");
            assert!(
                message.contains(&path.display().to_string()),
                "{codec:?}: {message}"
            );
            assert!(
                message.contains(&format!("{codec:?} codec")),
                "{codec:?}: {message}"
            );
        }
    }

    #[test]
    fn digest_type_is_not_part_of_the_record_layout() {
        // A reminder-by-construction: records are states only. A frontier
        // of digests would be a type error at the call sites; this pin
        // documents the byte cost the layout saves (16 bytes per record).
        let mut frontier: SpillFrontier<u64> = SpillFrontier::new(Some(test_config(8)));
        for s in states(10) {
            frontier.push(s).unwrap();
        }
        let per_record = frontier.peak_window_bytes() as f64 / 4.0;
        assert!(
            per_record < std::mem::size_of::<Digest>() as f64,
            "a u64 record ({per_record} bytes) must undercut even a bare digest"
        );
    }
}
