//! Crash-tolerant checkpoint/resume store for the BFS kernel.
//!
//! Long exhaustive explorations are the workspace's whole product, and a
//! crash at depth 30 of a day-long run must not mean starting over. At
//! configurable level boundaries ([`crate::Checker::with_checkpoint`] /
//! `SLX_ENGINE_CHECKPOINT_DIR` + `SLX_ENGINE_CHECKPOINT_EVERY`) the
//! checker persists its complete resumable image through this store;
//! [`crate::Checker::resume`] reloads it and continues such that the
//! resumed run is **bit-identical to the uninterrupted one** in verdict,
//! findings, state counts (`configs`, `transitions`, `dedup_hits`,
//! `orbit_hits`, `peak_frontier`, `shard_occupancy`), and truncation
//! flags. Spill-volume counters (`spilled_chunks`/`spilled_bytes`,
//! `peak_resident_*`, `replayed_parents`) measure *I/O actually
//! performed* and may legitimately differ across a resume: the rebuilt
//! frontier re-chunks from scratch.
//!
//! # On-disk layout (format version 3)
//!
//! One file, `slx-checkpoint.bin`, inside the checkpoint directory. All
//! integers use the [`crate::StateCodec`] wire format (LEB128 varints,
//! `usize` as `u64`, `u128` as 16 little-endian bytes), so the file is
//! independent of the platform word size and endianness:
//!
//! ```text
//! magic                "SLXCKPT\0" (8 bytes)
//! version              varint — FORMAT_VERSION (1)
//! run-config header    space fingerprint (u128), spill codec tag (u8),
//!                      symmetry (bool), shard count, config budget,
//!                      mem budget
//! depth                the BFS level about to be expanded
//! stats                the resumable ExploreStats counters, including
//!                      the lifetime elapsed wall-clock in microseconds
//!                      (added in format version 2: a resume accumulates
//!                      it, so states_per_sec() stays a lifetime rate)
//!                      and the lifetime fault-plane counters
//!                      (faults_injected / io_retries / degraded_levels,
//!                      added in format version 3)
//! findings             count, then each via StateCodec
//! visited set          per shard: digest count, then the digests
//!                      sorted ascending (shards own contiguous digest
//!                      ranges in shard order, so the whole section is
//!                      digest-range-ordered)
//! exact-seen set       count + sorted digests (symmetry runs only;
//!                      empty otherwise)
//! frontier             count, then records in push order reusing the
//!                      run's SpillCodec arm: Delta chains each record
//!                      against its predecessor (first self-contained);
//!                      Plain and Replay write self-contained records —
//!                      a checkpoint sits at a level boundary, where the
//!                      replay codec's parent generation is already
//!                      consumed, so its literal-record arm is the form
//!                      that survives
//! checksum             u128 fingerprint of all preceding bytes
//! ```
//!
//! # Commit and compatibility rules
//!
//! - **Atomic rename-commit**: the image is written to
//!   `slx-checkpoint.bin.tmp`, fsynced, then renamed over the live file.
//!   A crash mid-write leaves the previous committed checkpoint intact;
//!   there is never a window where the store holds a torn file.
//! - **Versioning**: any change to the byte layout bumps
//!   `FORMAT_VERSION`. Loaders hard-reject other versions — no silent
//!   cross-version reinterpretation.
//! - **Configuration validation**: [`crate::Checker::resume`] compares
//!   every header field (space fingerprint, spill codec, symmetry, shard
//!   count, config/memory budgets) against the resuming run and refuses
//!   any mismatch with a typed
//!   [`crate::EngineError::CheckpointConfigMismatch`] naming the field
//!   and both values (the legacy panicking `run` surfaces render it
//!   verbatim). A mismatched resume can only produce a silently wrong
//!   answer, so it is never attempted.
//! - **Integrity**: magic, version, and the trailing checksum are
//!   verified before anything is decoded; torn, truncated, or
//!   bit-flipped files fail loudly with the file path.
//!
//! A completed run does not delete its store — the last checkpoint
//! remains on disk (resuming it simply finishes quickly). Callers own
//! the directory's lifecycle.

use std::hash::Hasher;
use std::path::{Path, PathBuf};

use crate::codec::{DeltaCodec, DeltaCtx, StateCodec};
use crate::digest::Fingerprinter;
use crate::fault::{self, EngineError, FaultOp, FaultPlane};
use crate::spill::SpillCodec;
use crate::stats::ExploreStats;

/// File-format magic: identifies a checkpoint file before anything is
/// decoded.
const MAGIC: &[u8; 8] = b"SLXCKPT\0";

/// Current checkpoint file-format version. Bumped on **any** byte-layout
/// change; loaders reject every other version. Version 2 added the
/// lifetime `elapsed` microseconds to the stats section, so resumed runs
/// report cumulative wall-clock (and truthful states/sec) instead of
/// restarting the clock. Version 3 added the lifetime fault-plane
/// counters (`faults_injected`/`io_retries`/`degraded_levels`) so a
/// resume keeps reporting the faults absorbed by earlier segments.
const FORMAT_VERSION: u64 = 3;

/// The checkpoint file inside a store directory. The store is a single
/// file: one atomic rename commits the whole image.
const FILE_NAME: &str = "slx-checkpoint.bin";

/// The run configuration a checkpoint was taken under, persisted in the
/// file header and validated — field by field, hard error on mismatch —
/// before a resume touches any state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RunHeader {
    /// Fingerprint of the state space: its Rust type name plus the exact
    /// digests of the run's initial states, in order. Guards against
    /// resuming one exploration's checkpoint under a different space or
    /// different initial states.
    pub(crate) space_fingerprint: u128,
    /// The run's spill codec — also the frontier section's encoding.
    pub(crate) codec: SpillCodec,
    /// Whether symmetry reduction was active.
    pub(crate) symmetry: bool,
    /// Visited-set shard count (the snapshot is laid out per shard).
    pub(crate) shards: usize,
    /// The run's configuration budget ([`crate::Checker::with_budget`]).
    pub(crate) config_budget: Option<usize>,
    /// The run's resolved frontier memory budget.
    pub(crate) mem_budget: Option<usize>,
}

impl RunHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.space_fingerprint.encode(out);
        let tag: u8 = match self.codec {
            SpillCodec::Delta => 0,
            SpillCodec::Plain => 1,
            SpillCodec::Replay => 2,
        };
        tag.encode(out);
        self.symmetry.encode(out);
        self.shards.encode(out);
        self.config_budget.encode(out);
        self.mem_budget.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<RunHeader> {
        Some(RunHeader {
            space_fingerprint: u128::decode(input)?,
            codec: match u8::decode(input)? {
                0 => SpillCodec::Delta,
                1 => SpillCodec::Plain,
                2 => SpillCodec::Replay,
                _ => return None,
            },
            symmetry: bool::decode(input)?,
            shards: usize::decode(input)?,
            config_budget: Option::decode(input)?,
            mem_budget: Option::decode(input)?,
        })
    }

    /// Validates this (stored) header against the resuming run's
    /// configuration. Any mismatch is a typed
    /// [`EngineError::CheckpointConfigMismatch`] naming the field and
    /// both values — resuming under a different configuration can only
    /// produce a silently wrong answer, so it is never attempted. (The
    /// legacy panicking entry points render the error, preserving the
    /// pinned message text.)
    fn validate(&self, current: &RunHeader, path: &Path) -> Result<(), EngineError> {
        fn mismatch(path: &Path, field: &str, stored: String, current: String) -> EngineError {
            EngineError::CheckpointConfigMismatch {
                path: path.to_path_buf(),
                field: field.to_string(),
                stored,
                current,
            }
        }
        if self.space_fingerprint != current.space_fingerprint {
            return Err(mismatch(
                path,
                "the state space (space type + initial-state digests)",
                format!("fingerprint {:#034x}", self.space_fingerprint),
                format!("fingerprint {:#034x}", current.space_fingerprint),
            ));
        }
        if self.codec != current.codec {
            return Err(mismatch(
                path,
                "the spill codec",
                format!("{:?}", self.codec),
                format!("{:?}", current.codec),
            ));
        }
        if self.symmetry != current.symmetry {
            return Err(mismatch(
                path,
                "symmetry reduction",
                format!("{:?}", self.symmetry),
                format!("{:?}", current.symmetry),
            ));
        }
        if self.shards != current.shards {
            return Err(mismatch(
                path,
                "the visited-set shard count",
                self.shards.to_string(),
                current.shards.to_string(),
            ));
        }
        if self.config_budget != current.config_budget {
            return Err(mismatch(
                path,
                "the configuration budget",
                format!("{:?}", self.config_budget),
                format!("{:?}", current.config_budget),
            ));
        }
        if self.mem_budget != current.mem_budget {
            return Err(mismatch(
                path,
                "the frontier memory budget",
                format!("{:?}", self.mem_budget),
                format!("{:?}", current.mem_budget),
            ));
        }
        Ok(())
    }
}

/// A checkpoint image loaded from disk, ready to be re-installed into
/// the level loop.
#[derive(Debug)]
pub(crate) struct LoadedCheckpoint<S, F> {
    /// The BFS level the image was taken at (about to be expanded).
    pub(crate) depth: usize,
    /// The resumable statistics counters (only the persisted fields are
    /// meaningful; backend fields are re-set by the resuming run).
    pub(crate) stats: ExploreStats,
    /// Findings accumulated before the checkpoint.
    pub(crate) findings: Vec<F>,
    /// Per-shard sorted visited digests.
    pub(crate) visited: Vec<Vec<u128>>,
    /// The exact-digest side set of symmetry runs (empty otherwise).
    pub(crate) exact_seen: Vec<u128>,
    /// The frontier about to be expanded, in push order.
    pub(crate) frontier: Vec<S>,
}

/// The on-disk checkpoint store of one exploration: a directory holding
/// a single atomically-committed image (see the module docs for the
/// layout and compatibility rules).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    every: usize,
    plane: FaultPlane,
}

/// Builds the typed error for a structurally damaged file.
/// Configuration *mismatches* get the richer [`RunHeader::validate`]
/// report; this is for files that cannot be decoded at all.
fn corrupt(path: &Path, what: &str) -> EngineError {
    EngineError::CheckpointCorrupt {
        path: path.to_path_buf(),
        what: what.to_string(),
    }
}

impl CheckpointStore {
    pub(crate) fn new(dir: PathBuf, every: usize) -> CheckpointStore {
        // A kill landing mid-commit (after `create` but before the
        // rename) strands the staging sibling; nothing else ever reads
        // it, so opening the store is the place to reclaim it. Best
        // effort: the file usually does not exist, and a commit recreates
        // it from scratch anyway.
        let _ = std::fs::remove_file(dir.join(format!("{FILE_NAME}.tmp")));
        CheckpointStore {
            dir,
            every,
            plane: FaultPlane::disabled(),
        }
    }

    /// Routes this store's commit I/O through a fault-injection plane.
    pub(crate) fn with_fault_plane(mut self, plane: FaultPlane) -> CheckpointStore {
        self.plane = plane;
        self
    }

    /// The level-boundary cadence: a checkpoint is written every this
    /// many BFS levels.
    pub(crate) fn every(&self) -> usize {
        self.every
    }

    /// The checkpoint file inside `dir`.
    #[must_use]
    pub fn file_path(dir: &Path) -> PathBuf {
        dir.join(FILE_NAME)
    }

    /// Whether `dir` holds a committed checkpoint — the "resume or start
    /// fresh?" probe for crash-restart drivers.
    #[must_use]
    pub fn exists(dir: &Path) -> bool {
        CheckpointStore::file_path(dir).is_file()
    }

    /// Commits one checkpoint image with atomic rename semantics — the
    /// synchronous [`CheckpointStore::encode_image`] +
    /// [`CheckpointStore::commit_bytes`] pair. The checker instead
    /// encodes inline and commits on a background thread, overlapping
    /// the fdatasync latency with the next level's exploration.
    ///
    /// # Panics
    ///
    /// Panics (naming the path) if the image cannot be written.
    #[cfg(test)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn write<S: DeltaCodec, F: StateCodec>(
        &self,
        header: &RunHeader,
        depth: usize,
        stats: &ExploreStats,
        findings: &[F],
        visited: &[Vec<u128>],
        exact_seen: &[u128],
        frontier: &[S],
    ) {
        let buf = CheckpointStore::encode_image(
            header, depth, stats, findings, visited, exact_seen, frontier,
        );
        self.commit_bytes(&buf)
            .unwrap_or_else(|err| panic!("{err}"));
    }

    /// Serializes one complete checkpoint image — the pure-CPU half of a
    /// commit (measures as free next to the exploration itself).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn encode_image<S: DeltaCodec, F: StateCodec>(
        header: &RunHeader,
        depth: usize,
        stats: &ExploreStats,
        findings: &[F],
        visited: &[Vec<u128>],
        exact_seen: &[u128],
        frontier: &[S],
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        FORMAT_VERSION.encode(&mut buf);
        header.encode(&mut buf);
        depth.encode(&mut buf);
        encode_stats(stats, &mut buf);
        findings.len().encode(&mut buf);
        for finding in findings {
            finding.encode(&mut buf);
        }
        visited.len().encode(&mut buf);
        for shard in visited {
            shard.len().encode(&mut buf);
            for digest in shard {
                digest.encode(&mut buf);
            }
        }
        exact_seen.len().encode(&mut buf);
        for digest in exact_seen {
            digest.encode(&mut buf);
        }
        frontier.len().encode(&mut buf);
        match header.codec {
            SpillCodec::Delta => {
                let mut prev: Option<&S> = None;
                for state in frontier {
                    state.encode_delta(prev, &mut buf);
                    prev = Some(state);
                }
            }
            // A checkpoint sits at a level boundary: the replay codec's
            // parent generation is consumed, so frontier states persist
            // in its literal (self-contained) record form — which is the
            // plain encoding.
            SpillCodec::Plain | SpillCodec::Replay => {
                for state in frontier {
                    state.encode(&mut buf);
                }
            }
        }
        let mut fp = Fingerprinter::new();
        fp.write(&buf);
        let checksum = fp.digest().0;
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Durably lands an encoded image: staged to a `.tmp` sibling,
    /// fdatasynced, then renamed over the live file, so a crash at any
    /// point leaves either the previous or the new committed image —
    /// never a torn one.
    ///
    /// Transient (EINTR-class) failures — injected or real — are
    /// absorbed by bounded retry; each attempt recreates the staging
    /// file from scratch (`File::create` truncates), so torn bytes from
    /// a failed attempt never survive into the committed image. A
    /// persistent failure removes the staging sibling and surfaces as
    /// [`EngineError::CheckpointIo`]; the previously committed image is
    /// untouched either way.
    pub(crate) fn commit_bytes(&self, buf: &[u8]) -> Result<(), EngineError> {
        let live = CheckpointStore::file_path(&self.dir);
        let tmp = self.dir.join(format!("{FILE_NAME}.tmp"));
        let plane = &self.plane;
        fault::with_io_retries(plane, || {
            let mut file = std::fs::File::create(&tmp)?;
            fault::faulty_write_all(plane, FaultOp::CkptWrite, &mut file, buf)?;
            // fdatasync: the data plus the metadata needed to read it
            // back (the size) must be durable before the rename makes
            // the image the live one; timestamps and the rest of the
            // inode are not part of the commit, and skipping them saves
            // a journal flush per image on ext4.
            if let Some(kind) = plane.inject(FaultOp::CkptSync) {
                return Err(kind.to_io_error());
            }
            file.sync_data()?;
            drop(file);
            if let Some(kind) = plane.inject(FaultOp::CkptRename) {
                return Err(kind.to_io_error());
            }
            std::fs::rename(&tmp, &live)
        })
        .map_err(|err| {
            // Leave no torn staging file behind a failed commit.
            let _ = std::fs::remove_file(&tmp);
            EngineError::CheckpointIo {
                path: live.clone(),
                op: "commit",
                msg: err.to_string(),
            }
        })
    }

    /// Loads and fully validates the committed checkpoint in `dir`,
    /// panicking on any failure — the legacy entry point the panicking
    /// `run` surfaces use. The message is the rendered
    /// [`EngineError`], so the pinned text is identical to what
    /// [`CheckpointStore::try_load`] callers report.
    ///
    /// # Panics
    ///
    /// Panics (naming the path) on a missing or structurally damaged
    /// file — bad magic, unsupported format version, checksum mismatch,
    /// undecodable section — and (naming the field and both values)
    /// when the stored run configuration differs from `expected`.
    #[cfg(test)]
    pub(crate) fn load<S: DeltaCodec + Clone, F: StateCodec>(
        dir: &Path,
        expected: &RunHeader,
    ) -> LoadedCheckpoint<S, F> {
        CheckpointStore::try_load(dir, expected).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Loads and fully validates the committed checkpoint in `dir`.
    ///
    /// The error distinguishes the three distinct operator responses:
    /// [`EngineError::CheckpointCorrupt`] and
    /// [`EngineError::CheckpointVersion`] mean "re-run from scratch"
    /// (the file itself is unusable),
    /// [`EngineError::CheckpointConfigMismatch`] means "wrong
    /// configuration — resume with the original one" (the file is
    /// fine), and [`EngineError::CheckpointIo`] is an environment
    /// problem (missing file, permissions).
    pub(crate) fn try_load<S: DeltaCodec + Clone, F: StateCodec>(
        dir: &Path,
        expected: &RunHeader,
    ) -> Result<LoadedCheckpoint<S, F>, EngineError> {
        let path = CheckpointStore::file_path(dir);
        let bytes = std::fs::read(&path).map_err(|err| EngineError::CheckpointIo {
            path: path.clone(),
            op: "read",
            msg: err.to_string(),
        })?;
        if bytes.len() < MAGIC.len() + 16 {
            return Err(corrupt(
                &path,
                "file is shorter than its magic and checksum",
            ));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 16);
        let stored_checksum = u128::from_le_bytes(trailer.try_into().expect("16-byte trailer"));
        let mut fp = Fingerprinter::new();
        fp.write(body);
        if fp.digest().0 != stored_checksum {
            return Err(corrupt(
                &path,
                "checksum mismatch (torn or bit-flipped file)",
            ));
        }
        if &body[..MAGIC.len()] != MAGIC {
            return Err(corrupt(&path, "bad magic (not a checkpoint file)"));
        }
        let mut input = &body[MAGIC.len()..];
        let Some(version) = u64::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable format version"));
        };
        if version != FORMAT_VERSION {
            return Err(EngineError::CheckpointVersion {
                path: path.clone(),
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let Some(header) = RunHeader::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable run-config header"));
        };
        header.validate(expected, &path)?;
        let Some(depth) = usize::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable depth"));
        };
        let Some(stats) = decode_stats(&mut input) else {
            return Err(corrupt(&path, "unreadable statistics"));
        };
        let Some(finding_count) = usize::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable finding count"));
        };
        let mut findings = Vec::with_capacity(finding_count.min(input.len()));
        for _ in 0..finding_count {
            let Some(finding) = F::decode(&mut input) else {
                return Err(corrupt(&path, "undecodable finding"));
            };
            findings.push(finding);
        }
        let Some(shard_count) = usize::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable shard count"));
        };
        let mut visited = Vec::with_capacity(shard_count.min(input.len()));
        for _ in 0..shard_count {
            let Some(len) = usize::decode(&mut input) else {
                return Err(corrupt(&path, "unreadable visited-shard length"));
            };
            let mut shard = Vec::with_capacity(len.min(input.len()));
            for _ in 0..len {
                let Some(digest) = u128::decode(&mut input) else {
                    return Err(corrupt(&path, "undecodable visited digest"));
                };
                shard.push(digest);
            }
            visited.push(shard);
        }
        let Some(exact_count) = usize::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable exact-seen count"));
        };
        let mut exact_seen = Vec::with_capacity(exact_count.min(input.len()));
        for _ in 0..exact_count {
            let Some(digest) = u128::decode(&mut input) else {
                return Err(corrupt(&path, "undecodable exact-seen digest"));
            };
            exact_seen.push(digest);
        }
        let Some(frontier_count) = usize::decode(&mut input) else {
            return Err(corrupt(&path, "unreadable frontier count"));
        };
        let mut frontier: Vec<S> = Vec::with_capacity(frontier_count.min(input.len()));
        let mut ctx = DeltaCtx::new();
        for _ in 0..frontier_count {
            let state = match header.codec {
                SpillCodec::Delta => S::decode_delta(frontier.last(), &mut input, &mut ctx),
                SpillCodec::Plain | SpillCodec::Replay => S::decode(&mut input),
            };
            let Some(state) = state else {
                return Err(corrupt(&path, "undecodable frontier state"));
            };
            frontier.push(state);
        }
        if !input.is_empty() {
            return Err(corrupt(&path, "trailing bytes after the frontier section"));
        }
        Ok(LoadedCheckpoint {
            depth,
            stats,
            findings,
            visited,
            exact_seen,
            frontier,
        })
    }
}

/// The `ExploreStats` counters a resume restores (backend fields —
/// threads, shards, budgets — are re-set by the resuming run). The
/// persisted `elapsed` is the run's **lifetime** wall-clock at commit
/// time, in microseconds: the resuming segment adds its own time on top,
/// so `configs` and `elapsed` stay a matched lifetime pair and
/// `states_per_sec()` never inflates after a resume.
fn encode_stats(stats: &ExploreStats, out: &mut Vec<u8>) {
    stats.configs.encode(out);
    stats.transitions.encode(out);
    stats.dedup_hits.encode(out);
    stats.orbit_hits.encode(out);
    stats.peak_frontier.encode(out);
    stats.peak_resident_states.encode(out);
    stats.peak_resident_bytes.encode(out);
    stats.spilled_chunks.encode(out);
    stats.spilled_bytes.encode(out);
    stats.replayed_parents.encode(out);
    stats.truncated.encode(out);
    stats.checkpoints_written.encode(out);
    stats.faults_injected.encode(out);
    stats.io_retries.encode(out);
    stats.degraded_levels.encode(out);
    stats.shard_occupancy.encode(out);
    u64::try_from(stats.elapsed.as_micros())
        .unwrap_or(u64::MAX)
        .encode(out);
}

fn decode_stats(input: &mut &[u8]) -> Option<ExploreStats> {
    Some(ExploreStats {
        configs: usize::decode(input)?,
        transitions: usize::decode(input)?,
        dedup_hits: usize::decode(input)?,
        orbit_hits: usize::decode(input)?,
        peak_frontier: usize::decode(input)?,
        peak_resident_states: usize::decode(input)?,
        peak_resident_bytes: usize::decode(input)?,
        spilled_chunks: usize::decode(input)?,
        spilled_bytes: u64::decode(input)?,
        replayed_parents: usize::decode(input)?,
        truncated: bool::decode(input)?,
        checkpoints_written: usize::decode(input)?,
        faults_injected: u64::decode(input)?,
        io_retries: u64::decode(input)?,
        degraded_levels: usize::decode(input)?,
        shard_occupancy: Vec::decode(input)?,
        elapsed: std::time::Duration::from_micros(u64::decode(input)?),
        ..ExploreStats::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir() -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "slx-ckpt-unit-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("test checkpoint dir");
        dir
    }

    fn sample_header(codec: SpillCodec) -> RunHeader {
        RunHeader {
            space_fingerprint: 0xfeed_beef,
            codec,
            symmetry: true,
            shards: 4,
            config_budget: Some(10_000),
            mem_budget: None,
        }
    }

    fn sample_stats() -> ExploreStats {
        ExploreStats {
            configs: 123,
            transitions: 456,
            dedup_hits: 78,
            orbit_hits: 9,
            peak_frontier: 44,
            truncated: true,
            checkpoints_written: 2,
            faults_injected: 5,
            io_retries: 3,
            degraded_levels: 1,
            shard_occupancy: vec![30, 31, 32, 30],
            elapsed: std::time::Duration::from_micros(1_234_567),
            ..ExploreStats::default()
        }
    }

    fn write_sample(store: &CheckpointStore, codec: SpillCodec) {
        store.write::<u64, u64>(
            &sample_header(codec),
            7,
            &sample_stats(),
            &[11, 22],
            &[vec![1, 2], vec![1 << 100], vec![], vec![3 << 125]],
            &[5, 6],
            &[100, 101, 102],
        );
    }

    #[test]
    fn round_trips_through_every_codec_arm() {
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            let dir = test_dir();
            let store = CheckpointStore::new(dir.clone(), 2);
            assert!(!CheckpointStore::exists(&dir));
            write_sample(&store, codec);
            assert!(CheckpointStore::exists(&dir));
            let loaded = CheckpointStore::load::<u64, u64>(&dir, &sample_header(codec));
            assert_eq!(loaded.depth, 7, "{codec:?}");
            assert_eq!(loaded.stats, sample_stats(), "{codec:?}");
            assert_eq!(loaded.findings, vec![11, 22], "{codec:?}");
            assert_eq!(loaded.visited[1], vec![1u128 << 100], "{codec:?}");
            assert_eq!(loaded.exact_seen, vec![5, 6], "{codec:?}");
            assert_eq!(loaded.frontier, vec![100, 101, 102], "{codec:?}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn rewrites_replace_the_committed_image_atomically() {
        let dir = test_dir();
        let store = CheckpointStore::new(dir.clone(), 1);
        write_sample(&store, SpillCodec::Delta);
        store.write::<u64, u64>(
            &sample_header(SpillCodec::Delta),
            9,
            &sample_stats(),
            &[],
            &[vec![], vec![], vec![], vec![]],
            &[],
            &[7],
        );
        let loaded = CheckpointStore::load::<u64, u64>(&dir, &sample_header(SpillCodec::Delta));
        assert_eq!(loaded.depth, 9);
        assert_eq!(loaded.frontier, vec![7]);
        // No stray staging file survives a commit.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec![FILE_NAME.to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_staging_files_are_reclaimed() {
        // A kill mid-commit leaves `slx-checkpoint.bin.tmp` behind; the
        // rename never happened, so nothing would ever unlink it. Opening
        // the store must reclaim it, and a full commit cycle must leave
        // only the live file.
        let dir = test_dir();
        let tmp = dir.join(format!("{FILE_NAME}.tmp"));
        std::fs::write(&tmp, b"torn half-written image").unwrap();
        let store = CheckpointStore::new(dir.clone(), 1);
        assert!(!tmp.exists(), "open must reclaim the stale staging file");
        write_sample(&store, SpillCodec::Delta);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec![FILE_NAME.to_string()]);
        // The commit is unaffected: the image still loads.
        let _ = CheckpointStore::load::<u64, u64>(&dir, &sample_header(SpillCodec::Delta));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn load_panic_message(dir: &Path, expected: &RunHeader) -> String {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CheckpointStore::load::<u64, u64>(dir, expected)
        }))
        .expect_err("load must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a message")
    }

    #[test]
    fn mismatched_configuration_is_rejected_field_by_field() {
        let dir = test_dir();
        let store = CheckpointStore::new(dir.clone(), 1);
        write_sample(&store, SpillCodec::Delta);
        let stored = sample_header(SpillCodec::Delta);
        type Mutation = (fn(&mut RunHeader), &'static str);
        let cases: [Mutation; 6] = [
            (|h| h.space_fingerprint ^= 1, "state space"),
            (|h| h.codec = SpillCodec::Replay, "spill codec"),
            (|h| h.symmetry = false, "symmetry"),
            (|h| h.shards = 8, "shard count"),
            (|h| h.config_budget = None, "configuration budget"),
            (|h| h.mem_budget = Some(512), "memory budget"),
        ];
        for (mutate, field) in cases {
            let mut current = stored.clone();
            mutate(&mut current);
            let message = load_panic_message(&dir, &current);
            assert!(
                message.contains("different configuration") && message.contains(field),
                "field {field}: {message}"
            );
        }
        // The unmutated header still loads.
        let _ = CheckpointStore::load::<u64, u64>(&dir, &stored);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_files_fail_the_checksum_with_the_path_named() {
        let dir = test_dir();
        let store = CheckpointStore::new(dir.clone(), 1);
        write_sample(&store, SpillCodec::Delta);
        let path = CheckpointStore::file_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let message = load_panic_message(&dir, &sample_header(SpillCodec::Delta));
        assert!(message.contains("checksum mismatch"), "{message}");
        assert!(message.contains(&path.display().to_string()), "{message}");
        // Truncation is also caught (by the checksum or the length gate).
        std::fs::write(&path, &bytes[..10]).unwrap();
        let message = load_panic_message(&dir, &sample_header(SpillCodec::Delta));
        assert!(message.contains("corrupt checkpoint"), "{message}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_versions_are_rejected() {
        let dir = test_dir();
        let store = CheckpointStore::new(dir.clone(), 1);
        write_sample(&store, SpillCodec::Delta);
        let path = CheckpointStore::file_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        // Rebuild the file with a bumped version varint (FORMAT_VERSION
        // is small enough to be a single byte) and a recomputed checksum.
        let mut body = bytes[..bytes.len() - 16].to_vec();
        assert_eq!(body[MAGIC.len()], FORMAT_VERSION as u8);
        body[MAGIC.len()] = 0x7f;
        let mut fp = Fingerprinter::new();
        fp.write(&body);
        body.extend_from_slice(&fp.digest().0.to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        let message = load_panic_message(&dir, &sample_header(SpillCodec::Delta));
        assert!(message.contains("format version 127"), "{message}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
