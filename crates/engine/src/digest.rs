//! Fast non-cryptographic fingerprints.
//!
//! The exploration kernel identifies states by 128-bit digests. SipHash
//! (std's `DefaultHasher`) is keyed and DoS-resistant — properties the
//! model checker does not need — and measurably slow on the hot path,
//! where every generated successor is hashed. [`Fingerprinter`] instead
//! runs two independent multiply-rotate lanes (in the style of FxHash)
//! over the input in a single pass and finalizes each lane with a
//! SplitMix64 avalanche, yielding 128 well-mixed bits.

use std::hash::{Hash, Hasher};

/// A 128-bit state fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// Truncates the fingerprint to its low `bits` bits (used by the test
    /// suite to force collisions; real explorations use all 128).
    #[must_use]
    pub fn truncated(self, bits: u32) -> Digest {
        if bits >= 128 {
            self
        } else {
            Digest(self.0 & ((1u128 << bits) - 1))
        }
    }
}

/// FxHash's 64-bit multiplier (derived from the golden ratio).
const LANE_A_MUL: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// An independent odd multiplier for the second lane (SplitMix64's
/// increment constant, forced odd).
const LANE_B_MUL: u64 = 0x9e_37_79_b9_7f_4a_7c_15 | 1;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf_58_47_6d_1c_e4_e5_b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94_d0_49_bb_13_31_11_eb);
    x ^ (x >> 31)
}

/// Two-lane single-pass hasher producing a 128-bit [`Digest`].
///
/// Implements [`std::hash::Hasher`], so any `#[derive(Hash)]` type can be
/// fingerprinted: `finish()` yields the finalized first lane (a plain fast
/// 64-bit hash), [`Fingerprinter::digest`] both lanes.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    lane_a: u64,
    lane_b: u64,
}

impl Fingerprinter {
    /// A fresh fingerprinter with fixed (unkeyed, reproducible) seeds.
    #[must_use]
    pub fn new() -> Self {
        Fingerprinter {
            lane_a: 0x6a_09_e6_67_f3_bc_c9_08, // frac(sqrt(2))
            lane_b: 0xbb_67_ae_85_84_ca_a7_3b, // frac(sqrt(3))
        }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.lane_a = (self.lane_a.rotate_left(5) ^ word).wrapping_mul(LANE_A_MUL);
        self.lane_b = (self.lane_b.rotate_left(7) ^ word).wrapping_mul(LANE_B_MUL);
    }

    /// Finalizes both lanes into the 128-bit digest.
    #[must_use]
    pub fn digest(&self) -> Digest {
        let hi = avalanche(self.lane_a);
        let lo = avalanche(self.lane_b.rotate_left(32) ^ self.lane_a);
        Digest(((hi as u128) << 64) | lo as u128)
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

impl Hasher for Fingerprinter {
    #[inline]
    fn finish(&self) -> u64 {
        avalanche(self.lane_a)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.mix(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i) | 1 << 8);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i) | 1 << 16);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i) | 1 << 32);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// 128-bit fingerprint of any hashable value.
#[must_use]
pub fn digest128_of<T: Hash + ?Sized>(value: &T) -> Digest {
    let mut fp = Fingerprinter::new();
    value.hash(&mut fp);
    fp.digest()
}

/// Fast 64-bit digest of any hashable value.
///
/// This is the shared replacement for the `DefaultHasher` digest closures
/// that used to be duplicated in `slx-explorer`, `slx-core::grid`, and the
/// benchmark harness.
#[must_use]
pub fn digest64_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut fp = Fingerprinter::new();
    value.hash(&mut fp);
    fp.finish()
}

/// Fast 64-bit digest of a sequence of hashable items (order-sensitive).
#[must_use]
pub fn digest64_of_iter<I>(items: I) -> u64
where
    I: IntoIterator,
    I::Item: Hash,
{
    let mut fp = Fingerprinter::new();
    for (i, item) in items.into_iter().enumerate() {
        fp.write_usize(i);
        item.hash(&mut fp);
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic() {
        assert_eq!(digest128_of(&42u64), digest128_of(&42u64));
        assert_eq!(digest64_of("abc"), digest64_of("abc"));
    }

    #[test]
    fn digests_separate_close_inputs() {
        assert_ne!(digest128_of(&0u64), digest128_of(&1u64));
        assert_ne!(digest128_of(&[0u8, 1]), digest128_of(&[1u8, 0]));
        assert_ne!(digest64_of_iter([1u8, 2]), digest64_of_iter([2u8, 1]));
        // Length folding distinguishes concatenation splits.
        assert_ne!(digest128_of("ab"), digest128_of("a"));
    }

    #[test]
    fn lanes_are_independent() {
        // The two 64-bit halves of the digest should not be correlated;
        // spot-check that equal top halves don't force equal bottom halves
        // over a small scan.
        let mut seen_hi = std::collections::HashSet::new();
        let mut seen_lo = std::collections::HashSet::new();
        for i in 0u64..1000 {
            let d = digest128_of(&i);
            seen_hi.insert((d.0 >> 64) as u64);
            seen_lo.insert(d.0 as u64);
        }
        assert_eq!(seen_hi.len(), 1000);
        assert_eq!(seen_lo.len(), 1000);
    }

    #[test]
    fn truncation_masks_low_bits() {
        let d = Digest(u128::MAX);
        assert_eq!(d.truncated(8).0, 0xff);
        assert_eq!(d.truncated(128), d);
    }
}
