//! The [`StateSpace`] abstraction checkers implement.

use crate::digest::Digest;

/// A transition system the [`crate::Checker`] can explore.
///
/// Implementors supply three things: a state type, a fingerprint
/// ([`StateSpace::digest`] — the kernel deduplicates on digests only and
/// never retains states), and successor enumeration
/// ([`StateSpace::expand`]).
///
/// `expand` receives the state's depth (shortest known distance from an
/// initial state, in expansion steps) and is responsible for enforcing its
/// own horizon: a space with a depth bound simply pushes no successors at
/// the bound, marking the expansion truncated if the state was not
/// terminal. Keeping the bound inside the space lets the same kernel drive
/// bounded safety exploration, budgeted valence queries, and unbounded
/// reachability alike.
pub trait StateSpace {
    /// A state of the transition system. `Send + Sync` because the
    /// parallel BFS backend hands frontier slices to worker threads.
    type State: Clone + Send + Sync;
    /// What an expansion can report to the caller: a safety violation, a
    /// decidable value, a starvation witness…
    type Finding: Send;

    /// The state's 128-bit fingerprint. Must capture everything future
    /// behaviour (and findings) can depend on: states with equal digests
    /// are explored once.
    fn digest(&self, state: &Self::State) -> Digest;

    /// Enumerates `state`'s successors and findings into `ctx`.
    fn expand(&self, state: &Self::State, depth: usize, ctx: &mut Expansion<Self>);
}

/// Sink for one state's expansion: successors, findings, and truncation.
///
/// Successor digests are computed eagerly at push time so the expensive
/// hashing happens inside the (possibly parallel) expansion phase rather
/// than the sequential merge phase.
pub struct Expansion<'sp, Sp: StateSpace + ?Sized> {
    space: &'sp Sp,
    pub(crate) succs: Vec<(Sp::State, Digest)>,
    pub(crate) findings: Vec<Sp::Finding>,
    pub(crate) truncated: bool,
}

impl<'sp, Sp: StateSpace + ?Sized> Expansion<'sp, Sp> {
    pub(crate) fn new(space: &'sp Sp) -> Self {
        Expansion {
            space,
            succs: Vec::new(),
            findings: Vec::new(),
            truncated: false,
        }
    }

    pub(crate) fn reset(&mut self) {
        self.succs.clear();
        self.findings.clear();
        self.truncated = false;
    }

    /// Emits a successor state.
    pub fn push(&mut self, succ: Sp::State) {
        let digest = self.space.digest(&succ);
        self.succs.push((succ, digest));
    }

    /// Reports a finding (violation, witness, value, …).
    pub fn finding(&mut self, finding: Sp::Finding) {
        self.findings.push(finding);
    }

    /// Records that this expansion was cut short (horizon reached with the
    /// state not terminal): the exploration is no longer exhaustive.
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }
}
