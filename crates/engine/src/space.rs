//! The [`StateSpace`] abstraction checkers implement.

use crate::digest::Digest;

/// A transition system the [`crate::Checker`] can explore.
///
/// Implementors supply three things: a state type, a fingerprint
/// ([`StateSpace::digest`] — the kernel deduplicates on digests only and
/// never retains states), and successor enumeration
/// ([`StateSpace::expand`]).
///
/// `expand` receives the state's depth (shortest known distance from an
/// initial state, in expansion steps) and is responsible for enforcing its
/// own horizon: a space with a depth bound simply pushes no successors at
/// the bound, marking the expansion truncated if the state was not
/// terminal. Keeping the bound inside the space lets the same kernel drive
/// bounded safety exploration, budgeted valence queries, and unbounded
/// reachability alike.
///
/// `expand` must be a **pure function** of `(state, depth)`: the kernel's
/// determinism guarantees (and, since the replay spill codec, its
/// recompute-from-parent machinery — see [`crate::SpillCodec::Replay`])
/// rely on a re-expansion producing the same successors in the same push
/// order.
pub trait StateSpace {
    /// A state of the transition system. `Send + Sync` because the
    /// parallel BFS backend hands frontier slices to worker threads.
    type State: Clone + Send + Sync;
    /// What an expansion can report to the caller: a safety violation, a
    /// decidable value, a starvation witness…
    type Finding: Send;

    /// The state's 128-bit fingerprint. Must capture everything future
    /// behaviour (and findings) can depend on: states with equal digests
    /// are explored once.
    fn digest(&self, state: &Self::State) -> Digest;

    /// Enumerates `state`'s successors and findings into `ctx`.
    fn expand(&self, state: &Self::State, depth: usize, ctx: &mut Expansion<Self>);

    /// Rebuilds the successor that [`StateSpace::expand`]`(state, depth)`
    /// would emit at push position `index` (the expansion's push order
    /// defines the action index), or `None` when the expansion pushes
    /// fewer than `index + 1` successors.
    ///
    /// This is the indexed-successor capability behind the replay spill
    /// codec ([`crate::SpillCodec::Replay`]): spilled successors are
    /// stored as *(parent, action indices)* and regenerated here instead
    /// of round-tripping through a byte decode. The default falls back to
    /// a full (digest-free) expansion and picks the `index`-th push;
    /// spaces whose successors can be built individually override this
    /// **and** [`StateSpace::has_successor_fast_path`] together, and must
    /// keep the override in lock-step with `expand`'s push order (the
    /// replay differential suites pin exactly that agreement).
    fn successor_at(&self, state: &Self::State, depth: usize, index: usize) -> Option<Self::State> {
        let mut exp = Expansion::new_undigested(self);
        self.expand(state, depth, &mut exp);
        exp.succs.into_iter().nth(index).map(|(succ, _)| succ)
    }

    /// Whether [`StateSpace::successor_at`] is a real fast path (builds
    /// only the requested child) rather than the full-expansion fallback.
    ///
    /// The replay codec regenerates a **single-child** record through
    /// `successor_at` when this returns `true`; multi-child records —
    /// and every record when this returns `false` — regenerate through
    /// one shared digest-free expansion of the parent, because even a
    /// real indexed fast path must re-walk the pushes preceding each
    /// requested index, which the shared expansion does once. Either
    /// way a parent is never expanded more than once per replayed
    /// record.
    fn has_successor_fast_path(&self) -> bool {
        false
    }

    /// Whether [`StateSpace::canonical_digest`] is a real orbit-collapsing
    /// canonicalizer rather than the [`StateSpace::digest`] fallback.
    ///
    /// Symmetry reduction ([`crate::Checker::with_symmetry`] /
    /// `SLX_ENGINE_SYMMETRY`) only activates when the space advertises
    /// this capability: a checker asked for symmetry on a space without
    /// one runs the unreduced kernel unchanged (and its stats assert so).
    fn has_symmetry_reduction(&self) -> bool {
        false
    }

    /// The state's fingerprint **canonicalized over its symmetry orbit**:
    /// states reachable from one another by a symmetry of the space (a
    /// process permutation, a uniform counter shift, …) must digest
    /// equally, and states the symmetry group does not identify must keep
    /// distinct digests with the same 128-bit-collision confidence as
    /// [`StateSpace::digest`].
    ///
    /// Soundness contract: every [`StateSpace::Finding`] must be
    /// preserved by the symmetries the canonicalizer quotients by —
    /// exploring one orbit representative must surface a finding iff
    /// exploring any orbit member would. The default is the exact digest
    /// (no reduction); spaces that override it must also override
    /// [`StateSpace::has_symmetry_reduction`].
    fn canonical_digest(&self, state: &Self::State) -> Digest {
        self.digest(state)
    }

    /// A member of `state`'s orbit chosen canonically (the same member
    /// for every state of the orbit), for callers that need a
    /// representative *state* rather than a digest — e.g. cross-run
    /// cycle keys. The default returns the state unchanged, which is
    /// correct for the identity symmetry group.
    ///
    /// Note this is **not** required to satisfy
    /// `canonical_digest(s) == digest(orbit_representative(s))`: a space
    /// may canonicalize digests over a projection (erasing fields its
    /// digest mixes in) that no concrete representative state realizes.
    fn orbit_representative(&self, state: &Self::State) -> Self::State {
        state.clone()
    }
}

/// Sink for one state's expansion: successors, findings, and truncation.
///
/// Successor digests are computed eagerly at push time so the expensive
/// hashing happens inside the (possibly parallel) expansion phase rather
/// than the sequential merge phase.
pub struct Expansion<'sp, Sp: StateSpace + ?Sized> {
    space: &'sp Sp,
    pub(crate) succs: Vec<(Sp::State, Digest)>,
    pub(crate) findings: Vec<Sp::Finding>,
    pub(crate) truncated: bool,
    /// Whether pushes compute real digests. Replay regeneration turns
    /// this off: regenerated successors go straight back into a frontier
    /// (their digests were consumed by the visited set when the parent
    /// was first expanded), so hashing them again would be pure waste on
    /// the spill hot path.
    digests: bool,
    /// Whether pushes compute [`StateSpace::canonical_digest`] instead of
    /// the exact digest. Set by the checker when symmetry reduction is
    /// active, so orbit collapse happens at push time — inside the
    /// (possibly parallel) expansion phase — like ordinary digesting.
    canonical: bool,
}

impl<'sp, Sp: StateSpace + ?Sized> Expansion<'sp, Sp> {
    pub(crate) fn new(space: &'sp Sp) -> Self {
        Expansion {
            space,
            succs: Vec::new(),
            findings: Vec::new(),
            truncated: false,
            digests: true,
            canonical: false,
        }
    }

    /// An expansion whose pushes digest canonically (symmetry reduction
    /// active) or exactly, per `canonical`.
    pub(crate) fn new_maybe_canonical(space: &'sp Sp, canonical: bool) -> Self {
        Expansion {
            canonical,
            ..Expansion::new(space)
        }
    }

    /// An expansion whose pushes skip digest computation (the successor
    /// slots carry a zero digest). Used by replay regeneration, where
    /// only the successor states are consumed.
    pub(crate) fn new_undigested(space: &'sp Sp) -> Self {
        Expansion {
            digests: false,
            ..Expansion::new(space)
        }
    }

    pub(crate) fn reset(&mut self) {
        self.succs.clear();
        self.findings.clear();
        self.truncated = false;
    }

    /// Pre-allocates room for at least `additional` more successors.
    ///
    /// `expand` implementations that know their branching factor up front
    /// (typically the number of schedulable processes) call this before
    /// their push loop, so the successor vector — which starts empty on
    /// every expansion — is sized in one allocation instead of growing
    /// through the doubling ladder on the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.succs.reserve(additional);
    }

    /// Emits a successor state.
    pub fn push(&mut self, succ: Sp::State) {
        let digest = if !self.digests {
            Digest(0)
        } else if self.canonical {
            self.space.canonical_digest(&succ)
        } else {
            self.space.digest(&succ)
        };
        self.succs.push((succ, digest));
    }

    /// Reports a finding (violation, witness, value, …).
    pub fn finding(&mut self, finding: Sp::Finding) {
        self.findings.push(finding);
    }

    /// Records that this expansion was cut short (horizon reached with the
    /// state not terminal): the exploration is no longer exhaustive.
    pub fn mark_truncated(&mut self) {
        self.truncated = true;
    }
}
