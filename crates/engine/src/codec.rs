//! Binary state encoding for the disk-backed frontier.
//!
//! The BFS frontier is the only kernel structure that retains full
//! configurations between levels; spilling cold frontier chunks to disk
//! (see `crate::spill`) requires states to round-trip through a byte
//! encoding. [`StateCodec`] is that encoding: a self-delimiting binary
//! format implemented per state type, compositional through the blanket
//! implementations for primitives, tuples, `Vec`, and `Option` below.
//!
//! The contract every implementation must uphold (pinned by the
//! `codec_props` harness on SplitMix64-generated states):
//!
//! 1. **Round trip**: `decode(encode(s)) == s`, with every observable
//!    field preserved (a lossy codec would silently change verdicts once
//!    a frontier spills).
//! 2. **Self-delimiting**: `decode` consumes exactly the bytes `encode`
//!    produced, even when followed by further records — spill chunks
//!    concatenate records with no framing.
//! 3. **Totality of decode**: malformed or truncated input yields `None`,
//!    never a panic — a damaged spill file fails loudly at the call site,
//!    not undefined-ly here.
//!
//! Multi-byte unsigned integers use LEB128 varints (`i64` adds a zigzag
//! transform), since nearly every integer a configuration holds — object
//! ids, rounds, process indices, small values — fits one byte; fixed
//! 8-byte encodings were measured to double spill volume *and* spill-arm
//! runtime on the consensus workload. `u8` stays a raw byte and `u128`
//! two fixed 64-bit words (digests are uniformly random, where varints
//! expand). `usize` encodes as `u64`, so spill files do not depend on the
//! platform word size.

/// A state that can be serialized into (and restored from) a
/// self-delimiting binary encoding, enabling the [`crate::Checker`] to
/// spill cold frontier chunks to disk under a memory budget.
pub trait StateCodec: Sized {
    /// Appends the binary encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing the slice
    /// past exactly the bytes [`StateCodec::encode`] wrote. Returns `None`
    /// on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Splits `count` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], count: usize) -> Option<&'a [u8]> {
    if input.len() < count {
        return None;
    }
    let (head, rest) = input.split_at(count);
    *input = rest;
    Some(head)
}

/// LEB128: seven value bits per byte, high bit = continuation. The
/// single-byte case — almost every integer a configuration holds — is
/// kept branch-light: the codec sits on the spill hot path, where every
/// beyond-budget state round-trips through it.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn take_varint(input: &mut &[u8]) -> Option<u64> {
    let (&first, rest) = input.split_first()?;
    if first < 0x80 {
        *input = rest;
        return Some(u64::from(first));
    }
    *input = rest;
    let mut v = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let (&byte, rest) = input.split_first()?;
        *input = rest;
        // The tenth byte may only carry the final value bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

impl StateCodec for u8 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let (&byte, rest) = input.split_first()?;
        *input = rest;
        Some(byte)
    }
}

macro_rules! varint_codec {
    ($($ty:ty),*) => {$(
        impl StateCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                put_varint(out, u64::from(*self));
            }

            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                <$ty>::try_from(take_varint(input)?).ok()
            }
        }
    )*};
}

varint_codec!(u16, u32, u64);

impl StateCodec for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Digests fill all 128 bits uniformly; varints would expand them.
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bytes = take(input, 16)?;
        Some(u128::from_le_bytes(bytes.try_into().expect("sized")))
    }
}

impl StateCodec for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Zigzag so small negative values stay one byte.
        put_varint(out, ((*self << 1) ^ (*self >> 63)) as u64);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let z = take_varint(input)?;
        Some(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl StateCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(take_varint(input)?).ok()
    }
}

impl StateCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl StateCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: StateCodec, B: StateCodec> StateCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: StateCodec, B: StateCodec, C: StateCodec> StateCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<T: StateCodec> StateCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.len()).expect("frontier states are far below 2^32 elements");
        len.encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        // Reserve, but capped by the bytes actually available (every item
        // consumes at least one): a corrupt length prefix must fail on
        // input exhaustion, not allocate unboundedly.
        let mut items = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

impl<T: StateCodec> StateCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: StateCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(T::decode(&mut input), Some(value));
        assert!(input.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX - 7);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn composites_round_trip() {
        round_trip((3u32, 4u32));
        round_trip((1u8, 2u64, 3i64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(9u8));
        round_trip(Option::<u8>::None);
        round_trip(vec![(Some(1u32), vec![2u8, 3]), (None, vec![])]);
    }

    #[test]
    fn decode_is_self_delimiting_within_a_stream() {
        let mut buf = Vec::new();
        (7u32, 8u64).encode(&mut buf);
        vec![true, false].encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(<(u32, u64)>::decode(&mut input), Some((7, 8)));
        assert_eq!(Vec::<bool>::decode(&mut input), Some(vec![true, false]));
        assert!(input.is_empty());
    }

    #[test]
    fn truncated_input_yields_none() {
        let mut buf = Vec::new();
        0xdead_beef_dead_beefu64.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(u64::decode(&mut input), None, "cut {cut}");
        }
        // A length prefix promising more than the input holds must fail.
        let mut buf = Vec::new();
        1000u32.encode(&mut buf);
        buf.push(1);
        let mut input = buf.as_slice();
        assert_eq!(Vec::<u8>::decode(&mut input), None);
    }

    #[test]
    fn bad_tags_yield_none() {
        let mut input: &[u8] = &[2];
        assert_eq!(bool::decode(&mut input), None);
        let mut input: &[u8] = &[7];
        assert_eq!(Option::<u8>::decode(&mut input), None);
    }
}
