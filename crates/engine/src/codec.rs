//! Binary state encoding for the disk-backed frontier.
//!
//! The BFS frontier is the only kernel structure that retains full
//! configurations between levels; spilling cold frontier chunks to disk
//! (see `crate::spill`) requires states to round-trip through a byte
//! encoding. [`StateCodec`] is that encoding: a self-delimiting binary
//! format implemented per state type, compositional through the blanket
//! implementations for primitives, tuples, `Vec`, and `Option` below.
//!
//! The contract every implementation must uphold (pinned by the
//! `codec_props` harness on SplitMix64-generated states):
//!
//! 1. **Round trip**: `decode(encode(s)) == s`, with every observable
//!    field preserved (a lossy codec would silently change verdicts once
//!    a frontier spills).
//! 2. **Self-delimiting**: `decode` consumes exactly the bytes `encode`
//!    produced, even when followed by further records — spill chunks
//!    concatenate records with no framing.
//! 3. **Totality of decode**: malformed or truncated input yields `None`,
//!    never a panic — a damaged spill file fails loudly at the call site,
//!    not undefined-ly here.
//!
//! Multi-byte unsigned integers use LEB128 varints (`i64` adds a zigzag
//! transform), since nearly every integer a configuration holds — object
//! ids, rounds, process indices, small values — fits one byte; fixed
//! 8-byte encodings were measured to double spill volume *and* spill-arm
//! runtime on the consensus workload. `u8` stays a raw byte and `u128`
//! two fixed 64-bit words (digests are uniformly random, where varints
//! expand). `usize` encodes as `u64`, so spill files do not depend on the
//! platform word size.
//!
//! # Persistence and compatibility
//!
//! Spill files are strictly run-private (created, replayed, and unlinked
//! within one exploration), so the wire format above can change freely
//! between builds. Two consumers pin it across *process* boundaries:
//!
//! - **Checkpoint images**: `crate::checkpoint` persists frontiers and
//!   findings in this encoding across process lifetimes, so any change
//!   to an existing encoding here — or to a state type's hand-written
//!   `StateCodec`/[`DeltaCodec`] impl — is a checkpoint file-format
//!   break and must bump `checkpoint::FORMAT_VERSION` (old images are
//!   then *refused* with a version error rather than misread; there is
//!   no migration path — resumability is a crash-tolerance feature, not
//!   an archival one). Purely additive changes (a codec impl for a new
//!   type) need no bump.
//! - **Network frames**: the check service (`slx-server`) frames its
//!   request/progress/verdict messages as length-prefixed records whose
//!   bodies are encoded with these same impls, negotiated by a versioned
//!   stream hello. The same discipline applies at one remove: a change
//!   to an encoding used in a frame body is a protocol break and must
//!   bump the server's `PROTOCOL_VERSION`, so an old client is refused
//!   at the handshake instead of misreading frames. Decode totality
//!   (rule 3) is what lets both consumers treat truncated or hostile
//!   bytes as errors, never panics.
//!
//! This discipline is machine-enforced: `slx-analyze` (a required CI
//! gate) fingerprints every `StateCodec`/`DeltaCodec` impl and persisted
//! struct layout into the checked-in `WIRE_MANIFEST.txt` and fails on
//! any drift that is not paired with the matching version bump plus an
//! explicit `cargo run -p slx-analyze -- --bless` regeneration. See
//! EXPERIMENTS.md, "Wire-schema manifest", for the audit workflow.

use crate::detmap::DetHashMap;
use std::any::{Any, TypeId};

/// A state that can be serialized into (and restored from) a
/// self-delimiting binary encoding, enabling the [`crate::Checker`] to
/// spill cold frontier chunks to disk under a memory budget.
pub trait StateCodec: Sized {
    /// Appends the binary encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing the slice
    /// past exactly the bytes [`StateCodec::encode`] wrote. Returns `None`
    /// on malformed or truncated input.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Splits `count` bytes off the front of `input`.
fn take<'a>(input: &mut &'a [u8], count: usize) -> Option<&'a [u8]> {
    if input.len() < count {
        return None;
    }
    let (head, rest) = input.split_at(count);
    *input = rest;
    Some(head)
}

/// LEB128: seven value bits per byte, high bit = continuation. The
/// single-byte case — almost every integer a configuration holds — is
/// kept branch-light: the codec sits on the spill hot path, where every
/// beyond-budget state round-trips through it.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn take_varint(input: &mut &[u8]) -> Option<u64> {
    let (&first, rest) = input.split_first()?;
    if first < 0x80 {
        *input = rest;
        return Some(u64::from(first));
    }
    *input = rest;
    let mut v = u64::from(first & 0x7f);
    let mut shift = 7u32;
    loop {
        let (&byte, rest) = input.split_first()?;
        *input = rest;
        // The tenth byte may only carry the final value bit.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            // Reject overlong (non-minimal) forms: a final zero byte in a
            // multi-byte encoding contributes nothing, so e.g. `0x80 0x00`
            // would alias the valid one-byte `0x00`. `put_varint` never
            // emits such forms; accepting them would let a damaged spill
            // file silently decode as a different valid record.
            if byte == 0 {
                return None;
            }
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

impl StateCodec for u8 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let (&byte, rest) = input.split_first()?;
        *input = rest;
        Some(byte)
    }
}

macro_rules! varint_codec {
    ($($ty:ty),*) => {$(
        impl StateCodec for $ty {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                put_varint(out, u64::from(*self));
            }

            #[inline]
            fn decode(input: &mut &[u8]) -> Option<Self> {
                <$ty>::try_from(take_varint(input)?).ok()
            }
        }
    )*};
}

varint_codec!(u16, u32, u64);

impl StateCodec for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Digests fill all 128 bits uniformly; varints would expand them.
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let bytes = take(input, 16)?;
        Some(u128::from_le_bytes(bytes.try_into().expect("sized")))
    }
}

impl StateCodec for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        // Zigzag so small negative values stay one byte.
        put_varint(out, ((*self << 1) ^ (*self >> 63)) as u64);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let z = take_varint(input)?;
        Some(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

impl StateCodec for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(take_varint(input)?).ok()
    }
}

impl StateCodec for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl StateCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: StateCodec, B: StateCodec> StateCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: StateCodec, B: StateCodec, C: StateCodec> StateCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<T: StateCodec> StateCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.len()).expect("frontier states are far below 2^32 elements");
        len.encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        // Reserve, but capped by the bytes actually available (every item
        // consumes at least one): a corrupt length prefix must fail on
        // input exhaustion, not allocate unboundedly.
        let mut items = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Some(items)
    }
}

impl StateCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.len()).expect("strings are far below 2^32 bytes");
        len.encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        // Totality: invalid UTF-8 is malformed input, not a panic.
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: StateCodec> StateCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

/// Per-replay decode context: an intern table rebuilding shared immutable
/// sub-structures.
///
/// The in-memory kernel shares big immutable pieces of sibling states —
/// the consensus `Layout`'s `Arc<[ObjId]>` register slice above all — by
/// reference-count bumps. A plain per-record decode re-materializes each
/// of them from scratch, which is most of the spill arm's overhead.
/// Within one chunk the delta chain restores sharing for free (an
/// "unchanged" field decodes as a clone of the predecessor's), but the
/// first record of every chunk is self-contained; the intern table closes
/// that last gap. Keyed by the encoded bytes of the sub-structure (plus
/// its type), it hands every later self-contained decode in the same
/// replay the first decode's allocation.
///
/// One `DeltaCtx` lives for one chunk replay (see
/// `crate::spill::FrontierChunks`), so nothing interned outlives the
/// frontier it came from.
#[derive(Debug, Default)]
pub struct DeltaCtx {
    interned: DetHashMap<TypeId, InternedByKey>,
}

/// One type's interned values, keyed by their encoded bytes.
type InternedByKey = DetHashMap<Box<[u8]>, Box<dyn Any>>;

impl DeltaCtx {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        DeltaCtx::default()
    }

    /// Returns the canonical copy of `fresh` for `key` (its encoded
    /// bytes), registering `fresh` as the canonical copy on first sight.
    /// Intern only cheaply clonable shared handles (`Arc`/`Rc` values):
    /// the hit path clones the stored canonical value.
    pub fn intern<T: Clone + 'static>(&mut self, key: &[u8], fresh: T) -> T {
        let by_type = self.interned.entry(TypeId::of::<T>()).or_default();
        if let Some(hit) = by_type.get(key).and_then(|b| b.downcast_ref::<T>()) {
            return hit.clone();
        }
        by_type.insert(key.into(), Box::new(fresh.clone()));
        fresh
    }

    /// Interned entries (for tests and diagnostics).
    #[must_use]
    pub fn interned_count(&self) -> usize {
        self.interned.values().map(DetHashMap::len).sum()
    }
}

/// Context encoding for spill chunks: each record delta-encoded against
/// its chunk predecessor.
///
/// The disk-backed frontier (`crate::spill`) writes records in push order,
/// and consecutive records of a BFS level are siblings: they share their
/// layouts, most of their memory words, long history prefixes. A
/// [`DeltaCodec`] exploits exactly that — [`DeltaCodec::encode_delta`]
/// receives the previously pushed record and may collapse unchanged
/// fields to a few skip/copy varints, and [`DeltaCodec::decode_delta`]
/// rebuilds them as clones of the predecessor's fields (restoring the
/// `Arc` sharing the in-memory kernel enjoys) with a [`DeltaCtx`] intern
/// table for sharing across self-contained records.
///
/// `prev = None` means the record must be **self-contained** (the spill
/// path passes `None` for the first record of every chunk, which is what
/// keeps chunk boundaries independently decodable and replay
/// deterministic).
///
/// The contract, pinned by `codec_props` alongside the [`StateCodec`]
/// laws, for every `prev` in `{None, Some(p)}`:
///
/// 1. **Round trip**: `decode_delta(prev, encode_delta(self, prev)) ==
///    self`, against the *same* predecessor on both sides.
/// 2. **Self-delimiting**: `decode_delta` consumes exactly the bytes
///    `encode_delta` produced.
/// 3. **Determinism**: `encode_delta` is a pure function of `(self,
///    prev)` — chunk boundaries are byte-measured, so spill determinism
///    rides on it.
/// 4. **Totality of decode**: malformed or truncated input yields `None`.
///
/// Every method has a self-contained default (delegating to
/// [`StateCodec`]), so `impl DeltaCodec for X {}` opts a type in with
/// plain behaviour; types with shareable structure override both hooks
/// together.
pub trait DeltaCodec: StateCodec {
    /// Appends the encoding of `self` against the chunk predecessor
    /// `prev` (`None` ⇒ the record must be self-contained).
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let _ = prev;
        self.encode(out);
    }

    /// Decodes one value encoded by [`DeltaCodec::encode_delta`] against
    /// the same `prev`, advancing `input` past exactly the bytes written.
    /// Returns `None` on malformed or truncated input — including a delta
    /// record presented without its predecessor.
    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let _ = (prev, ctx);
        Self::decode(input)
    }
}

macro_rules! plain_delta_codec {
    ($($ty:ty),*) => {$(
        impl DeltaCodec for $ty {}
    )*};
}

// Primitives are at most a few bytes; a delta marker would cost as much
// as the value. Strings in this workspace are short identifiers (wire
// request ids, scenario names), not shareable structure.
plain_delta_codec!(u8, u16, u32, u64, u128, i64, usize, bool, (), String);

impl<A: DeltaCodec, B: DeltaCodec> DeltaCodec for (A, B) {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        self.0.encode_delta(prev.map(|p| &p.0), out);
        self.1.encode_delta(prev.map(|p| &p.1), out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        Some((
            A::decode_delta(prev.map(|p| &p.0), input, ctx)?,
            B::decode_delta(prev.map(|p| &p.1), input, ctx)?,
        ))
    }
}

impl<A: DeltaCodec, B: DeltaCodec, C: DeltaCodec> DeltaCodec for (A, B, C) {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        self.0.encode_delta(prev.map(|p| &p.0), out);
        self.1.encode_delta(prev.map(|p| &p.1), out);
        self.2.encode_delta(prev.map(|p| &p.2), out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        Some((
            A::decode_delta(prev.map(|p| &p.0), input, ctx)?,
            B::decode_delta(prev.map(|p| &p.1), input, ctx)?,
            C::decode_delta(prev.map(|p| &p.2), input, ctx)?,
        ))
    }
}

impl<T: DeltaCodec> DeltaCodec for Option<T> {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode_delta(prev.and_then(Option::as_ref), out);
            }
        }
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode_delta(
                prev.and_then(Option::as_ref),
                input,
                ctx,
            )?)),
            _ => None,
        }
    }
}

impl<T: DeltaCodec + PartialEq + Clone> DeltaCodec for Vec<T> {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        match prev {
            None => self.encode(out),
            Some(prev) => encode_slice_delta(self, prev, out),
        }
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        match prev {
            None => Self::decode(input),
            Some(prev) => decode_slice_delta(prev, input, ctx),
        }
    }
}

/// Delta-encodes `items` against the predecessor record's `prev` slice:
/// length, then the sparse run of changed entries below the common length
/// — each emitted as a strictly positive index gap followed by the
/// element delta-encoded against its counterpart, terminated by a zero
/// gap — then any tail beyond `prev` self-contained. Unchanged elements
/// cost nothing on the wire and decode as clones of `prev`'s, and the
/// gap-sentinel framing needs only **one** compare pass (this helper sits
/// on the spill push path, where every pushed state walks it) — this is
/// the skip/copy core every slice-shaped layer codec (`Vec`, histories,
/// event logs, memory object pools) delegates to. Decode with
/// [`decode_slice_delta`].
pub fn encode_slice_delta<T: DeltaCodec + PartialEq>(items: &[T], prev: &[T], out: &mut Vec<u8>) {
    let len = u32::try_from(items.len()).expect("frontier states are far below 2^32 elements");
    len.encode(out);
    let common = items.len().min(prev.len());
    let mut last = 0usize; // one past the previous changed index
    for (i, (item, old)) in items[..common].iter().zip(&prev[..common]).enumerate() {
        if item != old {
            (i - last + 1).encode(out);
            item.encode_delta(Some(old), out);
            last = i + 1;
        }
    }
    0usize.encode(out);
    for item in &items[common..] {
        item.encode_delta(None, out);
    }
}

/// Decoding counterpart of [`encode_slice_delta`]; rejects gaps that run
/// past the common length (the encoder never produces them).
pub fn decode_slice_delta<T: DeltaCodec + PartialEq + Clone>(
    prev: &[T],
    input: &mut &[u8],
    ctx: &mut DeltaCtx,
) -> Option<Vec<T>> {
    let len = u32::decode(input)? as usize;
    let common = len.min(prev.len());
    // The tail decodes from the input (≥ 1 byte per element), so a corrupt
    // length prefix fails on input exhaustion, never an unbounded reserve.
    let mut items = Vec::with_capacity(len.min(common + input.len()));
    items.extend_from_slice(&prev[..common]);
    let mut next = 0usize; // one past the previous changed index
    loop {
        let gap = usize::decode(input)?;
        if gap == 0 {
            break;
        }
        let index = next.checked_add(gap)? - 1;
        if index >= common {
            return None;
        }
        items[index] = T::decode_delta(Some(&prev[index]), input, ctx)?;
        next = index + 1;
    }
    for _ in common..len {
        items.push(T::decode_delta(None, input, ctx)?);
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: StateCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(T::decode(&mut input), Some(value));
        assert!(input.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xbeefu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX - 7);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn composites_round_trip() {
        round_trip((3u32, 4u32));
        round_trip((1u8, 2u64, 3i64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(9u8));
        round_trip(Option::<u8>::None);
        round_trip(vec![(Some(1u32), vec![2u8, 3]), (None, vec![])]);
    }

    #[test]
    fn decode_is_self_delimiting_within_a_stream() {
        let mut buf = Vec::new();
        (7u32, 8u64).encode(&mut buf);
        vec![true, false].encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(<(u32, u64)>::decode(&mut input), Some((7, 8)));
        assert_eq!(Vec::<bool>::decode(&mut input), Some(vec![true, false]));
        assert!(input.is_empty());
    }

    #[test]
    fn truncated_input_yields_none() {
        let mut buf = Vec::new();
        0xdead_beef_dead_beefu64.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(u64::decode(&mut input), None, "cut {cut}");
        }
        // A length prefix promising more than the input holds must fail.
        let mut buf = Vec::new();
        1000u32.encode(&mut buf);
        buf.push(1);
        let mut input = buf.as_slice();
        assert_eq!(Vec::<u8>::decode(&mut input), None);
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        round_trip(String::new());
        round_trip("of-consensus-safety".to_string());
        round_trip("snowman \u{2603} and beyond \u{10348}".to_string());
        // A length prefix promising more than the input holds must fail.
        let mut buf = Vec::new();
        "abc".to_string().encode(&mut buf);
        for cut in 0..buf.len() {
            let mut input = &buf[..cut];
            assert_eq!(String::decode(&mut input), None, "cut {cut}");
        }
        // Invalid UTF-8 under a valid length is malformed, not a panic.
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut input = buf.as_slice();
        assert_eq!(String::decode(&mut input), None);
    }

    #[test]
    fn bad_tags_yield_none() {
        let mut input: &[u8] = &[2];
        assert_eq!(bool::decode(&mut input), None);
        let mut input: &[u8] = &[7];
        assert_eq!(Option::<u8>::decode(&mut input), None);
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // `0x80 0x00` is a two-byte encoding of 0; only `0x00` is valid.
        for overlong in [
            &[0x80, 0x00][..],
            &[0x81, 0x00],
            &[0xff, 0x00],
            &[0x80, 0x80, 0x00],
            &[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00],
        ] {
            let mut input = overlong;
            assert_eq!(u64::decode(&mut input), None, "overlong {overlong:?}");
        }
        // The minimal forms they alias still decode.
        let mut input: &[u8] = &[0x00];
        assert_eq!(u64::decode(&mut input), Some(0));
        let mut input: &[u8] = &[0x81, 0x01];
        assert_eq!(u64::decode(&mut input), Some(0x81));
        // Boundary values survive the canonicality check.
        round_trip(u64::MAX);
        round_trip(0x7fu64);
        round_trip(0x80u64);
    }

    fn delta_round_trip<T: DeltaCodec + PartialEq + Clone + std::fmt::Debug>(
        value: &T,
        prev: Option<&T>,
    ) -> usize {
        let mut buf = Vec::new();
        value.encode_delta(prev, &mut buf);
        let mut again = Vec::new();
        value.encode_delta(prev, &mut again);
        assert_eq!(buf, again, "delta encode must be deterministic");
        let mut input = buf.as_slice();
        let mut ctx = DeltaCtx::new();
        assert_eq!(
            T::decode_delta(prev, &mut input, &mut ctx).as_ref(),
            Some(value)
        );
        assert!(input.is_empty(), "delta decode must consume the encoding");
        buf.len()
    }

    #[test]
    fn delta_defaults_round_trip() {
        delta_round_trip(&7u64, None);
        delta_round_trip(&7u64, Some(&7u64));
        delta_round_trip(&(3u32, 9u64), Some(&(3u32, 8u64)));
        delta_round_trip(&Some(4u8), Some(&None));
        delta_round_trip(&Option::<u8>::None, Some(&Some(1)));
    }

    #[test]
    fn slice_delta_skips_unchanged_elements() {
        let prev = vec![10u64, 20, 30, 40];
        let same = delta_round_trip(&prev.clone(), Some(&prev));
        assert_eq!(same, 2, "an unchanged slice is two varints");
        // One changed element plus an appended tail.
        let next = vec![10u64, 21, 30, 40, 50];
        let bytes = delta_round_trip(&next, Some(&prev));
        let mut full = Vec::new();
        next.encode(&mut full);
        assert!(bytes < full.len(), "delta {bytes} vs full {}", full.len());
        // Truncation below the predecessor's length.
        delta_round_trip(&vec![10u64, 99], Some(&prev));
        delta_round_trip(&Vec::<u64>::new(), Some(&prev));
        delta_round_trip(&next, None);
    }

    #[test]
    fn slice_delta_rejects_bad_changed_gaps() {
        let prev = vec![1u64, 2, 3];
        // A gap running past the common length.
        let mut buf = Vec::new();
        3u32.encode(&mut buf); // len
        9usize.encode(&mut buf); // gap to index 8 >= common 3
        7u64.encode(&mut buf);
        0usize.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            decode_slice_delta::<u64>(&prev, &mut input, &mut DeltaCtx::new()),
            None
        );
        // A second gap overrunning after a valid first entry.
        let mut buf = Vec::new();
        3u32.encode(&mut buf);
        1usize.encode(&mut buf); // index 0
        7u64.encode(&mut buf);
        4usize.encode(&mut buf); // gap to index 4 >= common 3
        8u64.encode(&mut buf);
        0usize.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            decode_slice_delta::<u64>(&prev, &mut input, &mut DeltaCtx::new()),
            None
        );
        // A missing terminator fails on input exhaustion.
        let mut buf = Vec::new();
        3u32.encode(&mut buf);
        1usize.encode(&mut buf);
        7u64.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(
            decode_slice_delta::<u64>(&prev, &mut input, &mut DeltaCtx::new()),
            None
        );
    }

    #[test]
    fn intern_table_shares_one_allocation_per_key() {
        use std::sync::Arc;
        let mut ctx = DeltaCtx::new();
        let first: Arc<[u64]> = ctx.intern(b"key", Arc::from(vec![1u64, 2, 3]));
        let second: Arc<[u64]> = ctx.intern(b"key", Arc::from(vec![1u64, 2, 3]));
        assert!(Arc::ptr_eq(&first, &second), "same key must share");
        let other: Arc<[u64]> = ctx.intern(b"other", Arc::from(vec![9u64]));
        assert!(!Arc::ptr_eq(&first, &other));
        // Same bytes, different type: kept apart.
        let as_u8: Arc<[u8]> = ctx.intern(b"key", Arc::from(vec![7u8]));
        assert_eq!(&*as_u8, &[7u8]);
        assert_eq!(ctx.interned_count(), 3);
    }
}
