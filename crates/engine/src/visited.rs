//! The sharded fingerprint visited set.
//!
//! The PR 1 kernel deduplicated successors against one `HashSet<u128>`,
//! which serialized the merge phase of every BFS level: expansion ran on
//! all cores, then a single thread hashed every generated successor into
//! the shared set. [`ShardedVisited`] removes that bottleneck by splitting
//! the digest space into a power-of-two number of shards, each an
//! independent `HashSet` owning a contiguous digest range (the top bits of
//! the 128-bit fingerprint select the shard). During the merge phase each
//! worker thread owns a contiguous *range of shards*, so inserts proceed
//! with no lock and no atomic traffic — ownership is by digest range, not
//! by contention.
//!
//! Determinism is preserved by construction: which shard a digest routes
//! to depends only on the digest, and each shard's inserts are applied in
//! the caller-supplied (global frontier) order, so the fresh/duplicate
//! verdict of every insert — and hence verdicts, visited-configuration
//! counts, and frontier contents — is identical for every shard count and
//! every worker count. The `shard_props` integration test pins this
//! equivalence against a single-map reference on random digest streams.

use crate::detmap::DetHashSet;

/// Upper bound on the shard count (2^12): beyond this the per-shard sets
/// are too small to amortize their fixed footprint at the scopes this
/// workspace explores.
const MAX_SHARDS: usize = 1 << 12;

/// A visited set of 128-bit fingerprints, split into power-of-two shards
/// by digest range.
#[derive(Debug, Clone)]
pub struct ShardedVisited {
    shards: Vec<DetHashSet<u128>>,
    /// `log2(shards.len())`; the top `shard_bits` bits of a digest select
    /// its shard.
    shard_bits: u32,
}

impl ShardedVisited {
    /// A sharded set with `shards` shards, rounded up to the next power of
    /// two and clamped to `[1, 4096]`.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let count = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        ShardedVisited {
            shards: (0..count).map(|_| DetHashSet::default()).collect(),
            shard_bits: count.trailing_zeros(),
        }
    }

    /// Number of shards (a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `digest`: its top `log2(shard_count)` bits. The
    /// digest's two lanes are independently avalanched, so the top bits
    /// are as well-mixed as any others.
    #[must_use]
    pub fn shard_of(&self, digest: u128) -> usize {
        if self.shard_bits == 0 {
            0
        } else {
            (digest >> (128 - self.shard_bits)) as usize
        }
    }

    /// Inserts `digest`, returning `true` if it was not yet present.
    pub fn insert(&mut self, digest: u128) -> bool {
        let shard = self.shard_of(digest);
        self.shards[shard].insert(digest)
    }

    /// Whether `digest` has been inserted.
    #[must_use]
    pub fn contains(&self, digest: u128) -> bool {
        self.shards[self.shard_of(digest)].contains(&digest)
    }

    /// Total distinct digests across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(DetHashSet::len).sum()
    }

    /// Whether no digest has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(DetHashSet::is_empty)
    }

    /// Per-shard occupancy (distinct digests per shard), in shard order.
    #[must_use]
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(DetHashSet::len).collect()
    }

    /// A deterministic snapshot of the set: one sorted digest vector per
    /// shard, in shard order. Sorting fixes the nondeterministic `HashSet`
    /// iteration order, so the same visited set always snapshots to the
    /// same bytes — and since shards own contiguous digest ranges in shard
    /// order, the concatenation is globally digest-ordered (the
    /// digest-range-ordered layout the checkpoint store persists).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Vec<u128>> {
        self.shards
            .iter()
            .map(|shard| {
                let mut digests: Vec<u128> = shard.iter().copied().collect();
                digests.sort_unstable();
                digests
            })
            .collect()
    }

    /// Rebuilds a visited set from a [`ShardedVisited::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the shard count is not a power of two in `[1, 4096]` or
    /// if any digest is routed to the wrong shard — both indicate a
    /// corrupt or foreign snapshot, and restoring it silently would
    /// corrupt every later dedup verdict.
    #[must_use]
    pub fn from_snapshot(shards: Vec<Vec<u128>>) -> Self {
        let count = shards.len();
        assert!(
            count.is_power_of_two() && count <= MAX_SHARDS,
            "corrupt visited snapshot: shard count {count} is not a power \
             of two in [1, {MAX_SHARDS}]"
        );
        let set = ShardedVisited {
            shards: shards
                .iter()
                .map(|digests| digests.iter().copied().collect())
                .collect(),
            shard_bits: count.trailing_zeros(),
        };
        for (shard, digests) in shards.iter().enumerate() {
            for &digest in digests {
                assert_eq!(
                    set.shard_of(digest),
                    shard,
                    "corrupt visited snapshot: digest {digest:#034x} stored \
                     in shard {shard} routes to shard {}",
                    set.shard_of(digest)
                );
            }
        }
        set
    }

    /// Inserts one pre-routed batch per shard, in batch order, and returns
    /// the per-shard fresh bits (`true` where the digest was new), aligned
    /// with the input batches.
    ///
    /// `batches[s]` must contain only digests routed to shard `s` (checked
    /// in debug builds). With `workers > 1` the shards are split into
    /// contiguous ranges, one per worker, and inserted concurrently —
    /// lock-free, since each worker exclusively owns its shard range. The
    /// returned bits are identical for every worker count because each
    /// shard's insert order is fixed by its batch.
    pub fn insert_batches(&mut self, batches: &[Vec<u128>], workers: usize) -> Vec<Vec<bool>> {
        assert_eq!(
            batches.len(),
            self.shards.len(),
            "one batch per shard required"
        );
        #[cfg(debug_assertions)]
        for (shard, batch) in batches.iter().enumerate() {
            for &digest in batch {
                debug_assert_eq!(self.shard_of(digest), shard, "digest routed to wrong shard");
            }
        }

        let insert_all = |sets: &mut [DetHashSet<u128>], routed: &[Vec<u128>]| -> Vec<Vec<bool>> {
            sets.iter_mut()
                .zip(routed)
                .map(|(set, batch)| batch.iter().map(|&digest| set.insert(digest)).collect())
                .collect()
        };

        let workers = workers.clamp(1, self.shards.len());
        if workers == 1 {
            return insert_all(&mut self.shards, batches);
        }

        let per_worker = self.shards.len().div_ceil(workers);
        let mut grouped: Vec<Vec<Vec<bool>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(per_worker)
                .zip(batches.chunks(per_worker))
                .map(|(sets, routed)| scope.spawn(move || insert_all(sets, routed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut fresh = Vec::with_capacity(self.shards.len());
        for group in &mut grouped {
            fresh.append(group);
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedVisited::new(0).shard_count(), 1);
        assert_eq!(ShardedVisited::new(1).shard_count(), 1);
        assert_eq!(ShardedVisited::new(3).shard_count(), 4);
        assert_eq!(ShardedVisited::new(16).shard_count(), 16);
        assert_eq!(ShardedVisited::new(usize::MAX).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn insert_and_contains_roundtrip() {
        let mut set = ShardedVisited::new(8);
        assert!(set.is_empty());
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(7));
        assert!(!set.contains(8));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn top_bits_select_the_shard() {
        let set = ShardedVisited::new(4);
        assert_eq!(set.shard_of(0), 0);
        assert_eq!(set.shard_of(u128::MAX), 3);
        assert_eq!(set.shard_of(1u128 << 126), 1);
        assert_eq!(set.shard_of(3u128 << 126), 3);
        // One shard: everything routes to shard 0, no 128-bit shift.
        let single = ShardedVisited::new(1);
        assert_eq!(single.shard_of(u128::MAX), 0);
    }

    #[test]
    fn batched_inserts_match_sequential_inserts() {
        let digests: Vec<u128> = (0..1000u128).map(|i| i << 120 | i).collect();
        let mut sequential = ShardedVisited::new(8);
        let seq_bits: Vec<bool> = digests.iter().map(|&d| sequential.insert(d)).collect();

        for workers in [1, 2, 5, 8] {
            let mut batched = ShardedVisited::new(8);
            let mut batches: Vec<Vec<u128>> = vec![Vec::new(); 8];
            let mut route: Vec<(usize, usize)> = Vec::new();
            for &d in &digests {
                let s = batched.shard_of(d);
                route.push((s, batches[s].len()));
                batches[s].push(d);
            }
            let fresh = batched.insert_batches(&batches, workers);
            let got: Vec<bool> = route.iter().map(|&(s, k)| fresh[s][k]).collect();
            assert_eq!(got, seq_bits, "workers {workers}");
            assert_eq!(batched.len(), sequential.len());
            assert_eq!(batched.occupancy(), sequential.occupancy());
        }
    }

    #[test]
    fn snapshot_roundtrips_and_is_sorted() {
        let mut set = ShardedVisited::new(8);
        for i in 0..500u128 {
            set.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) << 64 | i);
        }
        let snap = set.snapshot();
        assert_eq!(snap.len(), 8);
        for (shard, digests) in snap.iter().enumerate() {
            assert!(digests.windows(2).all(|w| w[0] < w[1]), "shard {shard}");
            for &d in digests {
                assert_eq!(set.shard_of(d), shard);
            }
        }
        let restored = ShardedVisited::from_snapshot(snap.clone());
        assert_eq!(restored.len(), set.len());
        assert_eq!(restored.occupancy(), set.occupancy());
        assert_eq!(restored.snapshot(), snap);
        for i in 0..500u128 {
            assert!(restored.contains(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) << 64 | i));
        }
    }

    #[test]
    fn from_snapshot_rejects_misrouted_digests_and_bad_shard_counts() {
        let misrouted = vec![vec![u128::MAX], Vec::new()];
        assert!(std::panic::catch_unwind(|| ShardedVisited::from_snapshot(misrouted)).is_err());
        let bad_count = vec![Vec::new(); 3];
        assert!(std::panic::catch_unwind(|| ShardedVisited::from_snapshot(bad_count)).is_err());
    }

    #[test]
    fn occupancy_sums_to_len() {
        let mut set = ShardedVisited::new(16);
        for i in 0..500u128 {
            set.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) << 64 | i);
        }
        assert_eq!(set.occupancy().iter().sum::<usize>(), set.len());
    }
}
