//! Exploration statistics — and the kernel's sanctioned wall-clock.

use std::fmt;
use std::time::Duration;

/// The workspace's sanctioned monotonic wall-clock: a started
/// [`Stopwatch`] reports the time elapsed since [`Stopwatch::start`].
///
/// Every duration a verdict-producing path measures flows through this
/// type, and `slx-analyze`'s determinism lint flags any direct
/// `Instant::now`/`SystemTime` read outside this module (and the bench
/// crate, whose whole purpose is timing): wall-clock must only ever feed
/// *reporting* statistics, never a digest, a merge order, or an encoded
/// byte, and funneling every read through one audited type is what makes
/// that reviewable.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: std::time::Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Statistics of one [`crate::Checker`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreStats {
    /// Distinct states expanded (by fingerprint).
    pub configs: usize,
    /// Successor states generated (before deduplication).
    pub transitions: usize,
    /// Generated successors dropped because their fingerprint was already
    /// visited at an equal or smaller depth.
    pub dedup_hits: usize,
    /// Among [`ExploreStats::dedup_hits`], successors dropped **only
    /// because of symmetry reduction**: their canonical digest was
    /// already visited but their exact digest was fresh — a distinct
    /// state collapsed into an already-explored orbit. Always 0 when
    /// symmetry is off (the differential suites assert exactly that).
    pub orbit_hits: usize,
    /// Whether symmetry reduction was active for this run (the checker
    /// asked for it **and** the space advertised
    /// [`crate::StateSpace::has_symmetry_reduction`]).
    pub symmetry: bool,
    /// Largest BFS frontier (or DFS stack) observed.
    pub peak_frontier: usize,
    /// Largest number of decoded frontier states resident in memory at
    /// once while expanding a level. Without a memory budget this equals
    /// [`ExploreStats::peak_frontier`] (whole levels are resident); with
    /// one it stays bounded by the budget's chunk size regardless of
    /// level width — the disk-backed frontier's whole point.
    pub peak_resident_states: usize,
    /// Largest encoded byte size the decoded frontier window reached (the
    /// measure the memory budget bounds; 0 without a budget — unbudgeted
    /// frontiers never encode, so there is nothing to measure). Stays
    /// within one chunk budget (half the memory budget) plus one record,
    /// even when encoded state size grows across a level.
    pub peak_resident_bytes: usize,
    /// Frontier chunks serialized to spill files (0 without a memory
    /// budget, and whenever every level fit in the budget). Counts the
    /// frontiers that were (or began being) expanded.
    pub spilled_chunks: usize,
    /// Bytes written to spill files by the counted chunks.
    pub spilled_bytes: u64,
    /// Parents re-expanded by [`crate::SpillCodec::Replay`] chunk
    /// regeneration (0 under the other codecs and without a budget).
    /// Replay records never split a parent's children across chunks, so
    /// this is also the number of replay group records read back — at
    /// most one re-expansion per spilled parent per level.
    pub replayed_parents: usize,
    /// The frontier memory budget that was active, if any (the resolved
    /// [`crate::Checker::with_mem_budget`] / `SLX_ENGINE_MEM_BUDGET`
    /// value). `None` for unbudgeted runs and for the DFS backend, which
    /// never spills.
    pub mem_budget: Option<usize>,
    /// Whether any expansion reported truncation (horizon or budget hit):
    /// if `false`, the exploration was exhaustive.
    pub truncated: bool,
    /// Whether the run stopped early because the caller's stop predicate
    /// fired (early verdicts, e.g. a bivalence witness).
    pub stopped_early: bool,
    /// BFS level this run was resumed from via [`crate::Checker::resume`]
    /// (`None` for a fresh run). A resumed run re-enters the level loop at
    /// this depth with the checkpointed frontier, visited set, and counters
    /// restored, so verdicts and state counts match the uninterrupted run.
    pub resumed_from_depth: Option<usize>,
    /// Checkpoints committed to the on-disk store over the run's lifetime,
    /// including those carried over from the segments a resumed run
    /// continues (0 when checkpointing is off).
    pub checkpoints_written: usize,
    /// Faults injected by the run's [`crate::FaultPlane`] across every
    /// seam (spill, checkpoint — the engine-owned surfaces). Always 0
    /// when `SLX_ENGINE_FAULT_PLAN` is unset and no plan was supplied:
    /// the acceptance bar for "the disarmed plane is free".
    pub faults_injected: u64,
    /// Transient (EINTR-class) I/O errors absorbed by bounded
    /// retry-with-backoff on the spill and checkpoint paths. Nonzero
    /// only under an armed fault plane or a genuinely flaky filesystem.
    pub io_retries: u64,
    /// BFS levels that finished resident after the spill path hit a
    /// persistent out-of-space error and degraded gracefully instead of
    /// failing the run.
    pub degraded_levels: usize,
    /// Worker threads used by the backend.
    pub threads: usize,
    /// Visited-set shards used by the backend (1 for DFS).
    pub shards: usize,
    /// Distinct digests accepted into each visited-set shard by the
    /// deterministic merge, in shard order. Deterministic for a given
    /// exploration: routing depends only on digests and acceptance only
    /// on frontier order, never on scheduling, thread count, or shard
    /// routing of the dedup work.
    pub shard_occupancy: Vec<usize>,
    /// **Lifetime** wall-clock duration of the run: for a resumed run
    /// this accumulates every earlier segment's persisted elapsed time
    /// (checkpoint images carry it) plus the current segment's, matching
    /// the lifetime `configs`/`transitions` counters — so the derived
    /// [`ExploreStats::states_per_sec`] stays truthful across resumes.
    pub elapsed: Duration,
}

impl ExploreStats {
    /// Distinct states expanded per wall-clock second — a lifetime rate:
    /// both `configs` and `elapsed` span every segment of a resumed run.
    #[must_use]
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.configs as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of generated successors that deduplicated against the
    /// visited set (`0.0` when no successors were generated).
    #[must_use]
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.transitions > 0 {
            self.dedup_hits as f64 / self.transitions as f64
        } else {
            0.0
        }
    }

    /// Shard balance: the fullest shard's occupancy over the mean
    /// occupancy. `1.0` is perfect balance (also returned for empty or
    /// unsharded runs); values near the shard count mean one shard
    /// received almost everything and the merge phase serialized.
    #[must_use]
    pub fn shard_balance(&self) -> f64 {
        let max = self.shard_occupancy.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let total: usize = self.shard_occupancy.iter().sum();
        let mean = total as f64 / self.shard_occupancy.len() as f64;
        max as f64 / mean
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({:.1}% dedup), peak frontier {}, \
             {:.0} states/s on {} thread(s)",
            self.configs,
            self.transitions,
            self.dedup_hit_rate() * 100.0,
            self.peak_frontier,
            self.states_per_sec(),
            self.threads,
        )?;
        if self.shards > 1 {
            write!(
                f,
                ", {} shards (balance {:.2})",
                self.shards,
                self.shard_balance()
            )?;
        }
        // `peak_resident_states` is the statistic a memory budget
        // controls, so print it whenever a budget was active — a tuned
        // run whose levels all fit (0 spilled chunks) must still show
        // what the budget held the window to.
        if self.mem_budget.is_some() || self.spilled_chunks > 0 {
            write!(
                f,
                ", spilled {} chunks ({} bytes), peak {} resident states ({} bytes)",
                self.spilled_chunks,
                self.spilled_bytes,
                self.peak_resident_states,
                self.peak_resident_bytes,
            )?;
            if self.replayed_parents > 0 {
                write!(f, ", {} parents replayed", self.replayed_parents)?;
            }
        }
        if self.symmetry {
            write!(f, ", symmetry ({} orbit hits)", self.orbit_hits)?;
        }
        if let Some(depth) = self.resumed_from_depth {
            write!(f, ", resumed from depth {depth}")?;
        }
        if self.checkpoints_written > 0 {
            write!(f, ", {} checkpoints written", self.checkpoints_written)?;
        }
        if self.faults_injected > 0 || self.io_retries > 0 || self.degraded_levels > 0 {
            write!(
                f,
                ", {} faults injected ({} retries, {} degraded levels)",
                self.faults_injected, self.io_retries, self.degraded_levels
            )?;
        }
        write!(
            f,
            "{}{}",
            if self.truncated { ", truncated" } else { "" },
            if self.stopped_early {
                ", stopped early"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let stats = ExploreStats::default();
        assert_eq!(stats.states_per_sec(), 0.0);
        assert_eq!(stats.dedup_hit_rate(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let stats = ExploreStats {
            configs: 10,
            transitions: 20,
            dedup_hits: 5,
            orbit_hits: 2,
            symmetry: true,
            peak_frontier: 4,
            peak_resident_states: 2,
            peak_resident_bytes: 64,
            spilled_chunks: 3,
            spilled_bytes: 96,
            replayed_parents: 5,
            mem_budget: Some(128),
            truncated: true,
            stopped_early: false,
            resumed_from_depth: Some(8),
            checkpoints_written: 3,
            faults_injected: 7,
            io_retries: 4,
            degraded_levels: 1,
            threads: 2,
            shards: 4,
            shard_occupancy: vec![4, 2, 2, 2],
            elapsed: Duration::from_millis(100),
        };
        let s = stats.to_string();
        assert!(s.contains("10 states"));
        assert!(s.contains("truncated"));
        assert!(s.contains("4 shards"));
        assert!(s.contains("spilled 3 chunks"));
        assert!(s.contains("peak 2 resident states"));
        assert!(s.contains("5 parents replayed"));
        assert!(s.contains("symmetry (2 orbit hits)"));
        assert!(s.contains("resumed from depth 8"));
        assert!(s.contains("3 checkpoints written"));
        assert!(s.contains("7 faults injected (4 retries, 1 degraded levels)"));
    }

    #[test]
    fn display_omits_fault_counters_for_clean_runs() {
        let stats = ExploreStats {
            configs: 10,
            threads: 1,
            shards: 1,
            ..ExploreStats::default()
        };
        assert!(!stats.to_string().contains("faults injected"));
    }

    #[test]
    fn display_omits_checkpointing_for_fresh_uncheckpointed_runs() {
        let stats = ExploreStats {
            configs: 10,
            threads: 1,
            shards: 1,
            ..ExploreStats::default()
        };
        let s = stats.to_string();
        assert!(!s.contains("resumed"));
        assert!(!s.contains("checkpoint"));
    }

    #[test]
    fn display_omits_symmetry_when_off() {
        let stats = ExploreStats {
            configs: 10,
            threads: 1,
            shards: 1,
            ..ExploreStats::default()
        };
        assert!(!stats.to_string().contains("symmetry"));
        // Even with zero orbit hits, an active-symmetry run says so — the
        // zero is the interesting datum (a canonicalizer that never fired).
        let on = ExploreStats {
            symmetry: true,
            ..stats
        };
        assert!(on.to_string().contains("symmetry (0 orbit hits)"));
    }

    #[test]
    fn display_shows_resident_peak_whenever_a_budget_was_active() {
        // The tuned case: a budget is set but every level fit, so nothing
        // spilled. The stat the budget controls must still print.
        let stats = ExploreStats {
            configs: 10,
            peak_frontier: 4,
            peak_resident_states: 4,
            peak_resident_bytes: 96,
            spilled_chunks: 0,
            mem_budget: Some(4096),
            threads: 1,
            shards: 1,
            ..ExploreStats::default()
        };
        let s = stats.to_string();
        assert!(
            s.contains("peak 4 resident states"),
            "budgeted-but-unspilled run must report the resident peak: {s}"
        );
        assert!(s.contains("spilled 0 chunks"), "{s}");
        // Without a budget (and without spilling) the spill line stays
        // out, as before.
        let unbudgeted = ExploreStats {
            configs: 10,
            threads: 1,
            shards: 1,
            ..ExploreStats::default()
        };
        assert!(!unbudgeted.to_string().contains("resident"));
    }

    #[test]
    fn shard_balance_is_max_over_mean() {
        let stats = ExploreStats {
            shard_occupancy: vec![6, 2, 2, 2],
            shards: 4,
            ..ExploreStats::default()
        };
        assert!((stats.shard_balance() - 2.0).abs() < 1e-12);
        assert_eq!(ExploreStats::default().shard_balance(), 1.0);
    }
}
