//! Exploration statistics.

use std::fmt;
use std::time::Duration;

/// Statistics of one [`crate::Checker`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExploreStats {
    /// Distinct states expanded (by fingerprint).
    pub configs: usize,
    /// Successor states generated (before deduplication).
    pub transitions: usize,
    /// Generated successors dropped because their fingerprint was already
    /// visited at an equal or smaller depth.
    pub dedup_hits: usize,
    /// Largest BFS frontier (or DFS stack) observed.
    pub peak_frontier: usize,
    /// Whether any expansion reported truncation (horizon or budget hit):
    /// if `false`, the exploration was exhaustive.
    pub truncated: bool,
    /// Whether the run stopped early because the caller's stop predicate
    /// fired (early verdicts, e.g. a bivalence witness).
    pub stopped_early: bool,
    /// Worker threads used by the backend.
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ExploreStats {
    /// Distinct states expanded per wall-clock second.
    #[must_use]
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.configs as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of generated successors that deduplicated against the
    /// visited set (`0.0` when no successors were generated).
    #[must_use]
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.transitions > 0 {
            self.dedup_hits as f64 / self.transitions as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions ({:.1}% dedup), peak frontier {}, \
             {:.0} states/s on {} thread(s){}{}",
            self.configs,
            self.transitions,
            self.dedup_hit_rate() * 100.0,
            self.peak_frontier,
            self.states_per_sec(),
            self.threads,
            if self.truncated { ", truncated" } else { "" },
            if self.stopped_early {
                ", stopped early"
            } else {
                ""
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let stats = ExploreStats::default();
        assert_eq!(stats.states_per_sec(), 0.0);
        assert_eq!(stats.dedup_hit_rate(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let stats = ExploreStats {
            configs: 10,
            transitions: 20,
            dedup_hits: 5,
            peak_frontier: 4,
            truncated: true,
            stopped_early: false,
            threads: 2,
            elapsed: Duration::from_millis(100),
        };
        let s = stats.to_string();
        assert!(s.contains("10 states"));
        assert!(s.contains("truncated"));
    }
}
