//! `slx-engine` — the shared high-throughput exploration kernel.
//!
//! Every verdict this workspace produces — the Figure 1 (l,k)-freedom
//! grids, the bivalence/starvation adversaries, the opacity and consensus
//! safety checks — is discharged by exhaustively enumerating schedules.
//! This crate is the single kernel those enumerations run on:
//!
//! - [`StateSpace`] — the abstraction a checker implements: a state type,
//!   successor enumeration ([`StateSpace::expand`]), and a 128-bit state
//!   [`Digest`];
//! - [`Checker`] — the driver, with a **fingerprint-only visited set**
//!   (the search retains 16-byte digests, never full states), a
//!   **frontier-based parallel BFS** backend with deterministic result
//!   merging, and a sequential DFS fallback;
//! - [`ShardedVisited`] — the BFS visited set, sharded by digest range so
//!   the dedup/merge phase parallelizes too (each worker owns a
//!   contiguous shard range, lock-free); shard count via
//!   [`Checker::with_shards`] or `SLX_ENGINE_SHARDS`, and verdicts are
//!   shard-count and thread-count independent by construction;
//! - [`StateCodec`] / [`DeltaCodec`] + the **disk-backed frontier** —
//!   states encode to a self-delimiting binary format, and under a memory
//!   budget ([`Checker::with_mem_budget`] or `SLX_ENGINE_MEM_BUDGET`
//!   bytes; spill directory via [`Checker::with_spill_dir`] or
//!   `SLX_ENGINE_SPILL_DIR`) the BFS frontier — the last O(states)
//!   structure holding full configurations — spills cold chunks to
//!   self-cleaning temp files and streams them back during expansion,
//!   bounding peak resident states regardless of level width. Chunk
//!   windows are byte-measured; records hold states only (digests are
//!   consumed by the visited set before a state is pushed) and come in
//!   three encodings ([`SpillCodec`], `SLX_ENGINE_SPILL_CODEC`):
//!   **delta** (the default — sibling states share layouts, memory
//!   words, and history prefixes, so unchanged fields collapse to
//!   skip/copy varints on the wire and decode as clones of the
//!   predecessor's fields, with a per-replay [`DeltaCtx`] intern table
//!   restoring `Arc` sharing across chunk boundaries), **plain**
//!   (self-contained records, the comparison arm), and **replay**
//!   (records store parent states plus child action indices, and the
//!   replay *regenerates* spilled successors by re-expanding the parent
//!   through [`StateSpace::successor_at`] — no per-child codec work at
//!   all). Chunk order is deterministic and re-expansion is pure, so
//!   spilling changes no verdict, finding, or statistic;
//! - [`Fingerprinter`] — a fast two-lane non-cryptographic hasher that
//!   produces the 128-bit digests in one pass (replacing the SipHash
//!   `DefaultHasher` helpers that used to be copy-pasted across the
//!   workspace — use [`digest64_of`] / [`digest64_of_iter`] instead);
//! - [`ExploreStats`] — built-in exploration statistics: states visited,
//!   transitions generated, dedup hit rate, peak frontier size,
//!   states/sec, and truncation accounting;
//! - [`CheckpointStore`] — crash-tolerant checkpoint/resume: at
//!   configurable level boundaries ([`Checker::with_checkpoint`] or
//!   `SLX_ENGINE_CHECKPOINT_DIR` / `SLX_ENGINE_CHECKPOINT_EVERY`) the BFS
//!   backend commits its complete resumable image — visited digests,
//!   frontier, findings, counters, and a validated run-config header —
//!   with atomic rename semantics, and [`Checker::resume`] continues the
//!   run bit-identically in verdict, state counts, and truncation flags;
//! - [`FaultPlane`] — a deterministic fault-injection plane over every
//!   fallible I/O seam (spill file create/write/read/unlink, checkpoint
//!   write/sync/rename), armed by a seeded [`FaultPlan`]
//!   ([`Checker::with_fault_plan`] or `SLX_ENGINE_FAULT_PLAN`; a no-op
//!   when disarmed). The hardened paths behind it retry transient
//!   faults with bounded backoff, degrade gracefully when the spill
//!   directory runs out of space, and surface anything unrecoverable as
//!   a typed [`EngineError`] ([`Checker::try_run`]) — never a torn
//!   checkpoint image or a leaked spill file.
//!
//! The kernel is dependency-free and fully generic; `slx-explorer`,
//! `slx-adversary`, and the `slx-core` grid drivers all layer on it.
//!
//! # Exactness and fingerprints
//!
//! Deduplicating on 128-bit fingerprints instead of retained states means
//! two distinct states colliding under the digest would be conflated. A
//! collision can only *hide* states (every reported finding still comes
//! from a genuinely reached state — findings are sound unconditionally);
//! at the small scopes this workspace explores (≪ 2^40 states) the
//! collision probability is astronomically below any practical concern.
//! The crate's test suite checks both claims with a built-in property
//! harness: full-width digests reproduce exact-set exploration verbatim,
//! and deliberately truncated digests stay sound.

#![warn(missing_docs)]

mod checker;
mod checkpoint;
mod codec;
mod detmap;
mod digest;
mod fault;
pub mod knobs;
mod space;
mod spill;
mod stats;
mod visited;

pub use checker::{Backend, Checker, KernelOutcome};
pub use checkpoint::CheckpointStore;
pub use codec::{decode_slice_delta, encode_slice_delta, DeltaCodec, DeltaCtx, StateCodec};
pub use detmap::{DetBuildHasher, DetHashMap, DetHashSet};
pub use digest::{digest128_of, digest64_of, digest64_of_iter, Digest, Fingerprinter};
pub use fault::{EngineError, FaultKind, FaultOp, FaultPlan, FaultPlane};
pub use space::{Expansion, StateSpace};
pub use spill::SpillCodec;
pub use stats::{ExploreStats, Stopwatch};
pub use visited::ShardedVisited;
