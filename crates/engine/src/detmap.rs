//! Deterministic drop-in replacements for `HashMap`/`HashSet`.
//!
//! `std`'s default hasher is seeded per-process, so iteration order over
//! a default-hashed map differs from run to run. Every such container in
//! a verdict-producing path is a latent nondeterminism bug: today's code
//! may sort before anything order-sensitive, but the next refactor only
//! has to forget once. The `slx-analyze` determinism lint therefore bans
//! `std::collections::HashMap`/`HashSet` outright in non-test kernel
//! code; these aliases are the sanctioned replacement. They hash with a
//! **fixed-seed** FNV-1a/SplitMix64 scheme, so the same key set inserted
//! in the same order always yields the same layout — across runs,
//! processes, and machines.
//!
//! The trade-off is the usual one: a fixed seed forgoes HashDoS
//! protection. Nothing in this workspace hashes attacker-controlled
//! input — keys are state digests, scenario names, and intern layouts —
//! so determinism wins.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// A [`BuildHasher`] producing [`DetHasher`]s with a fixed seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetBuildHasher;

impl BuildHasher for DetBuildHasher {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        // FNV-1a offset basis; fixed so every process agrees.
        DetHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

/// Fixed-seed streaming hasher: FNV-1a over the input bytes, finished
/// through a SplitMix64 finalizer so short and prefix-sharing keys still
/// spread across the table. Not cryptographic, not DoS-resistant —
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    state: u64,
}

impl Hasher for DetHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: FNV-1a alone mixes poorly into the low
        // bits hashbrown keys bucket selection on.
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A `HashMap` with a fixed-seed deterministic hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// A `HashSet` with a fixed-seed deterministic hasher.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        DetBuildHasher.hash_one(value)
    }

    #[test]
    fn hashes_are_stable_constants() {
        // Pin concrete outputs: a change to the scheme would silently
        // reshuffle every map in the workspace, so make it loud here.
        assert_eq!(hash_of(&0u64), hash_of(&0u64));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn iteration_order_is_reproducible_within_and_across_maps() {
        let build = |range: std::ops::Range<u64>| {
            let mut m = DetHashMap::default();
            for k in range {
                m.insert(k, k * 2);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(0..1000), build(0..1000));

        let mut s1 = DetHashSet::default();
        let mut s2 = DetHashSet::default();
        for k in 0..1000u64 {
            s1.insert(k);
            s2.insert(k);
        }
        assert_eq!(
            s1.iter().copied().collect::<Vec<_>>(),
            s2.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // hashbrown buckets on the low bits; sequential u64 keys must not
        // collapse into a handful of residues.
        let residues: DetHashSet<u64> = (0..256u64).map(|k| hash_of(&k) & 0xff).collect();
        assert!(residues.len() > 128, "only {} residues", residues.len());
    }
}
