//! Deterministic fault injection for every fallible kernel surface —
//! and the typed error the hardened paths surface instead of panicking.
//!
//! The checker's robustness story before this module: every spill,
//! checkpoint, and socket error was an immediate panic. The paper this
//! workspace reproduces is about what systems can guarantee *under
//! failures*, so the kernel now carries a [`FaultPlane`]: a seam at
//! every fallible I/O call that can inject ENOSPC, EINTR, short and
//! torn writes, connection resets, and stalls from a **SplitMix64-seeded
//! schedule**. The schedule is a pure function of the plan's seed and a
//! per-operation counter — no wall clock, no RNG state shared with
//! anything else — so a faulted run is reproducible from its plan
//! string alone, and the PR 2–9 differential discipline extends to
//! failure testing: *a faulted run either produces a verdict
//! bit-identical to the fault-free run, or fails with a typed
//! [`EngineError`]* — never a panic, never a torn image, never a leaked
//! spill file.
//!
//! # Selecting a plan
//!
//! A plan comes from [`crate::Checker::with_fault_plan`] or the
//! `SLX_ENGINE_FAULT_PLAN` knob, as comma-separated `key=value` pairs:
//!
//! ```text
//! seed=42                              # required: the SplitMix64 seed
//! seed=42,rate=64                      # ~64/1024 of targeted ops fault
//! seed=7,ops=spill-write+ckpt-rename   # restrict the targeted seams
//! seed=7,kinds=enospc+eintr            # restrict the injected kinds
//! ```
//!
//! Unset (the default) compiles the whole plane down to one inline
//! `Option` check per seam — the fault-free hot path pays nothing, which
//! the `fault_overhead` bench smoke pins at ≤ 1.02x.
//!
//! # What the kernel does with an injected fault
//!
//! - **EINTR / short writes** are transient: the hardened call sites
//!   retry up to [`IO_ATTEMPTS`] times on a fixed backoff schedule
//!   (deterministic — no wall clock in the decision path), counting each
//!   retry into `ExploreStats::io_retries`.
//! - **ENOSPC on the spill directory** degrades gracefully: the level
//!   finishes resident (no further chunks are flushed) up to a hard cap
//!   of [`DEGRADED_CAP_CHUNKS`] chunk budgets, then fails with
//!   [`EngineError::SpillExhausted`] naming the path and budget.
//! - **Torn checkpoint writes** land on the `.tmp` staging sibling only:
//!   the commit fails typed and the previous committed image stays
//!   loadable.
//! - **Socket faults** exercise the service's accept-loop retry, read
//!   timeouts, and the client's reconnect-and-resume-by-request-id path.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded attempts for a transiently-failing I/O call (the first try
/// plus the retries).
pub const IO_ATTEMPTS: usize = 3;

/// Deterministic backoff between retry attempts, in milliseconds. A
/// fixed schedule, not a clock-derived one: wall time never enters the
/// retry *decision*, only the waiting.
const BACKOFF_MS: [u64; 2] = [1, 2];

/// How many chunk budgets the degraded (spill-exhausted) resident
/// frontier may grow to before the run fails typed instead.
pub const DEGRADED_CAP_CHUNKS: usize = 64;

/// One injectable operation seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultOp {
    /// Creating a spill chunk file.
    SpillCreate = 0,
    /// Writing an encoded chunk to a spill file.
    SpillWrite = 1,
    /// Reading an encoded chunk back from a spill file.
    SpillRead = 2,
    /// Unlinking a spill file on drop.
    SpillUnlink = 3,
    /// Writing the checkpoint image to its staging file.
    CkptWrite = 4,
    /// `fdatasync` of the staged checkpoint image.
    CkptSync = 5,
    /// The atomic rename that commits a checkpoint.
    CkptRename = 6,
    /// The server's listener accept call.
    Accept = 7,
    /// A socket read.
    SockRead = 8,
    /// A socket write.
    SockWrite = 9,
}

/// Number of [`FaultOp`] seams (counter-array size).
const OP_COUNT: usize = 10;

const ALL_OPS: [FaultOp; OP_COUNT] = [
    FaultOp::SpillCreate,
    FaultOp::SpillWrite,
    FaultOp::SpillRead,
    FaultOp::SpillUnlink,
    FaultOp::CkptWrite,
    FaultOp::CkptSync,
    FaultOp::CkptRename,
    FaultOp::Accept,
    FaultOp::SockRead,
    FaultOp::SockWrite,
];

impl FaultOp {
    fn name(self) -> &'static str {
        match self {
            FaultOp::SpillCreate => "spill-create",
            FaultOp::SpillWrite => "spill-write",
            FaultOp::SpillRead => "spill-read",
            FaultOp::SpillUnlink => "spill-unlink",
            FaultOp::CkptWrite => "ckpt-write",
            FaultOp::CkptSync => "ckpt-sync",
            FaultOp::CkptRename => "ckpt-rename",
            FaultOp::Accept => "accept",
            FaultOp::SockRead => "sock-read",
            FaultOp::SockWrite => "sock-write",
        }
    }

    /// The fault kinds that are physically plausible at this seam (a
    /// rename cannot be short; a socket read cannot hit ENOSPC).
    fn plausible_kinds(self) -> u8 {
        match self {
            FaultOp::SpillCreate => kind_bit(FaultKind::Enospc) | kind_bit(FaultKind::Eintr),
            FaultOp::SpillWrite | FaultOp::CkptWrite => {
                kind_bit(FaultKind::Enospc)
                    | kind_bit(FaultKind::Eintr)
                    | kind_bit(FaultKind::Short)
                    | kind_bit(FaultKind::Torn)
            }
            FaultOp::SpillRead => kind_bit(FaultKind::Eintr) | kind_bit(FaultKind::Short),
            FaultOp::SpillUnlink => kind_bit(FaultKind::Eintr),
            FaultOp::CkptSync | FaultOp::CkptRename => {
                kind_bit(FaultKind::Enospc) | kind_bit(FaultKind::Eintr)
            }
            FaultOp::Accept => {
                kind_bit(FaultKind::Eintr) | kind_bit(FaultKind::Reset) | kind_bit(FaultKind::Stall)
            }
            FaultOp::SockRead | FaultOp::SockWrite => {
                kind_bit(FaultKind::Eintr)
                    | kind_bit(FaultKind::Short)
                    | kind_bit(FaultKind::Reset)
                    | kind_bit(FaultKind::Stall)
            }
        }
    }
}

/// One injectable fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultKind {
    /// `ENOSPC`: the device is full. Not transient — triggers the
    /// degradation (spill) or typed-failure (checkpoint) paths.
    Enospc = 0,
    /// `EINTR`: a signal interrupted the call. Transient — retried.
    Eintr = 1,
    /// A short read/write: part of the buffer transferred, then the call
    /// failed transiently. Retried from a clean re-positioned state.
    Short = 2,
    /// A torn write: part of the buffer landed, then the call failed
    /// non-transiently. The hardened paths must never let torn bytes
    /// become a live image.
    Torn = 3,
    /// `ECONNRESET`: the peer vanished mid-transfer (sockets only).
    Reset = 4,
    /// The call blocks far longer than expected (sockets only) — drives
    /// the read-timeout and heartbeat paths.
    Stall = 5,
}

const ALL_KINDS: [FaultKind; 6] = [
    FaultKind::Enospc,
    FaultKind::Eintr,
    FaultKind::Short,
    FaultKind::Torn,
    FaultKind::Reset,
    FaultKind::Stall,
];

fn kind_bit(kind: FaultKind) -> u8 {
    1u8 << (kind as u8)
}

fn op_bit(op: FaultOp) -> u16 {
    1u16 << (op as usize)
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eintr => "eintr",
            FaultKind::Short => "short",
            FaultKind::Torn => "torn",
            FaultKind::Reset => "reset",
            FaultKind::Stall => "stall",
        }
    }

    /// The injected kind rendered as the `std::io::Error` a real kernel
    /// would have returned. ENOSPC carries the real OS errno so
    /// `ErrorKind` classification matches a genuine full disk.
    #[must_use]
    pub fn to_io_error(self) -> std::io::Error {
        match self {
            // 28 = ENOSPC on every Unix this workspace targets.
            FaultKind::Enospc => std::io::Error::from_raw_os_error(28),
            FaultKind::Eintr => {
                std::io::Error::new(std::io::ErrorKind::Interrupted, "injected EINTR")
            }
            FaultKind::Short => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected short transfer (partial bytes landed)",
            ),
            FaultKind::Torn => std::io::Error::other("injected torn write (partial bytes landed)"),
            FaultKind::Reset => std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected connection reset",
            ),
            FaultKind::Stall => std::io::Error::new(std::io::ErrorKind::TimedOut, "injected stall"),
        }
    }
}

/// Whether an I/O error is worth a bounded retry (EINTR-class: the call
/// was interrupted, not refused).
#[must_use]
pub fn is_transient(err: &std::io::Error) -> bool {
    err.kind() == std::io::ErrorKind::Interrupted
}

/// Whether an I/O error means the target device/directory is out of
/// space (the graceful-degradation trigger for the spill path).
#[must_use]
pub fn is_out_of_space(err: &std::io::Error) -> bool {
    err.raw_os_error() == Some(28)
}

/// A parsed fault-injection plan: the seed, the per-1024 injection rate,
/// and the targeted operation/kind sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Injection probability numerator out of 1024 draws.
    rate: u32,
    ops: u16,
    kinds: u8,
}

impl FaultPlan {
    /// A plan targeting every seam and kind at the default rate
    /// (32/1024).
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: 32,
            ops: u16::MAX,
            kinds: u8::MAX,
        }
    }

    /// Overrides the injection rate (clamped to 1024 = always).
    #[must_use]
    pub fn with_rate(mut self, rate: u32) -> FaultPlan {
        self.rate = rate.min(1024);
        self
    }

    /// Restricts the plan to the given operation seams.
    #[must_use]
    pub fn with_ops(mut self, ops: &[FaultOp]) -> FaultPlan {
        self.ops = ops.iter().fold(0, |mask, &op| mask | op_bit(op));
        self
    }

    /// Restricts the plan to the given fault kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        self.kinds = kinds.iter().fold(0, |mask, &kind| mask | kind_bit(kind));
        self
    }

    /// Parses the plan-string grammar (`seed=N[,rate=R][,ops=a+b]
    /// [,kinds=x+y]`). Errors describe the offending token; the knob
    /// reader turns them into the registry's usual hard error naming
    /// `SLX_ENGINE_FAULT_PLAN` and the value.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut seed = None;
        let mut plan = FaultPlan::seeded(0);
        for pair in text.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                return Err(format!("expected key=value, got {pair:?}"));
            };
            match key.trim() {
                "seed" => {
                    seed = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|_| format!("seed must be a u64, got {value:?}"))?,
                    );
                }
                "rate" => {
                    let rate = value.trim().parse::<u32>().map_err(|_| {
                        format!("rate must be an integer in 0..=1024, got {value:?}")
                    })?;
                    if rate > 1024 {
                        return Err(format!("rate must be at most 1024, got {rate}"));
                    }
                    plan.rate = rate;
                }
                "ops" => {
                    let mut mask = 0u16;
                    for name in value.split('+') {
                        let name = name.trim();
                        if name == "all" {
                            mask = u16::MAX;
                            continue;
                        }
                        let op = ALL_OPS
                            .iter()
                            .find(|op| op.name() == name)
                            .ok_or_else(|| format!("unknown op {name:?}"))?;
                        mask |= op_bit(*op);
                    }
                    plan.ops = mask;
                }
                "kinds" => {
                    let mut mask = 0u8;
                    for name in value.split('+') {
                        let name = name.trim();
                        if name == "all" {
                            mask = u8::MAX;
                            continue;
                        }
                        let kind = ALL_KINDS
                            .iter()
                            .find(|kind| kind.name() == name)
                            .ok_or_else(|| format!("unknown kind {name:?}"))?;
                        mask |= kind_bit(*kind);
                    }
                    plan.kinds = mask;
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        let Some(seed) = seed else {
            return Err("plan must set seed=<u64>".to_string());
        };
        plan.seed = seed;
        Ok(plan)
    }
}

/// One SplitMix64 output for the given state word — the whole schedule
/// is this function over (seed, seam, per-seam counter).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The armed plane's shared state: the plan plus per-seam draw counters
/// and the two lifetime statistics counters.
#[derive(Debug)]
struct PlaneState {
    plan: FaultPlan,
    draws: [AtomicU64; OP_COUNT],
    injected: AtomicU64,
    retries: AtomicU64,
}

/// The fault-injection seam every hardened I/O call consults. Cheap to
/// clone (an `Option<Arc>`), and [`FaultPlane::inject`] is one inline
/// `None` check when disarmed — the fault-free configuration pays
/// nothing measurable.
#[derive(Debug, Clone, Default)]
pub struct FaultPlane(Option<Arc<PlaneState>>);

impl FaultPlane {
    /// The no-op plane: every seam passes straight through.
    #[must_use]
    pub fn disabled() -> FaultPlane {
        FaultPlane(None)
    }

    /// A plane injecting from `plan`'s seeded schedule.
    #[must_use]
    pub fn armed(plan: FaultPlan) -> FaultPlane {
        FaultPlane(Some(Arc::new(PlaneState {
            plan,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        })))
    }

    /// Whether this plane can inject at all.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Draws the schedule at one seam: `Some(kind)` means the caller
    /// must behave as if the operation failed that way. Inline and
    /// branch-free-cheap when disarmed.
    #[inline]
    #[must_use]
    pub fn inject(&self, op: FaultOp) -> Option<FaultKind> {
        let state = self.0.as_ref()?;
        state.draw(op)
    }

    /// Records one transient-error retry (for `ExploreStats::io_retries`).
    pub fn note_retry(&self) {
        if let Some(state) = &self.0 {
            state.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lifetime faults injected through this plane.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Lifetime transient-error retries recorded through this plane.
    #[must_use]
    pub fn io_retries(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.retries.load(Ordering::Relaxed))
    }
}

impl PlaneState {
    fn draw(&self, op: FaultOp) -> Option<FaultKind> {
        if self.plan.ops & op_bit(op) == 0 {
            return None;
        }
        let eligible = self.plan.kinds & op.plausible_kinds();
        if eligible == 0 {
            return None;
        }
        let n = self.draws[op as usize].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_add((op as u64).wrapping_mul(0xa076_1d64_78bd_642f))
                .wrapping_add(n.wrapping_mul(0xe703_7ed1_a0b4_28db)),
        );
        if (h & 1023) >= u64::from(self.plan.rate) {
            return None;
        }
        // Pick the (h >> 32)-th set bit among the eligible kinds.
        let count = u64::from(eligible.count_ones());
        let mut pick = (h >> 32) % count;
        for kind in ALL_KINDS {
            if eligible & kind_bit(kind) != 0 {
                if pick == 0 {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    return Some(kind);
                }
                pick -= 1;
            }
        }
        unreachable!("pick < count_ones(eligible)")
    }
}

/// Runs `op` with bounded retry on transient (EINTR-class) errors,
/// sleeping the fixed [`BACKOFF_MS`] schedule between attempts. The
/// closure must re-establish any positioning state itself (seek, file
/// re-creation): a retried attempt starts from scratch.
pub(crate) fn with_io_retries<T>(
    plane: &FaultPlane,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut last = None;
    for attempt in 0..IO_ATTEMPTS {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if is_transient(&err) => {
                plane.note_retry();
                if attempt + 1 < IO_ATTEMPTS {
                    std::thread::sleep(std::time::Duration::from_millis(
                        BACKOFF_MS[attempt.min(BACKOFF_MS.len() - 1)],
                    ));
                }
                last = Some(err);
            }
            Err(err) => return Err(err),
        }
    }
    Err(last.expect("loop ran IO_ATTEMPTS times"))
}

/// Writes `buf` through the given seam. An injected short or torn fault
/// lands a *real* partial prefix before failing — the damage is
/// physical, not simulated — so retry paths must re-position or recreate
/// the target themselves before the next attempt.
pub(crate) fn faulty_write_all(
    plane: &FaultPlane,
    op: FaultOp,
    writer: &mut impl std::io::Write,
    buf: &[u8],
) -> std::io::Result<()> {
    match plane.inject(op) {
        None => writer.write_all(buf),
        Some(kind @ (FaultKind::Short | FaultKind::Torn)) => {
            writer.write_all(&buf[..buf.len() / 2])?;
            Err(kind.to_io_error())
        }
        Some(kind) => Err(kind.to_io_error()),
    }
}

/// Every way a hardened kernel run can fail *without* panicking. The
/// `Display` strings deliberately match the panic messages the legacy
/// `run`/`load` entry points raised, so message-pinning tests and log
/// scrapers see identical text whichever surface reported the failure.
#[derive(Debug)]
pub enum EngineError {
    /// A spill-file operation failed past its retry budget.
    SpillIo {
        /// The spill file.
        path: PathBuf,
        /// The failing operation: `"create"`, `"write"`, or `"read"`.
        op: &'static str,
        /// The underlying I/O error, rendered.
        msg: String,
    },
    /// The spill directory ran out of space and the degraded resident
    /// frontier exceeded its hard cap.
    SpillExhausted {
        /// The spill directory.
        path: PathBuf,
        /// The resident-byte cap the degraded level exceeded.
        budget: usize,
    },
    /// A checkpoint store I/O operation failed past its retry budget.
    CheckpointIo {
        /// The live checkpoint file.
        path: PathBuf,
        /// The failing operation: `"commit"` or `"read"`.
        op: &'static str,
        /// The underlying I/O error, rendered.
        msg: String,
    },
    /// The checkpoint file is structurally damaged (torn, truncated,
    /// bit-flipped, or not a checkpoint at all). Recovery: re-run the
    /// exploration from scratch.
    CheckpointCorrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What failed to decode or verify.
        what: String,
    },
    /// The checkpoint was written by a different (incompatible) format
    /// version. Recovery: re-run from scratch — layouts do not migrate.
    CheckpointVersion {
        /// The checkpoint file.
        path: PathBuf,
        /// The version found in the file.
        found: u64,
        /// The only version this build reads.
        supported: u64,
    },
    /// The checkpoint was taken under a different run configuration.
    /// Recovery: resume with the original configuration (this is a
    /// caller mistake, not a damaged file).
    CheckpointConfigMismatch {
        /// The checkpoint file.
        path: PathBuf,
        /// The mismatching header field.
        field: String,
        /// The field's value at checkpoint time.
        stored: String,
        /// The resuming run's value.
        current: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::SpillIo { path, op, msg } => match *op {
                "create" => write!(f, "cannot create spill file {}: {msg}", path.display()),
                "read" => write!(f, "spill read from {} failed: {msg}", path.display()),
                _ => write!(f, "spill write to {} failed: {msg}", path.display()),
            },
            EngineError::SpillExhausted { path, budget } => write!(
                f,
                "spill directory {} is out of space and the degraded resident \
                 frontier exceeded its {budget}-byte cap — free disk space or \
                 raise the memory budget",
                path.display()
            ),
            EngineError::CheckpointIo { path, op, msg } => {
                write!(f, "cannot {op} checkpoint {}: {msg}", path.display())
            }
            EngineError::CheckpointCorrupt { path, what } => write!(
                f,
                "corrupt checkpoint {}: {what} — delete the checkpoint directory \
                 to start fresh",
                path.display()
            ),
            EngineError::CheckpointVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "checkpoint {} has format version {found}, but this build \
                 reads only version {supported} — re-run the exploration \
                 from scratch (checkpoint layouts do not migrate)",
                path.display()
            ),
            EngineError::CheckpointConfigMismatch {
                path,
                field,
                stored,
                current,
            } => write!(
                f,
                "checkpoint {} was taken under a different configuration: \
                 {field} was {stored} at checkpoint time but the resuming \
                 run has {current}; resuming would silently change the \
                 answer — resume with the original configuration or delete \
                 the checkpoint directory to start fresh",
                path.display()
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_strings_round_trip_the_grammar() {
        let plan = FaultPlan::parse("seed=42").expect("minimal plan");
        assert_eq!(plan, FaultPlan::seeded(42));
        let plan = FaultPlan::parse("seed=7,rate=128,ops=spill-write+ckpt-rename,kinds=enospc")
            .expect("full plan");
        assert_eq!(
            plan,
            FaultPlan::seeded(7)
                .with_rate(128)
                .with_ops(&[FaultOp::SpillWrite, FaultOp::CkptRename])
                .with_kinds(&[FaultKind::Enospc])
        );
        assert_eq!(
            FaultPlan::parse("seed=1,ops=all,kinds=all").expect("all"),
            FaultPlan::seeded(1)
        );
    }

    #[test]
    fn malformed_plans_are_rejected_with_the_offender_named() {
        for (text, needle) in [
            ("", "seed"),
            ("rate=5", "seed"),
            ("seed=x", "u64"),
            ("seed=1,rate=2000", "1024"),
            ("seed=1,ops=no-such-op", "no-such-op"),
            ("seed=1,kinds=zap", "zap"),
            ("seed=1,bogus=2", "bogus"),
            ("seed=1,norate", "key=value"),
        ] {
            let err = FaultPlan::parse(text).expect_err(text);
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn disarmed_planes_never_inject_and_count_nothing() {
        let plane = FaultPlane::disabled();
        for op in ALL_OPS {
            assert_eq!(plane.inject(op), None);
        }
        plane.note_retry();
        assert_eq!(plane.faults_injected(), 0);
        assert_eq!(plane.io_retries(), 0);
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let draw_all = |seed: u64| -> Vec<Option<FaultKind>> {
            let plane = FaultPlane::armed(FaultPlan::seeded(seed).with_rate(256));
            (0..200)
                .map(|_| plane.inject(FaultOp::SpillWrite))
                .collect()
        };
        let a = draw_all(1);
        assert_eq!(a, draw_all(1), "same seed, same schedule");
        assert_ne!(a, draw_all(2), "different seed, different schedule");
        let hits = a.iter().flatten().count();
        assert!(hits > 10, "rate 256/1024 over 200 draws injected {hits}");
        assert!(hits < 120, "rate 256/1024 over 200 draws injected {hits}");
    }

    #[test]
    fn injections_respect_op_and_kind_masks() {
        let plane = FaultPlane::armed(
            FaultPlan::seeded(9)
                .with_rate(1024)
                .with_ops(&[FaultOp::CkptRename])
                .with_kinds(&[FaultKind::Eintr]),
        );
        assert_eq!(plane.inject(FaultOp::SpillWrite), None, "untargeted op");
        assert_eq!(plane.inject(FaultOp::CkptRename), Some(FaultKind::Eintr));
        // Torn is implausible for a rename: masked to Torn only, the
        // targeted seam goes quiet rather than injecting nonsense.
        let torn_only = FaultPlane::armed(
            FaultPlan::seeded(9)
                .with_rate(1024)
                .with_ops(&[FaultOp::CkptRename])
                .with_kinds(&[FaultKind::Torn]),
        );
        assert_eq!(torn_only.inject(FaultOp::CkptRename), None);
        assert_eq!(torn_only.faults_injected(), 0);
    }

    #[test]
    fn retry_helper_retries_transients_and_propagates_hard_errors() {
        let plane = FaultPlane::armed(FaultPlan::seeded(3));
        let mut attempts = 0;
        let out: std::io::Result<u32> = with_io_retries(&plane, || {
            attempts += 1;
            if attempts < 3 {
                Err(FaultKind::Eintr.to_io_error())
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.expect("third attempt succeeds"), 99);
        assert_eq!(attempts, 3);
        assert_eq!(plane.io_retries(), 2);

        let mut attempts = 0;
        let out: std::io::Result<u32> = with_io_retries(&plane, || {
            attempts += 1;
            Err(FaultKind::Enospc.to_io_error())
        });
        assert!(is_out_of_space(&out.expect_err("hard error propagates")));
        assert_eq!(attempts, 1, "ENOSPC is not transient");

        let mut attempts = 0;
        let out: std::io::Result<u32> = with_io_retries(&plane, || {
            attempts += 1;
            Err(FaultKind::Eintr.to_io_error())
        });
        assert!(is_transient(&out.expect_err("budget exhausts")));
        assert_eq!(attempts, IO_ATTEMPTS);
    }

    #[test]
    fn error_kind_mapping_matches_real_errnos() {
        assert!(is_out_of_space(&FaultKind::Enospc.to_io_error()));
        assert!(is_transient(&FaultKind::Eintr.to_io_error()));
        assert!(is_transient(&FaultKind::Short.to_io_error()));
        assert!(!is_transient(&FaultKind::Torn.to_io_error()));
        assert!(!is_transient(&FaultKind::Reset.to_io_error()));
        assert_eq!(
            FaultKind::Reset.to_io_error().kind(),
            std::io::ErrorKind::ConnectionReset
        );
    }
}
