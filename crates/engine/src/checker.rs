//! The exploration driver: parallel frontier BFS and sequential DFS.

use std::collections::hash_map::Entry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::checkpoint::{CheckpointStore, LoadedCheckpoint, RunHeader};
use crate::codec::{DeltaCodec, StateCodec};
use crate::detmap::{DetHashMap, DetHashSet};
use crate::digest::Fingerprinter;
use crate::fault::{EngineError, FaultPlan, FaultPlane};
use crate::knobs;
use crate::space::{Expansion, StateSpace};
use crate::spill::{SpillCodec, SpillConfig, SpillFrontier};
use crate::stats::{ExploreStats, Stopwatch};
use crate::visited::ShardedVisited;
use crate::Digest;

/// Exploration backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Frontier-based breadth-first search. Each BFS level is expanded by
    /// up to `threads` workers pulling chunks from a shared queue, and
    /// deduplicated against a [`ShardedVisited`] set whose shards are
    /// owned by digest range (large levels dedup in parallel, lock-free).
    /// Results are merged in frontier order and every digest's shard and
    /// insert position depend only on the frontier contents, so
    /// statistics, findings, and verdicts are deterministic regardless of
    /// thread scheduling, thread count, and shard count.
    ParallelBfs {
        /// Worker threads (clamped to at least 1; with 1 the level loop
        /// runs inline with no thread spawns).
        threads: usize,
    },
    /// Sequential depth-first search. Uses the same fingerprint-only
    /// visited set; states reached again at a strictly smaller depth are
    /// re-expanded (replacing their earlier findings), so the set of
    /// explored states, `configs`, and the finding multiset all equal the
    /// BFS backend's on any depth-bounded space. DFS may conservatively
    /// report `truncated` where BFS does not (a state first met at the
    /// horizon via a long path is later re-expanded shallower), and its
    /// `transitions`/`dedup_hits` counters include re-expansions.
    SequentialDfs,
}

/// Result of a [`Checker`] run: everything the spaces reported, plus
/// exploration statistics.
#[derive(Debug, Clone)]
pub struct KernelOutcome<F> {
    /// Findings in deterministic exploration order.
    pub findings: Vec<F>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

/// The exploration driver.
///
/// Dedupes states on their 128-bit fingerprints only — the visited set
/// holds 16-byte digests (plus a minimal depth in the DFS backend), never
/// full states — and drives one of the [`Backend`]s over a [`StateSpace`].
#[derive(Debug, Clone)]
pub struct Checker {
    backend: Backend,
    config_budget: Option<usize>,
    /// Explicit shard count for the BFS visited set; `None` defers to the
    /// `SLX_ENGINE_SHARDS` environment variable, then to an autodetected
    /// default sized to the thread count.
    shards: Option<usize>,
    /// Explicit frontier memory budget in bytes: `Some(0)` pins spilling
    /// off, `Some(n)` on; `None` defers to `SLX_ENGINE_MEM_BUDGET`.
    mem_budget: Option<usize>,
    /// Explicit spill directory; `None` defers to `SLX_ENGINE_SPILL_DIR`,
    /// then to the system temp directory.
    spill_dir: Option<PathBuf>,
    /// Explicit spill-chunk record encoding; `None` defers to
    /// `SLX_ENGINE_SPILL_CODEC` (`delta`, `plain`, or `replay`), then to
    /// [`SpillCodec::Delta`].
    spill_codec: Option<SpillCodec>,
    /// Explicit symmetry-reduction request: `Some(false)` pins reduction
    /// off, `Some(true)` asks for it; `None` defers to
    /// `SLX_ENGINE_SYMMETRY`. Reduction only activates on spaces that
    /// advertise [`StateSpace::has_symmetry_reduction`].
    symmetry: Option<bool>,
    /// Explicit checkpoint-store directory; `None` defers to
    /// `SLX_ENGINE_CHECKPOINT_DIR` (checkpointing is off when neither is
    /// set).
    checkpoint_dir: Option<PathBuf>,
    /// Explicit checkpoint cadence in BFS levels; `None` defers to
    /// `SLX_ENGINE_CHECKPOINT_EVERY`, then to every level.
    checkpoint_every: Option<usize>,
    /// Directory holding the committed checkpoint a run should resume
    /// from ([`Checker::resume`]); `None` starts fresh.
    resume_from: Option<PathBuf>,
    /// Explicit fault-injection plan; `None` defers to
    /// `SLX_ENGINE_FAULT_PLAN` (fault injection is off when neither is
    /// set).
    fault_plan: Option<FaultPlan>,
}

/// Fingerprint of one exploration's identity: the space's Rust type name
/// plus the exact digests of the initial states, in order. Persisted in
/// the checkpoint header so a resume under a different space or different
/// initial states fails loudly instead of silently exploring nonsense.
fn space_fingerprint<Sp: StateSpace>(space: &Sp, initial: &[Sp::State]) -> u128 {
    use std::hash::Hasher as _;
    let mut fp = Fingerprinter::new();
    fp.write(std::any::type_name::<Sp>().as_bytes());
    fp.write_u8(0);
    for state in initial {
        fp.write_u128(space.digest(state).0);
    }
    fp.digest().0
}

/// Minimum frontier size before a BFS level is worth spawning workers for:
/// below this, thread startup dominates the expansion work.
const PAR_MIN_FRONTIER: usize = 128;

/// Minimum successors in a level before the dedup/merge phase is worth
/// sharding across workers: below this, inserting into the shards inline
/// (still deterministic, still sharded) beats spawning threads.
const PAR_MIN_DEDUP: usize = 4096;

impl Checker {
    /// A checker on the parallel BFS backend, sized to the machine
    /// (`std::thread::available_parallelism`, overridable via the
    /// `SLX_ENGINE_THREADS` environment variable; visited-set shard count
    /// via `SLX_ENGINE_SHARDS`).
    ///
    /// # Panics
    ///
    /// Panics on a malformed `SLX_ENGINE_THREADS` value (see
    /// [`knobs::Knob::usize_value`]): a typo silently falling back to
    /// autodetection would run a pinned CI arm on the wrong thread count.
    #[must_use]
    pub fn auto() -> Self {
        let threads = knobs::SLX_ENGINE_THREADS
            .usize_value()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Checker::parallel_bfs(threads)
    }

    /// A checker on the parallel BFS backend with an explicit thread count.
    #[must_use]
    pub fn parallel_bfs(threads: usize) -> Self {
        Checker {
            backend: Backend::ParallelBfs {
                threads: threads.max(1),
            },
            config_budget: None,
            shards: None,
            mem_budget: None,
            spill_dir: None,
            spill_codec: None,
            symmetry: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume_from: None,
            fault_plan: None,
        }
    }

    /// A checker on the sequential DFS backend.
    #[must_use]
    pub fn sequential_dfs() -> Self {
        Checker {
            backend: Backend::SequentialDfs,
            config_budget: None,
            shards: None,
            mem_budget: None,
            spill_dir: None,
            spill_codec: None,
            symmetry: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            resume_from: None,
            fault_plan: None,
        }
    }

    /// Caps the number of states expanded; hitting the cap marks the run
    /// truncated (used by budgeted valence queries).
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.config_budget = Some(budget);
        self
    }

    /// Pins the BFS visited set to `shards` shards (rounded up to a power
    /// of two). Verdicts, findings, and counts are shard-count
    /// independent; this knob only trades merge-phase parallelism against
    /// per-shard footprint. Without it the count comes from the
    /// `SLX_ENGINE_SHARDS` environment variable, falling back to an
    /// autodetected default sized to the thread count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// The BFS visited-set shard count this checker will use with
    /// `threads` workers: explicit [`Checker::with_shards`] value, else
    /// `SLX_ENGINE_SHARDS`, else four shards per thread (so the merge
    /// phase keeps every worker busy even with uneven shard occupancy),
    /// capped at 256 on the autodetected path — past that the per-shard
    /// sets are too sparse to help; the explicit knobs go up to 4096.
    ///
    /// # Panics
    ///
    /// Panics on a malformed `SLX_ENGINE_SHARDS` value (see
    /// [`knobs::Knob::usize_value`]).
    #[must_use]
    pub fn resolve_shards(&self, threads: usize) -> usize {
        self.shards
            .or_else(|| knobs::SLX_ENGINE_SHARDS.usize_value())
            .unwrap_or_else(|| threads.max(1).saturating_mul(4).min(256))
    }

    /// Bounds the BFS frontier's resident footprint to roughly `bytes`
    /// bytes of encoded states: cold frontier chunks beyond the budget
    /// are serialized ([`crate::StateCodec`] records, delta-encoded by
    /// default — see [`Checker::with_spill_codec`]) to self-cleaning temp files and
    /// streamed back during level expansion, so arbitrarily wide levels
    /// explore in bounded memory. Chunk boundaries depend only on encoded
    /// sizes and chunks replay in frontier order, so verdicts, findings,
    /// and every [`ExploreStats`] count are identical with spilling on or
    /// off (pinned by the differential spill matrix).
    ///
    /// `bytes = 0` pins spilling **off**, overriding the
    /// `SLX_ENGINE_MEM_BUDGET` environment variable; without this knob
    /// that variable supplies the budget. Spill files go to
    /// [`Checker::with_spill_dir`], else `SLX_ENGINE_SPILL_DIR`, else the
    /// system temp directory. The DFS backend never spills (its stack is
    /// depth-bounded, not level-width-bounded).
    #[must_use]
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Pins the directory spill files are created in (created if absent).
    /// Without it the `SLX_ENGINE_SPILL_DIR` environment variable is
    /// honored, falling back to the system temp directory.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Pins the spill-chunk record encoding: [`SpillCodec::Delta`] (the
    /// default — records delta-encode against their chunk predecessor,
    /// cutting spill volume and decode cost on sibling-heavy levels),
    /// [`SpillCodec::Plain`] (every record self-contained; the
    /// comparison arm), or [`SpillCodec::Replay`] (records store parent
    /// states plus child action indices and the replay *regenerates* the
    /// children by re-expanding the parent — no per-child codec work;
    /// the fastest arm wherever expansion is cheaper than decoding,
    /// which the Figure 1a consensus workload's deep rows are). Verdicts,
    /// findings, and every count except the spill-volume and
    /// replay-accounting statistics are identical under all three.
    /// Without this knob the `SLX_ENGINE_SPILL_CODEC` environment
    /// variable (`delta` / `plain` / `replay`) is honored, falling back
    /// to delta.
    #[must_use]
    pub fn with_spill_codec(mut self, codec: SpillCodec) -> Self {
        self.spill_codec = Some(codec);
        self
    }

    /// The spill-chunk record encoding this checker will use.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `SLX_ENGINE_SPILL_CODEC` value: the
    /// variable exists to pin comparison arms, and a typo silently
    /// falling back to the default would make e.g. a "plain codec" CI
    /// arm green-light while re-testing the delta path.
    #[must_use]
    pub fn resolve_spill_codec(&self) -> SpillCodec {
        self.spill_codec
            .or_else(|| match knobs::SLX_ENGINE_SPILL_CODEC.choice_value() {
                Some("plain") => Some(SpillCodec::Plain),
                Some("delta") => Some(SpillCodec::Delta),
                Some("replay") => Some(SpillCodec::Replay),
                _ => None,
            })
            .unwrap_or_default()
    }

    /// Pins symmetry reduction on or off: when on (and the space
    /// advertises [`StateSpace::has_symmetry_reduction`]), the kernel
    /// dedups on [`StateSpace::canonical_digest`] instead of the exact
    /// digest, so each symmetry orbit — e.g. every process-permutation
    /// image of a configuration — is explored exactly once. Verdicts and
    /// findings are preserved by the canonicalizer's soundness contract
    /// (pinned by the symmetry differential suites); raw counts
    /// (`configs`, `transitions`, `dedup_hits`, occupancies) legitimately
    /// shrink. `with_symmetry(false)` overrides the `SLX_ENGINE_SYMMETRY`
    /// environment variable — reference arms pin the unreduced kernel
    /// this way; without this knob the variable decides.
    #[must_use]
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = Some(on);
        self
    }

    /// Whether this checker will *ask* for symmetry reduction (it still
    /// only activates on spaces advertising the capability): the explicit
    /// [`Checker::with_symmetry`] value, else `SLX_ENGINE_SYMMETRY`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `SLX_ENGINE_SYMMETRY` value, for the
    /// same reason [`Checker::resolve_spill_codec`] does: the variable
    /// pins CI arms, and a typo silently meaning "off" would green-light
    /// a "reduced" arm that re-tested the unreduced path.
    #[must_use]
    pub fn resolve_symmetry(&self) -> bool {
        self.symmetry
            .unwrap_or_else(|| knobs::SLX_ENGINE_SYMMETRY.flag_value().unwrap_or(false))
    }

    /// The frontier memory budget this checker will spill under, if any:
    /// the explicit [`Checker::with_mem_budget`] value (`0` meaning
    /// "never spill"), else a positive `SLX_ENGINE_MEM_BUDGET` (`0`
    /// likewise pinning spilling off).
    ///
    /// # Panics
    ///
    /// Panics on a malformed `SLX_ENGINE_MEM_BUDGET` value (see
    /// [`knobs::Knob::usize_value`]; zero is allowed here — it is the
    /// documented "spilling off" pin, not a typo).
    #[must_use]
    pub fn resolve_mem_budget(&self) -> Option<usize> {
        match self.mem_budget {
            Some(0) => None,
            Some(bytes) => Some(bytes),
            None => knobs::SLX_ENGINE_MEM_BUDGET
                .usize_value()
                .filter(|&n| n > 0),
        }
    }

    /// Arms the deterministic fault-injection plane with an explicit
    /// [`FaultPlan`]: the BFS backend's spill, checkpoint, and retry
    /// paths then draw injected I/O faults (ENOSPC, EINTR, short and
    /// torn transfers) from the plan's seeded schedule. This is the
    /// robustness suites' hook; production runs never set it. It
    /// overrides the `SLX_ENGINE_FAULT_PLAN` environment variable;
    /// without either, the plane is disarmed and every fault seam is an
    /// inline no-op.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The fault-injection plane this checker will run under: armed with
    /// the explicit [`Checker::with_fault_plan`] plan, else with a plan
    /// parsed from `SLX_ENGINE_FAULT_PLAN`, else disarmed.
    ///
    /// # Panics
    ///
    /// Panics on a malformed `SLX_ENGINE_FAULT_PLAN` value, for the same
    /// reason [`Checker::resolve_spill_codec`] does: the variable pins
    /// fault-soak CI arms, and a typo silently meaning "off" would
    /// green-light a soak arm that injected nothing.
    #[must_use]
    pub fn resolve_fault_plane(&self) -> FaultPlane {
        let plan = self.fault_plan.clone().or_else(|| {
            knobs::SLX_ENGINE_FAULT_PLAN.text_value().map(|text| {
                FaultPlan::parse(&text)
                    .unwrap_or_else(|err| panic!("malformed SLX_ENGINE_FAULT_PLAN: {err}"))
            })
        });
        match plan {
            Some(plan) => FaultPlane::armed(plan),
            None => FaultPlane::disabled(),
        }
    }

    /// Turns on crash-tolerant checkpointing: every `every_n_levels` BFS
    /// levels (clamped to at least 1) the checker commits its complete
    /// resumable image — visited digests, frontier, findings, counters,
    /// and a validated run-config header — to `dir` with atomic
    /// rename-commit semantics (see [`CheckpointStore`]). A later
    /// [`Checker::resume`] on the same directory continues the run
    /// bit-identically in verdict, state counts, and truncation flags.
    /// Without this knob the `SLX_ENGINE_CHECKPOINT_DIR` and
    /// `SLX_ENGINE_CHECKPOINT_EVERY` environment variables are honored.
    /// The DFS backend ignores checkpointing (its stack is depth-bounded
    /// and never persisted).
    #[must_use]
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, every_n_levels: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = Some(every_n_levels.max(1));
        self
    }

    /// Resumes the next run from the committed checkpoint in `dir`
    /// instead of the initial states. The checkpoint's run-config header
    /// is validated field by field against this checker's resolved
    /// configuration and the space + initial states handed to
    /// [`Checker::run`] — any mismatch is a hard error ([`RunHeader`]'s
    /// validation), never a silently different answer. Checkpointing
    /// continues into the same directory unless
    /// [`Checker::with_checkpoint`] pinned another one. Use
    /// [`CheckpointStore::exists`] as the "resume or start fresh?" probe.
    ///
    /// Resuming requires the parallel BFS backend; the run panics on the
    /// DFS backend, which has no checkpoint store.
    #[must_use]
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        if self.checkpoint_dir.is_none() {
            self.checkpoint_dir = Some(dir.clone());
        }
        self.resume_from = Some(dir);
        self
    }

    /// The checkpoint store this checker will commit through, if any:
    /// the explicit [`Checker::with_checkpoint`] directory, else
    /// `SLX_ENGINE_CHECKPOINT_DIR`; cadence from the explicit value, else
    /// `SLX_ENGINE_CHECKPOINT_EVERY`, else every level. Creates the
    /// directory if needed.
    ///
    /// # Panics
    ///
    /// Panics on a malformed `SLX_ENGINE_CHECKPOINT_EVERY` value (see
    /// [`knobs::Knob::usize_value`]) or an uncreatable directory.
    fn resolve_checkpoint(&self) -> Option<CheckpointStore> {
        let dir = self
            .checkpoint_dir
            .clone()
            .or_else(|| knobs::SLX_ENGINE_CHECKPOINT_DIR.path_value())?;
        let every = self
            .checkpoint_every
            .or_else(|| knobs::SLX_ENGINE_CHECKPOINT_EVERY.usize_value())
            .unwrap_or(1);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|err| panic!("cannot create checkpoint dir {}: {err}", dir.display()));
        Some(CheckpointStore::new(dir, every))
    }

    /// Resolves the spill configuration for one BFS run, creating the
    /// spill directory if needed. Each of the two frontiers alive at a
    /// time (level being consumed, level being built) keeps its encode
    /// buffer below half the budget.
    fn resolve_spill(&self) -> Option<SpillConfig> {
        let budget = self.resolve_mem_budget()?;
        let dir = self
            .spill_dir
            .clone()
            .or_else(|| knobs::SLX_ENGINE_SPILL_DIR.path_value())
            .unwrap_or_else(std::env::temp_dir);
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|err| panic!("cannot create spill dir {}: {err}", dir.display()));
        // The 16-byte floor keeps a degenerate budget from flushing a
        // chunk per record; it is low because records are small now that
        // digests are not stored (a grid-walk record is two varint
        // bytes), and the test suites rely on tiny budgets spilling.
        Some(SpillConfig::new(
            (budget / 2).max(16),
            self.resolve_spill_codec(),
            dir,
        ))
    }

    /// The configured backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Explores the space exhaustively from `initial`.
    ///
    /// # Panics
    ///
    /// Panics on an I/O failure the hardened spill/checkpoint paths
    /// could not absorb (see [`Checker::try_run`] for the fallible
    /// form and [`EngineError`] for what can go wrong).
    pub fn run<Sp>(&self, space: &Sp, initial: Vec<Sp::State>) -> KernelOutcome<Sp::Finding>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        self.run_until(space, initial, |_| false)
    }

    /// [`Checker::run`], returning the typed [`EngineError`] instead of
    /// panicking when the exploration's I/O gives out: transient spill
    /// and checkpoint errors are retried with bounded backoff, an
    /// out-of-space spill directory degrades to a capped resident
    /// frontier, and only a fault that survives all of that surfaces
    /// here — with the path and operation named, never a torn image or a
    /// leaked spill file.
    pub fn try_run<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
    ) -> Result<KernelOutcome<Sp::Finding>, EngineError>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        self.try_run_until(space, initial, |_| false)
    }

    /// Explores the space from `initial`, stopping early once `stop`
    /// returns `true` on the findings accumulated so far. `stop` is
    /// invoked (in deterministic exploration order) after each expansion
    /// that contributed at least one new finding.
    pub fn run_until<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        stop: impl FnMut(&[Sp::Finding]) -> bool,
    ) -> KernelOutcome<Sp::Finding>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        self.run_observed(space, initial, stop, |_, _| true)
    }

    /// [`Checker::run_until`] in the fallible form: see
    /// [`Checker::try_run`].
    pub fn try_run_until<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        stop: impl FnMut(&[Sp::Finding]) -> bool,
    ) -> Result<KernelOutcome<Sp::Finding>, EngineError>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        self.try_run_observed(space, initial, stop, |_, _| true)
    }

    /// [`Checker::run_until`] with a progress observer: `progress` is
    /// invoked with the current depth and a lifetime statistics snapshot
    /// (counters so far, `elapsed` filled in) at every BFS level boundary
    /// — after the level's checkpoint (if due) has committed, so a
    /// cancellation never outruns the last durable image — and
    /// periodically (every 1024 expansions) on the DFS backend. Returning
    /// `false` cancels the run: it stops before expanding further states
    /// and reports `stopped_early`, exactly like a firing stop predicate.
    /// A checkpointed run cancelled this way resumes from its last
    /// committed image; this is the long-running check service's
    /// progress-streaming and per-request cancellation hook.
    pub fn run_observed<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        stop: impl FnMut(&[Sp::Finding]) -> bool,
        progress: impl FnMut(usize, &ExploreStats) -> bool,
    ) -> KernelOutcome<Sp::Finding>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        self.try_run_observed(space, initial, stop, progress)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// [`Checker::run_observed`] in the fallible form: see
    /// [`Checker::try_run`].
    pub fn try_run_observed<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        stop: impl FnMut(&[Sp::Finding]) -> bool,
        progress: impl FnMut(usize, &ExploreStats) -> bool,
    ) -> Result<KernelOutcome<Sp::Finding>, EngineError>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        match self.backend {
            Backend::ParallelBfs { threads } => {
                self.run_bfs(space, initial, threads, stop, progress)
            }
            Backend::SequentialDfs => {
                assert!(
                    self.resume_from.is_none(),
                    "Checker::resume requires the parallel BFS backend: the DFS \
                     backend has no checkpoint store, so \"resuming\" it would \
                     silently restart from scratch"
                );
                // DFS never spills and never checkpoints, so it has no
                // fallible I/O to report.
                Ok(self.run_dfs(space, initial, stop, progress))
            }
        }
    }

    fn run_bfs<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        threads: usize,
        mut stop: impl FnMut(&[Sp::Finding]) -> bool,
        mut progress: impl FnMut(usize, &ExploreStats) -> bool,
    ) -> Result<KernelOutcome<Sp::Finding>, EngineError>
    where
        Sp: StateSpace + Sync,
        Sp::State: DeltaCodec,
        Sp::Finding: StateCodec,
    {
        let start = Stopwatch::start();
        // The fault-injection plane (disarmed outside the robustness
        // suites — every seam is then an inline no-op) threads into the
        // spill pool and the checkpoint store, the two places this run
        // touches a file system.
        let plane = self.resolve_fault_plane();
        let spill = self
            .resolve_spill()
            .map(|config| config.with_fault_plane(plane.clone()));
        let symmetry = self.resolve_symmetry() && space.has_symmetry_reduction();
        // The checkpoint store (if any) and the run-config header every
        // committed image carries — and every resume is validated
        // against. Built only when checkpointing or resuming is active:
        // the fingerprint digests the initial states, work a plain run
        // never needs.
        let store = self
            .resolve_checkpoint()
            .map(|store| store.with_fault_plane(plane.clone()));
        // Fingerprint-only visited set, sharded by digest range. BFS
        // enqueues every state at its minimal depth by construction, so no
        // depth needs to be stored. Under symmetry reduction it holds
        // *canonical* digests — one entry per orbit.
        let mut visited = ShardedVisited::new(self.resolve_shards(threads));
        let shard_count = visited.shard_count();
        let header = (store.is_some() || self.resume_from.is_some()).then(|| RunHeader {
            space_fingerprint: space_fingerprint(space, &initial),
            codec: self.resolve_spill_codec(),
            symmetry,
            shards: shard_count,
            config_budget: self.config_budget,
            mem_budget: self.resolve_mem_budget(),
        });
        let mut stats = ExploreStats {
            threads,
            shards: shard_count,
            mem_budget: self.resolve_mem_budget(),
            symmetry,
            ..ExploreStats::default()
        };
        let mut findings: Vec<Sp::Finding> = Vec::new();
        // Exact-digest side set, maintained only under symmetry reduction,
        // so `orbit_hits` can tell a *symmetry* dedup (canonical digest
        // seen, exact digest fresh — a distinct state collapsed into an
        // explored orbit) from an ordinary re-encounter of the same state.
        // Canonical and exact digests live in different hash domains, so
        // comparing their values is meaningless; a second set is the only
        // exact accounting.
        let mut exact_seen: DetHashSet<u128> = DetHashSet::default();
        // Per-shard counts of digests *accepted by the deterministic
        // merge* (not raw set sizes): the batched path pre-inserts a whole
        // level before merging, so on an early stop the set itself may
        // hold successors the merge never reached — counting acceptances
        // keeps the reported occupancy identical across thread counts and
        // dedup paths.
        let mut occupancy = vec![0usize; shard_count];

        // Parents re-expanded by replay regeneration across the whole run
        // (a `Cell` so the per-level regenerator closures can share it
        // with the loop below).
        let replayed = std::cell::Cell::new(0usize);
        let mut frontier: SpillFrontier<Sp::State> = SpillFrontier::new(spill.clone());
        let mut depth: usize = 0;
        // Wall-clock already spent by the segments a resumed run
        // continues (zero for a fresh run). `stats.elapsed` always
        // reports `prior_elapsed + start.elapsed()` — the *lifetime*
        // wall-clock — so derived rates divide lifetime configs by
        // lifetime time instead of lying after a resume.
        let mut prior_elapsed = std::time::Duration::default();
        // The level a resumed run re-entered at: its checkpoint is already
        // on disk, so the cadence check below skips rewriting it.
        let mut resumed_at: Option<usize> = None;
        if let Some(dir) = &self.resume_from {
            // Restore the committed image instead of seeding `initial`:
            // visited set, exact-seen side set, findings, counters, and
            // the frontier about to be expanded. The header validation
            // inside `load` guarantees the image belongs to this exact
            // space, configuration, and initial states.
            let expected = header.as_ref().expect("resuming implies a header");
            let loaded: LoadedCheckpoint<Sp::State, Sp::Finding> =
                CheckpointStore::try_load(dir, expected)?;
            visited = ShardedVisited::from_snapshot(loaded.visited);
            exact_seen = loaded.exact_seen.into_iter().collect();
            findings = loaded.findings;
            depth = loaded.depth;
            resumed_at = Some(depth);
            occupancy.clone_from(&loaded.stats.shard_occupancy);
            replayed.set(loaded.stats.replayed_parents);
            prior_elapsed = loaded.stats.elapsed;
            stats = ExploreStats {
                threads,
                shards: shard_count,
                mem_budget: self.resolve_mem_budget(),
                symmetry,
                resumed_from_depth: Some(depth),
                shard_occupancy: Vec::new(),
                elapsed: std::time::Duration::default(),
                ..loaded.stats
            };
            for state in loaded.frontier {
                frontier.push(state)?;
            }
        } else {
            for state in initial {
                let digest = if symmetry {
                    exact_seen.insert(space.digest(&state).0);
                    space.canonical_digest(&state)
                } else {
                    space.digest(&state)
                };
                if visited.insert(digest.0) {
                    occupancy[visited.shard_of(digest.0)] += 1;
                    frontier.push(state)?;
                }
            }
        }
        // Fault accounting already carried by the resumed image (zero for
        // a fresh run): the plane's own counters start at zero each
        // segment, so every report below adds them to these priors —
        // exactly the `prior_elapsed` discipline, applied to fault
        // counters.
        let prior_faults = stats.faults_injected;
        let prior_retries = stats.io_retries;
        'levels: while !frontier.is_empty() {
            // Commit a checkpoint at the configured level-boundary
            // cadence, before any of this level's work: the image then
            // means "about to expand level `depth`", and a resume
            // re-enters the loop right here, recomputing the budget
            // truncation and peak accounting below from restored state —
            // so resume ≡ uninterrupted run, bit for bit. The level a
            // resume re-entered at already has its image on disk and is
            // skipped.
            if let Some(store) = &store {
                if depth > 0 && depth.is_multiple_of(store.every()) && resumed_at != Some(depth) {
                    let parent_depth = depth - 1;
                    let snapshot = frontier.snapshot_states(
                        &|parent: &Sp::State, indices: &[usize], out: &mut Vec<Sp::State>| {
                            regenerate(space, parent, parent_depth, indices, out);
                        },
                    )?;
                    let mut exact: Vec<u128> = exact_seen.iter().copied().collect();
                    exact.sort_unstable();
                    let mut saved = stats.clone();
                    saved.replayed_parents = replayed.get();
                    saved.shard_occupancy.clone_from(&occupancy);
                    // Lifetime wall-clock: the image carries everything
                    // spent so far, across every earlier segment, so a
                    // resume keeps accumulating instead of restarting
                    // the clock (and the derived states/sec rate).
                    saved.elapsed = prior_elapsed + start.elapsed();
                    // The image counts itself, so restoring it leaves the
                    // same lifetime total the uninterrupted run carries.
                    saved.checkpoints_written += 1;
                    // Lifetime fault accounting, like `elapsed` above.
                    // Faults drawn *during* this commit land in the next
                    // image (and in the live stats), not this one.
                    saved.faults_injected = prior_faults + plane.faults_injected();
                    saved.io_retries = prior_retries + plane.io_retries();
                    // The commit is synchronous: a background-thread
                    // fdatasync was measured to *cost* throughput on
                    // single-core hosts (the committer steals scheduler
                    // slices from the exploration thread), and a
                    // detached writer outliving an unwound run is a
                    // hazard besides. The fdatasync is the whole cost —
                    // encode and snapshot measure as free on tmpfs.
                    let image = CheckpointStore::encode_image(
                        header.as_ref().expect("checkpointing implies a header"),
                        depth,
                        &saved,
                        &findings,
                        &visited.snapshot(),
                        &exact,
                        &snapshot,
                    );
                    store.commit_bytes(&image)?;
                    stats.checkpoints_written += 1;
                }
            }
            // Progress observation, after the level's checkpoint (if any)
            // committed: a cancellation here leaves the freshest durable
            // image, so a cancelled-then-resumed run loses no work.
            stats.elapsed = prior_elapsed + start.elapsed();
            stats.faults_injected = prior_faults + plane.faults_injected();
            stats.io_retries = prior_retries + plane.io_retries();
            if !progress(depth, &stats) {
                stats.stopped_early = true;
                break 'levels;
            }
            // Budget: expand at most `allowed` more states, ever. The
            // truncation point is a state count, so it cuts the same
            // frontier prefix whether the tail is resident or spilled.
            // Accumulate the consumed frontier's spill accounting up
            // front, so even a budget truncation to emptiness below
            // reports the chunks this frontier already wrote.
            stats.spilled_chunks += frontier.spilled_chunks();
            stats.spilled_bytes += frontier.spilled_bytes();
            stats.peak_resident_bytes = stats.peak_resident_bytes.max(frontier.peak_window_bytes());
            // A frontier that hit ENOSPC and finished resident-degraded
            // counts its level once, here, when the level is consumed.
            stats.degraded_levels += usize::from(frontier.degraded());
            if let Some(budget) = self.config_budget {
                let allowed = budget.saturating_sub(stats.configs);
                if frontier.len() > allowed {
                    frontier.truncate(allowed);
                    stats.truncated = true;
                    if frontier.is_empty() {
                        break;
                    }
                }
            }
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());

            // Replay-codec chunks regenerate their states by re-expanding
            // the stored parents. The parents of this level's states were
            // expanded at the previous depth; re-expansion must use the
            // same depth to reproduce the push order the indices refer to
            // (`saturating_sub`: the depth-0 frontier holds only literal
            // records, so the value is never consulted there).
            let parent_depth = depth.saturating_sub(1);
            let regen = |parent: &Sp::State, indices: &[usize], out: &mut Vec<Sp::State>| {
                replayed.set(replayed.get() + 1);
                regenerate(space, parent, parent_depth, indices, out);
            };

            // Stream the level back chunk by chunk (one chunk, the whole
            // level, without a memory budget): the peak resident decoded
            // state count stays bounded by the chunk size while the next
            // frontier spills its own cold chunks as it grows. Chunks
            // replay in frontier order, so the merge below sees exactly
            // the sequence the unspilled kernel would.
            let mut next: SpillFrontier<Sp::State> = SpillFrontier::new(spill.clone());
            let mut chunks = frontier.into_chunks();
            // A parent's accepted successors, grouped so the frontier can
            // store one replay record per parent (drained by
            // `push_group`; reused across parents to avoid churn).
            let mut accepted: Vec<Sp::State> = Vec::new();
            let mut accepted_indices: Vec<usize> = Vec::new();
            while let Some(chunk) = chunks.next_chunk(&regen)? {
                stats.peak_resident_states = stats.peak_resident_states.max(chunk.len());
                let expansions = expand_level(space, &chunk, depth, threads, symmetry);

                // Large chunks dedup in parallel before the merge:
                // successors are routed to their shards in frontier order,
                // then each worker inserts its own contiguous shard range
                // lock-free. Routing depends only on digests and inserts
                // follow frontier order within each shard, so the
                // fresh/duplicate bits — and everything downstream of
                // them — match the inline path exactly, for every thread,
                // shard, and chunk partition.
                let total_succs: usize = expansions.iter().map(|parts| parts.succs.len()).sum();
                let fresh: Option<Vec<Vec<bool>>> =
                    if threads > 1 && shard_count > 1 && total_succs >= PAR_MIN_DEDUP {
                        let mut batches: Vec<Vec<u128>> = vec![Vec::new(); shard_count];
                        for parts in &expansions {
                            for (_, digest) in &parts.succs {
                                batches[visited.shard_of(digest.0)].push(digest.0);
                            }
                        }
                        Some(visited.insert_batches(&batches, threads))
                    } else {
                        None
                    };

                // Deterministic merge, in frontier order, grouped by
                // parent: a parent's accepted successors are handed to
                // the next frontier as one contiguous run with their
                // push-order action indices, so the replay codec can
                // store a single (parent, indices) record per parent.
                let mut cursors = vec![0usize; shard_count];
                for (parts, parent) in expansions.into_iter().zip(chunk) {
                    stats.configs += 1;
                    stats.truncated |= parts.truncated;
                    let had_findings = !parts.findings.is_empty();
                    findings.extend(parts.findings);
                    for (index, (succ, digest)) in parts.succs.into_iter().enumerate() {
                        stats.transitions += 1;
                        // Under symmetry, `digest` is canonical (computed
                        // at push time); track the exact digest on the
                        // side so a canonical dup whose exact digest is
                        // fresh counts as an orbit collapse.
                        let exact_fresh = symmetry && exact_seen.insert(space.digest(&succ).0);
                        let shard = visited.shard_of(digest.0);
                        let is_new = match &fresh {
                            Some(bits) => {
                                let bit = bits[shard][cursors[shard]];
                                cursors[shard] += 1;
                                bit
                            }
                            None => visited.insert(digest.0),
                        };
                        if is_new {
                            occupancy[shard] += 1;
                            accepted.push(succ);
                            accepted_indices.push(index);
                        } else {
                            stats.dedup_hits += 1;
                            if exact_fresh {
                                stats.orbit_hits += 1;
                            }
                        }
                    }
                    next.push_group(parent, &mut accepted, &accepted_indices)?;
                    accepted_indices.clear();
                    if had_findings && stop(&findings) {
                        stats.stopped_early = true;
                        // The half-built next frontier dies here; count
                        // the spill I/O it already performed (the
                        // consumed frontier's was counted at level top).
                        stats.spilled_chunks += next.spilled_chunks();
                        stats.spilled_bytes += next.spilled_bytes();
                        stats.peak_resident_bytes =
                            stats.peak_resident_bytes.max(next.peak_window_bytes());
                        stats.degraded_levels += usize::from(next.degraded());
                        break 'levels;
                    }
                }
            }
            frontier = next;
            depth += 1;
        }

        stats.replayed_parents = replayed.get();
        stats.shard_occupancy = occupancy;
        stats.elapsed = prior_elapsed + start.elapsed();
        stats.faults_injected = prior_faults + plane.faults_injected();
        stats.io_retries = prior_retries + plane.io_retries();
        Ok(KernelOutcome { findings, stats })
    }

    fn run_dfs<Sp>(
        &self,
        space: &Sp,
        initial: Vec<Sp::State>,
        mut stop: impl FnMut(&[Sp::Finding]) -> bool,
        mut progress: impl FnMut(usize, &ExploreStats) -> bool,
    ) -> KernelOutcome<Sp::Finding>
    where
        Sp: StateSpace + Sync,
    {
        let start = Stopwatch::start();
        let symmetry = self.resolve_symmetry() && space.has_symmetry_reduction();
        let mut stats = ExploreStats {
            threads: 1,
            shards: 1,
            symmetry,
            ..ExploreStats::default()
        };
        let mut findings: Vec<Sp::Finding> = Vec::new();
        // Which expanded state (by fingerprint) contributed each finding,
        // so a re-expansion can replace its earlier contribution.
        let mut finding_owners: Vec<u128> = Vec::new();
        let mut visited: DetHashMap<u128, u32> = DetHashMap::default();
        // Exact-digest side set for `orbit_hits`; see `run_bfs`.
        let mut exact_seen: DetHashSet<u128> = DetHashSet::default();
        let mut stack: Vec<(Sp::State, Digest, usize)> = initial
            .into_iter()
            .map(|state| {
                let digest = if symmetry {
                    exact_seen.insert(space.digest(&state).0);
                    space.canonical_digest(&state)
                } else {
                    space.digest(&state)
                };
                (state, digest, 0usize)
            })
            .collect();
        let mut exp = Expansion::new_maybe_canonical(space, symmetry);

        // DFS has no level boundaries; observe every 1024 expanded states
        // instead (the configs count at the last observation).
        let mut observed_at = 0usize;
        while let Some((state, digest, depth)) = stack.pop() {
            if stats.configs >= observed_at + 1024 {
                observed_at = stats.configs;
                stats.elapsed = start.elapsed();
                if !progress(depth, &stats) {
                    stats.stopped_early = true;
                    break;
                }
            }
            let reexpansion = match visited.entry(digest.0) {
                // Already expanded at this depth or shallower: skip.
                Entry::Occupied(seen) if *seen.get() <= depth as u32 => continue,
                // Reached strictly shallower than before: re-expand so the
                // explored set matches BFS (no configs increment — the
                // state was already counted).
                Entry::Occupied(mut seen) => {
                    *seen.get_mut() = depth as u32;
                    true
                }
                Entry::Vacant(slot) => {
                    if self
                        .config_budget
                        .is_some_and(|budget| stats.configs >= budget)
                    {
                        stats.truncated = true;
                        break;
                    }
                    slot.insert(depth as u32);
                    stats.configs += 1;
                    false
                }
            };

            exp.reset();
            space.expand(&state, depth, &mut exp);
            stats.truncated |= exp.truncated;
            if reexpansion && finding_owners.contains(&digest.0) {
                // This shallower expansion supersedes the state's earlier
                // one: drop the findings it contributed then, exactly as
                // BFS (which expands each state once, at minimal depth)
                // would never have recorded them.
                let mut keep = 0;
                for read in 0..finding_owners.len() {
                    if finding_owners[read] != digest.0 {
                        finding_owners.swap(keep, read);
                        findings.swap(keep, read);
                        keep += 1;
                    }
                }
                finding_owners.truncate(keep);
                findings.truncate(keep);
            }
            let had_findings = !exp.findings.is_empty();
            finding_owners.extend(std::iter::repeat_n(digest.0, exp.findings.len()));
            findings.append(&mut exp.findings);
            for (succ, succ_digest) in exp.succs.drain(..) {
                stats.transitions += 1;
                let exact_fresh = symmetry && exact_seen.insert(space.digest(&succ).0);
                if visited
                    .get(&succ_digest.0)
                    .is_some_and(|&seen| seen <= depth as u32 + 1)
                {
                    stats.dedup_hits += 1;
                    if exact_fresh {
                        stats.orbit_hits += 1;
                    }
                } else {
                    stack.push((succ, succ_digest, depth + 1));
                }
            }
            stats.peak_frontier = stats.peak_frontier.max(stack.len());
            if had_findings && stop(&findings) {
                stats.stopped_early = true;
                break;
            }
        }

        // DFS never spills: the whole stack stays decoded and resident.
        stats.peak_resident_states = stats.peak_frontier;
        stats.shard_occupancy = vec![visited.len()];
        stats.elapsed = start.elapsed();
        KernelOutcome { findings, stats }
    }
}

/// Regenerates the `indices`-th pushed successors of `parent` (expanded
/// at `parent_depth`) for a replay-codec record. Shared between the level
/// loop's counting regenerator and the checkpoint snapshot's non-counting
/// one, so taking a checkpoint never perturbs the run's replay
/// accounting.
fn regenerate<Sp>(
    space: &Sp,
    parent: &Sp::State,
    parent_depth: usize,
    indices: &[usize],
    out: &mut Vec<Sp::State>,
) where
    Sp: StateSpace + ?Sized,
{
    // The indexed fast path rebuilds one child without the successor
    // vector, but must still walk the preceding pushes; for multi-child
    // groups one shared expansion does that walk once instead of once per
    // index.
    if space.has_successor_fast_path() && indices.len() == 1 {
        for &index in indices {
            let succ = space
                .successor_at(parent, parent_depth, index)
                .unwrap_or_else(|| {
                    panic!(
                        "corrupt replay record: parent has no successor at \
                         push index {index}"
                    )
                });
            out.push(succ);
        }
    } else {
        // One shared, digest-free expansion regenerates every index of
        // this record: the fallback never re-expands a parent more than
        // once per replayed record.
        let mut exp = Expansion::new_undigested(space);
        space.expand(parent, parent_depth, &mut exp);
        let total = exp.succs.len();
        let mut want = indices.iter().peekable();
        for (index, (succ, _)) in exp.succs.into_iter().enumerate() {
            if want.peek().is_some_and(|&&w| w == index) {
                out.push(succ);
                want.next();
            }
        }
        assert!(
            want.peek().is_none(),
            "corrupt replay record: successor index past the parent's \
             {total} pushes"
        );
    }
}

/// One state's expansion results, detached from the borrow of the space.
struct Parts<Sp: StateSpace + ?Sized> {
    succs: Vec<(Sp::State, Digest)>,
    findings: Vec<Sp::Finding>,
    truncated: bool,
}

fn expand_one<Sp: StateSpace + ?Sized>(
    space: &Sp,
    state: &Sp::State,
    depth: usize,
    canonical: bool,
) -> Parts<Sp> {
    let mut exp = Expansion::new_maybe_canonical(space, canonical);
    space.expand(state, depth, &mut exp);
    Parts {
        succs: exp.succs,
        findings: exp.findings,
        truncated: exp.truncated,
    }
}

/// Expands every state of a BFS level, in parallel when the level is large
/// enough to amortize thread startup. Workers pull chunk indices from a
/// shared cursor (simple work stealing: fast chunks free a worker to steal
/// the next), and results are reassembled in chunk order so the caller's
/// merge is deterministic.
fn expand_level<Sp>(
    space: &Sp,
    frontier: &[Sp::State],
    depth: usize,
    threads: usize,
    canonical: bool,
) -> Vec<Parts<Sp>>
where
    Sp: StateSpace + Sync,
{
    if threads <= 1 || frontier.len() < PAR_MIN_FRONTIER {
        return frontier
            .iter()
            .map(|state| expand_one(space, state, depth, canonical))
            .collect();
    }

    // Several chunks per worker so an uneven chunk doesn't serialize the
    // level; at least 16 states per chunk so cursor traffic stays cheap.
    let chunk_size = (frontier.len() / (threads * 4)).max(16);
    let chunks: Vec<&[Sp::State]> = frontier.chunks(chunk_size).collect();
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<Parts<Sp>>)>> = Mutex::new(Vec::with_capacity(chunks.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads.min(chunks.len()) {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(index) else {
                    break;
                };
                let parts: Vec<Parts<Sp>> = chunk
                    .iter()
                    .map(|state| expand_one(space, state, depth, canonical))
                    .collect();
                done.lock()
                    .expect("no poisoned workers")
                    .push((index, parts));
            });
        }
    });

    let mut by_chunk = done.into_inner().expect("workers joined");
    by_chunk.sort_by_key(|(index, _)| *index);
    by_chunk.into_iter().flat_map(|(_, parts)| parts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest128_of;

    /// Grid walk: states are (x, y) with moves +x / +y up to a bound; a
    /// finding is emitted at every corner state. Many diamonds, so dedup
    /// matters; fully deterministic.
    struct GridWalk {
        bound: u32,
        digest_bits: u32,
    }

    impl StateSpace for GridWalk {
        type State = (u32, u32);
        type Finding = (u32, u32);

        fn digest(&self, state: &Self::State) -> Digest {
            digest128_of(state).truncated(self.digest_bits)
        }

        fn expand(&self, &(x, y): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
            if x == self.bound && y == self.bound {
                ctx.finding((x, y));
                return;
            }
            if x < self.bound {
                ctx.push((x + 1, y));
            }
            if y < self.bound {
                ctx.push((x, y + 1));
            }
        }
    }

    fn grid(bound: u32) -> GridWalk {
        GridWalk {
            bound,
            digest_bits: 128,
        }
    }

    #[test]
    fn bfs_counts_grid_exactly() {
        let out = Checker::parallel_bfs(1).run(&grid(10), vec![(0, 0)]);
        assert_eq!(out.stats.configs, 11 * 11);
        assert_eq!(out.findings, vec![(10, 10)]);
        assert!(!out.stats.truncated);
        assert!(out.stats.dedup_hits > 0, "diamonds must dedup");
    }

    #[test]
    fn bfs_and_dfs_agree_on_configs_and_findings() {
        for bound in [1, 3, 8, 20] {
            let bfs = Checker::parallel_bfs(2).run(&grid(bound), vec![(0, 0)]);
            let dfs = Checker::sequential_dfs().run(&grid(bound), vec![(0, 0)]);
            assert_eq!(bfs.stats.configs, dfs.stats.configs, "bound {bound}");
            assert_eq!(bfs.findings, dfs.findings, "bound {bound}");
        }
    }

    #[test]
    fn parallel_threads_match_single_thread() {
        // Big enough to cross PAR_MIN_FRONTIER on middle levels.
        let space = grid(300);
        let one = Checker::parallel_bfs(1).run(&space, vec![(0, 0)]);
        let four = Checker::parallel_bfs(4).run(&space, vec![(0, 0)]);
        assert_eq!(one.stats.configs, four.stats.configs);
        assert_eq!(one.stats.transitions, four.stats.transitions);
        assert_eq!(one.stats.dedup_hits, four.stats.dedup_hits);
        assert_eq!(one.findings, four.findings);
    }

    #[test]
    fn budget_truncates_and_reports_it() {
        let out = Checker::parallel_bfs(1)
            .with_budget(5)
            .run(&grid(10), vec![(0, 0)]);
        assert_eq!(out.stats.configs, 5);
        assert!(out.stats.truncated);
        assert!(out.findings.is_empty());
    }

    #[test]
    fn stop_predicate_halts_early() {
        // Every state emits a finding; stop after three.
        struct Chain;
        impl StateSpace for Chain {
            type State = u32;
            type Finding = u32;
            fn digest(&self, s: &u32) -> Digest {
                digest128_of(s)
            }
            fn expand(&self, &s: &u32, _d: usize, ctx: &mut Expansion<Self>) {
                ctx.finding(s);
                if s < 100 {
                    ctx.push(s + 1);
                }
            }
        }
        let out = Checker::parallel_bfs(1).run_until(&Chain, vec![0], |fs| fs.len() >= 3);
        assert!(out.stats.stopped_early);
        assert_eq!(out.findings, vec![0, 1, 2]);
        let dfs = Checker::sequential_dfs().run_until(&Chain, vec![0], |fs| fs.len() >= 3);
        assert_eq!(dfs.findings, vec![0, 1, 2]);
    }

    #[test]
    fn truncation_via_space_horizon() {
        // A space that bounds its own depth, like the safety explorer.
        struct Bounded;
        impl StateSpace for Bounded {
            type State = u32;
            type Finding = ();
            fn digest(&self, s: &u32) -> Digest {
                digest128_of(s)
            }
            fn expand(&self, &s: &u32, depth: usize, ctx: &mut Expansion<Self>) {
                if depth >= 4 {
                    ctx.mark_truncated();
                    return;
                }
                ctx.push(s * 2 + 1);
                ctx.push(s * 2 + 2);
            }
        }
        let out = Checker::parallel_bfs(1).run(&Bounded, vec![0]);
        assert!(out.stats.truncated);
        assert_eq!(out.stats.configs, 2usize.pow(5) - 1);
    }

    #[test]
    fn dfs_reexpansion_does_not_duplicate_findings() {
        // Diamond with unequal path lengths: A->B->D and A->C->E->D. DFS
        // pushes B then C; popping C first reaches D at depth 3, then the
        // B path re-reaches it at depth 2 and re-expands. D's finding must
        // appear once, as in BFS.
        struct Diamond;
        impl StateSpace for Diamond {
            type State = u8;
            type Finding = u8;
            fn digest(&self, s: &u8) -> Digest {
                digest128_of(s)
            }
            fn expand(&self, &s: &u8, _d: usize, ctx: &mut Expansion<Self>) {
                match s {
                    0 => {
                        ctx.push(1); // B (popped after C)
                        ctx.push(2); // C
                    }
                    1 => ctx.push(4),
                    2 => ctx.push(3),
                    3 => ctx.push(4),
                    4 => ctx.finding(4),
                    _ => {}
                }
            }
        }
        let bfs = Checker::parallel_bfs(1).run(&Diamond, vec![0]);
        let dfs = Checker::sequential_dfs().run(&Diamond, vec![0]);
        assert_eq!(bfs.findings, vec![4]);
        assert_eq!(dfs.findings, vec![4], "re-expansion must not duplicate");
        assert_eq!(bfs.stats.configs, dfs.stats.configs);
    }

    #[test]
    fn duplicate_initial_states_collapse() {
        let out = Checker::parallel_bfs(1).run(&grid(2), vec![(0, 0), (0, 0), (1, 1)]);
        assert_eq!(out.stats.configs, 9);
    }

    #[test]
    fn spilling_matches_resident_exploration_exactly() {
        // Records are two one-byte varints (digests are not stored — the
        // visited set consumed them before the push); a 128-byte budget
        // gives 64-byte chunks, so every level wider than ~32 states
        // spills — the middle half of the 61-wide grid diagonals.
        let space = grid(60);
        let resident = Checker::parallel_bfs(1)
            .with_mem_budget(0)
            .run(&space, vec![(0, 0)]);
        let spilled = Checker::parallel_bfs(1)
            .with_mem_budget(128)
            .run(&space, vec![(0, 0)]);
        assert_eq!(spilled.stats.configs, resident.stats.configs);
        assert_eq!(spilled.stats.transitions, resident.stats.transitions);
        assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
        assert_eq!(spilled.stats.peak_frontier, resident.stats.peak_frontier);
        assert_eq!(
            spilled.stats.shard_occupancy,
            resident.stats.shard_occupancy
        );
        assert_eq!(spilled.findings, resident.findings);
        assert!(
            spilled.stats.spilled_chunks >= 2,
            "budget must force spilling"
        );
        assert!(spilled.stats.spilled_bytes > 0);
        assert!(
            spilled.stats.peak_resident_states < spilled.stats.peak_frontier,
            "resident window ({}) must stay below the widest level ({})",
            spilled.stats.peak_resident_states,
            spilled.stats.peak_frontier
        );
        assert_eq!(resident.stats.spilled_chunks, 0);
        assert_eq!(
            resident.stats.peak_resident_states,
            resident.stats.peak_frontier
        );
    }

    #[test]
    fn growing_states_respect_the_byte_budget() {
        // The accumulating-history shape that broke the old state-count
        // window: every step appends to a payload, so states late in the
        // run encode ~50x larger than the probe-sized first record. The
        // byte-measured window must keep the resident encoded bytes
        // within one chunk (budget / 2) plus one record — and the run
        // must stay bit-identical to the resident one.
        struct Accumulator {
            bound: u32,
        }
        impl StateSpace for Accumulator {
            type State = (u32, Vec<u32>);
            type Finding = u32;
            fn digest(&self, s: &Self::State) -> Digest {
                digest128_of(s)
            }
            fn expand(&self, (x, trail): &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
                if *x >= self.bound {
                    ctx.finding(trail.len() as u32);
                    return;
                }
                // Branches grow the trail by different amounts, so one
                // BFS level mixes records of very different sizes — the
                // shape the old first-record probe mis-sized.
                for step in 0..3u32 {
                    let mut grown = trail.clone();
                    grown.extend(std::iter::repeat_n(*x * 3 + step + 1000, step as usize + 1));
                    ctx.push((*x + 1, grown));
                }
            }
        }
        const BUDGET: usize = 1024;
        let space = Accumulator { bound: 8 };
        let resident = Checker::parallel_bfs(1)
            .with_mem_budget(0)
            .run(&space, vec![(0, Vec::new())]);
        let spilled = Checker::parallel_bfs(1)
            .with_mem_budget(BUDGET)
            .run(&space, vec![(0, Vec::new())]);
        assert_eq!(spilled.stats.configs, resident.stats.configs);
        assert_eq!(spilled.stats.dedup_hits, resident.stats.dedup_hits);
        assert_eq!(spilled.findings, resident.findings);
        assert!(spilled.stats.spilled_chunks > 2, "deep levels must spill");
        // Largest record: a tuple of (u32, 24-element Vec<u32> with
        // multi-byte varints); digests are not stored.
        let max_record = 4 + 24 * 5;
        assert!(
            spilled.stats.peak_resident_bytes <= BUDGET / 2 + max_record,
            "window peaked at {} encoded bytes; chunk budget {} + record {max_record}",
            spilled.stats.peak_resident_bytes,
            BUDGET / 2
        );
        assert_eq!(spilled.stats.mem_budget, Some(BUDGET));
        assert_eq!(resident.stats.mem_budget, None);
    }

    #[test]
    fn spill_codec_resolution() {
        // The env knob (covered exhaustively in its own process-isolated
        // suite, `tests/spill_codec_knob.rs`) outranks the default, so
        // only assert the default when the environment is silent.
        if std::env::var_os("SLX_ENGINE_SPILL_CODEC").is_none_or(|v| v.is_empty()) {
            assert_eq!(
                Checker::parallel_bfs(1).resolve_spill_codec(),
                SpillCodec::Delta,
                "delta is the default"
            );
        }
        assert_eq!(
            Checker::parallel_bfs(1)
                .with_spill_codec(SpillCodec::Plain)
                .resolve_spill_codec(),
            SpillCodec::Plain
        );
        assert_eq!(
            Checker::parallel_bfs(1)
                .with_spill_codec(SpillCodec::Replay)
                .resolve_spill_codec(),
            SpillCodec::Replay
        );
    }

    #[test]
    fn every_spill_codec_matches_the_resident_run() {
        // GridWalk has no successor fast path, so the replay arm here
        // exercises the full-expansion regeneration fallback.
        let space = grid(60);
        let resident = Checker::parallel_bfs(1)
            .with_mem_budget(0)
            .run(&space, vec![(0, 0)]);
        assert_eq!(resident.stats.replayed_parents, 0);
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            let spilled = Checker::parallel_bfs(1)
                .with_mem_budget(128)
                .with_spill_codec(codec)
                .run(&space, vec![(0, 0)]);
            assert_eq!(spilled.stats.configs, resident.stats.configs, "{codec:?}");
            assert_eq!(
                spilled.stats.dedup_hits, resident.stats.dedup_hits,
                "{codec:?}"
            );
            assert_eq!(spilled.findings, resident.findings, "{codec:?}");
            assert!(spilled.stats.spilled_chunks >= 2, "{codec:?}");
            if codec == SpillCodec::Replay {
                assert!(
                    spilled.stats.replayed_parents > 0,
                    "spilled replay chunks must regenerate from parents"
                );
                assert!(
                    spilled.stats.replayed_parents <= resident.stats.configs,
                    "at most one re-expansion per parent per level: {} > {}",
                    spilled.stats.replayed_parents,
                    resident.stats.configs
                );
            } else {
                assert_eq!(spilled.stats.replayed_parents, 0, "{codec:?}");
            }
        }
    }

    #[test]
    fn replay_fast_path_agrees_with_the_expand_fallback() {
        /// GridWalk with a real indexed-successor fast path that mirrors
        /// its expand push order.
        struct FastGrid(GridWalk);
        impl StateSpace for FastGrid {
            type State = (u32, u32);
            type Finding = (u32, u32);
            fn digest(&self, state: &Self::State) -> Digest {
                self.0.digest(state)
            }
            fn expand(&self, state: &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
                let mut inner = Expansion::new(&self.0);
                self.0.expand(state, depth, &mut inner);
                for finding in inner.findings {
                    ctx.finding(finding);
                }
                for (succ, _) in inner.succs {
                    ctx.push(succ);
                }
            }
            fn has_successor_fast_path(&self) -> bool {
                true
            }
            fn successor_at(
                &self,
                &(x, y): &Self::State,
                _depth: usize,
                index: usize,
            ) -> Option<Self::State> {
                if x == self.0.bound && y == self.0.bound {
                    return None;
                }
                let mut succs = Vec::with_capacity(2);
                if x < self.0.bound {
                    succs.push((x + 1, y));
                }
                if y < self.0.bound {
                    succs.push((x, y + 1));
                }
                succs.into_iter().nth(index)
            }
        }
        let slow = grid(60);
        let fast = FastGrid(grid(60));
        let via_fallback = Checker::parallel_bfs(1)
            .with_mem_budget(128)
            .with_spill_codec(SpillCodec::Replay)
            .run(&slow, vec![(0, 0)]);
        let via_fast_path = Checker::parallel_bfs(1)
            .with_mem_budget(128)
            .with_spill_codec(SpillCodec::Replay)
            .run(&fast, vec![(0, 0)]);
        assert_eq!(via_fast_path.stats.configs, via_fallback.stats.configs);
        assert_eq!(
            via_fast_path.stats.dedup_hits,
            via_fallback.stats.dedup_hits
        );
        assert_eq!(via_fast_path.findings, via_fallback.findings);
        assert_eq!(
            via_fast_path.stats.replayed_parents,
            via_fallback.stats.replayed_parents
        );
        assert!(via_fast_path.stats.spilled_chunks >= 2);
    }

    /// GridWalk with its transpose symmetry made explicit: `(x, y)` and
    /// `(y, x)` behave identically up to the swap, the corner finding is
    /// swap-invariant, so sorting the coordinates is a sound
    /// canonicalizer — orbits halve the off-diagonal states.
    struct SymmetricGrid(GridWalk);

    impl StateSpace for SymmetricGrid {
        type State = (u32, u32);
        type Finding = (u32, u32);

        fn digest(&self, state: &Self::State) -> Digest {
            self.0.digest(state)
        }

        fn expand(&self, state: &Self::State, depth: usize, ctx: &mut Expansion<Self>) {
            let mut inner = Expansion::new(&self.0);
            self.0.expand(state, depth, &mut inner);
            for finding in inner.findings {
                ctx.finding(finding);
            }
            for (succ, _) in inner.succs {
                ctx.push(succ);
            }
        }

        fn has_symmetry_reduction(&self) -> bool {
            true
        }

        fn canonical_digest(&self, state: &Self::State) -> Digest {
            self.0.digest(&self.orbit_representative(state))
        }

        fn orbit_representative(&self, &(x, y): &Self::State) -> Self::State {
            (x.min(y), x.max(y))
        }
    }

    #[test]
    fn symmetry_collapses_orbits_and_preserves_findings() {
        let space = SymmetricGrid(grid(10));
        let full = Checker::parallel_bfs(1)
            .with_symmetry(false)
            .run(&space, vec![(0, 0)]);
        let reduced = Checker::parallel_bfs(1)
            .with_symmetry(true)
            .run(&space, vec![(0, 0)]);
        assert_eq!(full.stats.configs, 11 * 11);
        // One representative per orbit: the upper triangle incl. diagonal.
        assert_eq!(reduced.stats.configs, 11 * 12 / 2);
        assert_eq!(reduced.findings, full.findings);
        assert!(reduced.stats.symmetry);
        assert!(!full.stats.symmetry);
        assert!(
            reduced.stats.orbit_hits > 0,
            "off-diagonal twins must collapse"
        );
        assert_eq!(full.stats.orbit_hits, 0, "no orbit hits when off");
        assert!(reduced.stats.orbit_hits <= reduced.stats.dedup_hits);
    }

    #[test]
    fn symmetry_reduced_dfs_matches_reduced_bfs() {
        let space = SymmetricGrid(grid(8));
        let bfs = Checker::parallel_bfs(1)
            .with_symmetry(true)
            .run(&space, vec![(0, 0)]);
        let dfs = Checker::sequential_dfs()
            .with_symmetry(true)
            .run(&space, vec![(0, 0)]);
        assert_eq!(bfs.stats.configs, dfs.stats.configs);
        assert_eq!(bfs.findings, dfs.findings);
        assert!(dfs.stats.symmetry);
        assert!(dfs.stats.orbit_hits > 0);
    }

    #[test]
    fn symmetry_request_is_inert_without_the_capability() {
        // GridWalk does not advertise symmetry: asking for it must run
        // the unreduced kernel bit-for-bit (and say so in the stats).
        let on = Checker::parallel_bfs(1)
            .with_symmetry(true)
            .run(&grid(10), vec![(0, 0)]);
        let off = Checker::parallel_bfs(1)
            .with_symmetry(false)
            .run(&grid(10), vec![(0, 0)]);
        assert_eq!(on.stats.configs, off.stats.configs);
        assert_eq!(on.stats.dedup_hits, off.stats.dedup_hits);
        assert_eq!(on.stats.orbit_hits, 0);
        assert!(!on.stats.symmetry, "capability gate must win");
    }

    #[test]
    fn symmetric_initial_states_collapse_to_one_orbit() {
        // (0,1) and (1,0) are one orbit: seeding both must explore
        // exactly what seeding one does.
        let space = SymmetricGrid(grid(4));
        let both = Checker::parallel_bfs(1)
            .with_symmetry(true)
            .run(&space, vec![(0, 1), (1, 0)]);
        let one = Checker::parallel_bfs(1)
            .with_symmetry(true)
            .run(&space, vec![(0, 1)]);
        assert_eq!(both.stats.configs, one.stats.configs);
        assert_eq!(both.findings, one.findings);
    }

    #[test]
    fn symmetry_resolution() {
        // The env knob (covered in the process-isolated differential
        // suites) outranks the default, so only assert the default when
        // the environment is silent.
        if std::env::var_os("SLX_ENGINE_SYMMETRY").is_none_or(|v| v.is_empty()) {
            assert!(
                !Checker::parallel_bfs(1).resolve_symmetry(),
                "unreduced is the default"
            );
        }
        assert!(Checker::parallel_bfs(1)
            .with_symmetry(true)
            .resolve_symmetry());
        // The explicit knob pins reference arms off even under
        // SLX_ENGINE_SYMMETRY=1.
        assert!(!Checker::parallel_bfs(1)
            .with_symmetry(false)
            .resolve_symmetry());
    }

    #[test]
    fn mem_budget_zero_pins_spilling_off() {
        let checker = Checker::parallel_bfs(1).with_mem_budget(0);
        assert_eq!(checker.resolve_mem_budget(), None);
        assert_eq!(
            Checker::parallel_bfs(1)
                .with_mem_budget(4096)
                .resolve_mem_budget(),
            Some(4096)
        );
    }
}
