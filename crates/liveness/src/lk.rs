//! (l,k)-freedom (Definition 5.1) and its two halves.

use std::cmp::Ordering;

use crate::progress::ExecutionView;
use crate::property::LivenessProperty;

/// The paper's (l,k)-freedom, `l ≤ k` (Definition 5.1): in a fair execution
/// where **at most k processes take infinitely many steps**,
///
/// - if at least `l` processes are correct, at least `l` processes make
///   progress;
/// - otherwise all correct processes make progress.
///
/// Special points (Section 5.1/5.2): `(1,1)` is obstruction-freedom,
/// `(1,n)` is lock-freedom, `(n,n)` is `Lmax` (wait-freedom / local
/// progress).
///
/// # Examples
///
/// The partial order is the product order — larger `l` and `k` is stronger
/// — and genuinely partial:
///
/// ```
/// use slx_liveness::LkFreedom;
///
/// let a = LkFreedom::new(1, 3);
/// let b = LkFreedom::new(2, 2);
/// assert_eq!(a.partial_cmp_strength(&b), None); // incomparable (§5.1)
/// assert!(LkFreedom::new(2, 3).is_stronger_or_equal(&a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LkFreedom {
    l: usize,
    k: usize,
}

impl LkFreedom {
    /// Creates (l,k)-freedom.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ l ≤ k` (the definition requires `l ≤ k`).
    pub fn new(l: usize, k: usize) -> Self {
        assert!(l >= 1 && l <= k, "(l,k)-freedom requires 1 <= l <= k");
        LkFreedom { l, k }
    }

    /// The minimal-progress parameter `l`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// The contention parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Strength comparison: `Greater` means `self` is strictly stronger
    /// (its execution set is strictly smaller). Product order on `(l, k)`.
    pub fn partial_cmp_strength(&self, other: &LkFreedom) -> Option<Ordering> {
        match (self.l.cmp(&other.l), self.k.cmp(&other.k)) {
            (Ordering::Equal, Ordering::Equal) => Some(Ordering::Equal),
            (a, b) if a != Ordering::Less && b != Ordering::Less => Some(Ordering::Greater),
            (a, b) if a != Ordering::Greater && b != Ordering::Greater => Some(Ordering::Less),
            _ => None,
        }
    }

    /// Whether `self` is stronger than or equal to `other`.
    pub fn is_stronger_or_equal(&self, other: &LkFreedom) -> bool {
        matches!(
            self.partial_cmp_strength(other),
            Some(Ordering::Greater | Ordering::Equal)
        )
    }

    /// Obstruction-freedom: `(1,1)`-freedom (Section 5.2 identifies the
    /// two for consensus).
    pub fn obstruction_freedom() -> LkFreedom {
        LkFreedom::new(1, 1)
    }

    /// Lock-freedom in an `n`-process system: `(1,n)`-freedom.
    pub fn lock_freedom(n: usize) -> LkFreedom {
        LkFreedom::new(1, n)
    }

    /// Wait-freedom / local progress in an `n`-process system:
    /// `(n,n)`-freedom, which coincides with `Lmax`.
    pub fn wait_freedom(n: usize) -> LkFreedom {
        LkFreedom::new(n, n)
    }

    /// All (l,k)-freedom properties on the `n × n` grid of Figure 1.
    pub fn grid(n: usize) -> Vec<LkFreedom> {
        let mut out = Vec::new();
        for l in 1..=n {
            for k in l..=n {
                out.push(LkFreedom::new(l, k));
            }
        }
        out
    }
}

impl std::fmt::Display for LkFreedom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})-freedom", self.l, self.k)
    }
}

impl LivenessProperty for LkFreedom {
    fn name(&self) -> String {
        self.to_string()
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        let steppers = view.steppers();
        if steppers.len() > self.k {
            return true; // antecedent false
        }
        let correct = view.correct();
        let progressing = view.progressing_correct();
        if correct.len() >= self.l {
            progressing.len() >= self.l
        } else {
            progressing.len() == correct.len()
        }
    }
}

/// `l`-lock-freedom (Section 5.1): at least `l` correct processes make
/// progress if at least `l` are correct; otherwise all correct processes
/// do. Independent of scheduling — equivalent to `(l,n)`-freedom in an
/// `n`-process system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LLockFreedom {
    l: usize,
}

impl LLockFreedom {
    /// Creates l-lock-freedom.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0`.
    pub fn new(l: usize) -> Self {
        assert!(l >= 1, "l-lock-freedom requires l >= 1");
        LLockFreedom { l }
    }

    /// The parameter `l`.
    pub fn l(&self) -> usize {
        self.l
    }
}

impl LivenessProperty for LLockFreedom {
    fn name(&self) -> String {
        format!("{}-lock-freedom", self.l)
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        let correct = view.correct();
        let progressing = view.progressing_correct();
        if correct.len() >= self.l {
            progressing.len() >= self.l
        } else {
            progressing.len() == correct.len()
        }
    }
}

/// `k`-obstruction-freedom (Taubenfeld, cited in Section 5.1): whenever at
/// most `k` processes take infinitely many steps, **all** of those (that
/// are correct) make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KObstructionFreedom {
    k: usize,
}

impl KObstructionFreedom {
    /// Creates k-obstruction-freedom.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-obstruction-freedom requires k >= 1");
        KObstructionFreedom { k }
    }

    /// The parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl LivenessProperty for KObstructionFreedom {
    fn name(&self) -> String {
        format!("{}-obstruction-freedom", self.k)
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        let steppers = view.steppers();
        if steppers.len() > self.k {
            return true;
        }
        steppers
            .into_iter()
            .filter(|&p| view.is_correct(p))
            .all(|p| view.makes_progress(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressKind;
    use crate::property::Lmax;
    use slx_history::{Operation, ProcessId, Response, Value};
    use slx_memory::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Builds an execution of `n` processes where `stepping` step in the
    /// window and `progressing ⊆ stepping` receive a (good) response; all
    /// processes are pending throughout.
    fn exec(n: usize, stepping: &[usize], progressing: &[usize]) -> ExecutionView {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        for &i in stepping {
            events.push(Event::Stepped(p(i)));
        }
        for &i in progressing {
            events.push(Event::Responded(p(i), Response::Decided(Value::new(1))));
            // Re-invoke so the process is pending again at the end (keeps
            // "progress" attributable to the response, not idleness).
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        ExecutionView::new(&events, n, 0, ProgressKind::AnyResponse)
    }

    #[test]
    fn paper_incomparability_witnesses() {
        // §5.1: two steppers, one progresses — ensures (1,3), not (2,2).
        let e1 = exec(3, &[0, 1], &[0]);
        assert!(LkFreedom::new(1, 3).satisfied(&e1));
        assert!(!LkFreedom::new(2, 2).satisfied(&e1));
        // Three steppers, none progresses — ensures (2,2), not (1,3).
        let e2 = exec(3, &[0, 1, 2], &[]);
        assert!(LkFreedom::new(2, 2).satisfied(&e2));
        assert!(!LkFreedom::new(1, 3).satisfied(&e2));
    }

    #[test]
    fn product_partial_order() {
        let a = LkFreedom::new(1, 3);
        let b = LkFreedom::new(2, 2);
        assert_eq!(a.partial_cmp_strength(&b), None);
        assert_eq!(b.partial_cmp_strength(&a), None);
        assert_eq!(
            LkFreedom::new(2, 3).partial_cmp_strength(&a),
            Some(Ordering::Greater)
        );
        assert_eq!(
            a.partial_cmp_strength(&LkFreedom::new(1, 3)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            LkFreedom::new(1, 2).partial_cmp_strength(&LkFreedom::new(1, 3)),
            Some(Ordering::Less)
        );
        assert!(LkFreedom::new(2, 2).is_stronger_or_equal(&LkFreedom::new(1, 2)));
    }

    #[test]
    fn stronger_property_implies_weaker_on_executions() {
        // Semantic check of the order: on every sample execution, if the
        // stronger property holds, so does the weaker.
        let samples = [
            exec(3, &[0], &[0]),
            exec(3, &[0, 1], &[0]),
            exec(3, &[0, 1], &[0, 1]),
            exec(3, &[0, 1, 2], &[]),
            exec(3, &[0, 1, 2], &[1]),
            exec(3, &[], &[]),
        ];
        let grid = LkFreedom::grid(3);
        for strong in &grid {
            for weak in &grid {
                if strong.is_stronger_or_equal(weak) {
                    for (i, e) in samples.iter().enumerate() {
                        if strong.satisfied(e) {
                            assert!(
                                weak.satisfied(e),
                                "{strong} holds but {weak} fails on sample {i}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nn_freedom_is_lmax() {
        let samples = [
            exec(3, &[0, 1, 2], &[0, 1, 2]),
            exec(3, &[0, 1, 2], &[0, 1]),
            exec(3, &[0], &[0]),
            exec(3, &[], &[]),
        ];
        let nn = LkFreedom::new(3, 3);
        let lmax = Lmax::new();
        for (i, e) in samples.iter().enumerate() {
            assert_eq!(nn.satisfied(e), lmax.satisfied(e), "sample {i}");
        }
    }

    #[test]
    fn one_one_freedom_is_obstruction_freedom() {
        // Solo stepper progresses: both hold. Solo stepper starves: both
        // fail. Two steppers: both vacuous/weak accordingly.
        let solo_ok = exec(3, &[0], &[0]);
        let solo_starve = exec(3, &[0], &[]);
        let duo_starve = exec(3, &[0, 1], &[]);
        let of = KObstructionFreedom::new(1);
        let lk = LkFreedom::new(1, 1);
        assert!(of.satisfied(&solo_ok) && lk.satisfied(&solo_ok));
        assert!(!of.satisfied(&solo_starve) && !lk.satisfied(&solo_starve));
        assert!(of.satisfied(&duo_starve) && lk.satisfied(&duo_starve));
    }

    #[test]
    fn ln_freedom_is_lock_freedom() {
        // (1,n)-freedom: some process must progress whatever the contention.
        let all_starve = exec(3, &[0, 1, 2], &[]);
        let one_ok = exec(3, &[0, 1, 2], &[2]);
        let lf = LkFreedom::new(1, 3);
        let llf = LLockFreedom::new(1);
        assert!(!lf.satisfied(&all_starve));
        assert!(!llf.satisfied(&all_starve));
        assert!(lf.satisfied(&one_ok));
        assert!(llf.satisfied(&one_ok));
    }

    #[test]
    fn lk_union_of_halves_when_all_correct_step() {
        // On executions where every correct process steps in the window,
        // (l,k)-freedom coincides with l-lock-freedom ∪ k-obstruction-
        // freedom (the paper's remark after Definition 5.1).
        let samples = [
            exec(3, &[0, 1, 2], &[]),
            exec(3, &[0, 1, 2], &[0]),
            exec(3, &[0, 1, 2], &[0, 1]),
            exec(3, &[0, 1, 2], &[0, 1, 2]),
        ];
        for l in 1..=3usize {
            for k in l..=3usize {
                let lk = LkFreedom::new(l, k);
                let lf = LLockFreedom::new(l);
                let of = KObstructionFreedom::new(k);
                for (i, e) in samples.iter().enumerate() {
                    assert_eq!(
                        lk.satisfied(e),
                        lf.satisfied(e) || of.satisfied(e),
                        "({l},{k}) vs union on sample {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn crash_reduces_correct_count() {
        // 2 of 3 crash; the survivor progresses: (2,2)-freedom holds
        // because fewer than l=2 processes are correct and all correct
        // progress.
        let mut events = vec![
            Event::Invoked(p(0), Operation::Propose(Value::new(1))),
            Event::Invoked(p(1), Operation::Propose(Value::new(1))),
            Event::Invoked(p(2), Operation::Propose(Value::new(1))),
            Event::Crashed(p(1)),
            Event::Crashed(p(2)),
            Event::Stepped(p(0)),
            Event::Responded(p(0), Response::Decided(Value::new(1))),
        ];
        events.push(Event::Invoked(p(0), Operation::Propose(Value::new(1))));
        let view = ExecutionView::new(&events, 3, 0, ProgressKind::AnyResponse);
        assert!(LkFreedom::new(2, 2).satisfied(&view));
    }

    #[test]
    fn named_points() {
        assert_eq!(LkFreedom::obstruction_freedom(), LkFreedom::new(1, 1));
        assert_eq!(LkFreedom::lock_freedom(4), LkFreedom::new(1, 4));
        assert_eq!(LkFreedom::wait_freedom(4), LkFreedom::new(4, 4));
        // Standard strength chain: wait-freedom ⊐ lock-freedom;
        // obstruction-freedom is weaker than both on the product order's
        // comparable pairs.
        assert!(LkFreedom::wait_freedom(4).is_stronger_or_equal(&LkFreedom::lock_freedom(4)));
        assert!(LkFreedom::lock_freedom(4).is_stronger_or_equal(&LkFreedom::obstruction_freedom()));
    }

    #[test]
    fn grid_enumerates_l_le_k() {
        let g = LkFreedom::grid(3);
        assert_eq!(g.len(), 6); // (1,1) (1,2) (1,3) (2,2) (2,3) (3,3)
        assert!(g.iter().all(|f| f.l() <= f.k()));
    }

    #[test]
    #[should_panic(expected = "1 <= l <= k")]
    fn invalid_lk_panics() {
        let _ = LkFreedom::new(3, 2);
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(LkFreedom::new(1, 2).to_string(), "(1,2)-freedom");
        assert_eq!(LLockFreedom::new(2).name(), "2-lock-freedom");
        assert_eq!(KObstructionFreedom::new(3).name(), "3-obstruction-freedom");
    }
}
