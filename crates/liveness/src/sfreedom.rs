//! S-freedom (Taubenfeld, "The computational structure of progress
//! conditions", DISC 2010), discussed in the paper's Section 6.

use std::collections::BTreeSet;

use crate::progress::ExecutionView;
use crate::property::LivenessProperty;

/// S-freedom for a set `S` of natural numbers: for every set `P` of correct
/// processes with `|P| ∈ S`, every process in `P` makes progress as long as
/// the processes of `P` run without step contention from outside `P`.
///
/// Window semantics: if the set of window steppers `P` consists of correct
/// processes and `|P| ∈ S`, then all of them must make progress.
///
/// Section 6 recalls two structural facts that the core crate's Section 6
/// experiment regenerates: S-freedom is implementable for consensus from
/// registers iff `|S| = 1`, and distinct singleton S-freedom properties are
/// pairwise incomparable — so even this restricted family has no strongest
/// implementable member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SFreedom {
    sizes: BTreeSet<usize>,
}

impl SFreedom {
    /// Creates S-freedom for the given set of contention sizes.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains 0.
    pub fn new<I: IntoIterator<Item = usize>>(sizes: I) -> Self {
        let sizes: BTreeSet<usize> = sizes.into_iter().collect();
        assert!(!sizes.is_empty(), "S-freedom requires a non-empty S");
        assert!(!sizes.contains(&0), "S-freedom sizes must be positive");
        SFreedom { sizes }
    }

    /// The set `S`.
    pub fn sizes(&self) -> &BTreeSet<usize> {
        &self.sizes
    }

    /// Whether `self` is stronger than or equal to `other` (more sets `P`
    /// constrained ⇒ smaller execution set ⇒ stronger): `other.S ⊆ self.S`.
    pub fn is_stronger_or_equal(&self, other: &SFreedom) -> bool {
        other.sizes.is_subset(&self.sizes)
    }

    /// Whether the two properties are incomparable (neither ⊆ the other).
    pub fn incomparable(&self, other: &SFreedom) -> bool {
        !self.is_stronger_or_equal(other) && !other.is_stronger_or_equal(self)
    }
}

impl std::fmt::Display for SFreedom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let list: Vec<String> = self.sizes.iter().map(|s| s.to_string()).collect();
        write!(f, "{{{}}}-freedom", list.join(","))
    }
}

impl LivenessProperty for SFreedom {
    fn name(&self) -> String {
        self.to_string()
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        let steppers = view.steppers();
        if !self.sizes.contains(&steppers.len()) {
            return true;
        }
        if steppers.iter().any(|&p| !view.is_correct(p)) {
            // Contention includes a crashed process' past steps: treat the
            // set as not a set of correct processes — unconstrained.
            return true;
        }
        steppers.into_iter().all(|p| view.makes_progress(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressKind;
    use slx_history::{Operation, ProcessId, Response, Value};
    use slx_memory::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn exec(n: usize, stepping: &[usize], progressing: &[usize]) -> ExecutionView {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        for &i in stepping {
            events.push(Event::Stepped(p(i)));
        }
        for &i in progressing {
            events.push(Event::Responded(p(i), Response::Decided(Value::new(1))));
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        ExecutionView::new(&events, n, 0, ProgressKind::AnyResponse)
    }

    #[test]
    fn singleton_one_is_obstruction_freedom_shape() {
        let s = SFreedom::new([1]);
        assert!(s.satisfied(&exec(3, &[0], &[0])));
        assert!(!s.satisfied(&exec(3, &[0], &[])));
        // Two steppers: |P| = 2 ∉ {1}, unconstrained.
        assert!(s.satisfied(&exec(3, &[0, 1], &[])));
    }

    #[test]
    fn singleton_two_constrains_only_pairs() {
        let s = SFreedom::new([2]);
        assert!(s.satisfied(&exec(3, &[0], &[])));
        assert!(!s.satisfied(&exec(3, &[0, 1], &[0])));
        assert!(s.satisfied(&exec(3, &[0, 1], &[0, 1])));
        assert!(s.satisfied(&exec(3, &[0, 1, 2], &[])));
    }

    #[test]
    fn singletons_pairwise_incomparable() {
        // The Section 6 fact behind "no strongest implementable S-freedom".
        for a in 1..=4usize {
            for b in 1..=4usize {
                if a != b {
                    assert!(SFreedom::new([a]).incomparable(&SFreedom::new([b])));
                }
            }
        }
    }

    #[test]
    fn subset_order() {
        let big = SFreedom::new([1, 2, 3]);
        let small = SFreedom::new([2]);
        assert!(big.is_stronger_or_equal(&small));
        assert!(!small.is_stronger_or_equal(&big));
        assert!(!big.incomparable(&small));
    }

    #[test]
    fn semantic_order_matches_subset_order() {
        let samples = [
            exec(3, &[0], &[0]),
            exec(3, &[0], &[]),
            exec(3, &[0, 1], &[0, 1]),
            exec(3, &[0, 1], &[0]),
            exec(3, &[0, 1, 2], &[]),
        ];
        let all = [
            SFreedom::new([1]),
            SFreedom::new([2]),
            SFreedom::new([3]),
            SFreedom::new([1, 2]),
            SFreedom::new([1, 2, 3]),
        ];
        for strong in &all {
            for weak in &all {
                if strong.is_stronger_or_equal(weak) {
                    for (i, e) in samples.iter().enumerate() {
                        if strong.satisfied(e) {
                            assert!(weak.satisfied(e), "{strong} vs {weak} on {i}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(SFreedom::new([1, 3]).to_string(), "{1,3}-freedom");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_s_panics() {
        let _ = SFreedom::new(Vec::<usize>::new());
    }
}
