//! (n,x)-liveness (Imbs, Raynal & Taubenfeld, "On asymmetric progress
//! conditions", PODC 2010), discussed in the paper's Section 6.

use std::cmp::Ordering;

use slx_history::ProcessId;

use crate::progress::ExecutionView;
use crate::property::LivenessProperty;

/// (n,x)-liveness: in an `n`-process system, a designated set of `x`
/// processes must be **wait-free** (always make progress when correct)
/// while the remaining `n − x` must be **obstruction-free** (make progress
/// when running without step contention).
///
/// Unlike (l,k)-freedom, the family `{(n,x) : 0 ≤ x ≤ n}` is *totally
/// ordered* by `x`, which is why (Section 6) a strongest implementable and
/// a weakest non-implementable member exist: `(n,0)` and `(n,1)`
/// respectively, for consensus from registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NxLiveness {
    n: usize,
    /// The designated wait-free processes (by convention the first `x`).
    wait_free: Vec<ProcessId>,
}

impl NxLiveness {
    /// Creates (n,x)-liveness with processes `p1..px` designated wait-free.
    ///
    /// # Panics
    ///
    /// Panics if `x > n`.
    pub fn new(n: usize, x: usize) -> Self {
        assert!(x <= n, "(n,x)-liveness requires x <= n");
        NxLiveness {
            n,
            wait_free: ProcessId::all(x).collect(),
        }
    }

    /// The number of wait-free processes `x`.
    pub fn x(&self) -> usize {
        self.wait_free.len()
    }

    /// The system size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total strength order: more wait-free processes is stronger.
    pub fn cmp_strength(&self, other: &NxLiveness) -> Ordering {
        self.x().cmp(&other.x())
    }
}

impl std::fmt::Display for NxLiveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})-liveness", self.n, self.x())
    }
}

impl LivenessProperty for NxLiveness {
    fn name(&self) -> String {
        self.to_string()
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        // Wait-free designates: progress whenever correct.
        for &p in &self.wait_free {
            if view.is_correct(p) && !view.makes_progress(p) {
                return false;
            }
        }
        // Others: obstruction-free — progress when they are the only
        // stepper.
        let steppers = view.steppers();
        if steppers.len() == 1 {
            let solo = steppers[0];
            if !self.wait_free.contains(&solo) && view.is_correct(solo) {
                return view.makes_progress(solo);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressKind;
    use slx_history::{Operation, Response, Value};
    use slx_memory::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn exec(n: usize, stepping: &[usize], progressing: &[usize]) -> ExecutionView {
        let mut events = Vec::new();
        for i in 0..n {
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        for &i in stepping {
            events.push(Event::Stepped(p(i)));
        }
        for &i in progressing {
            events.push(Event::Responded(p(i), Response::Decided(Value::new(1))));
            events.push(Event::Invoked(p(i), Operation::Propose(Value::new(1))));
        }
        ExecutionView::new(&events, n, 0, ProgressKind::AnyResponse)
    }

    #[test]
    fn n0_is_pure_obstruction_freedom() {
        let l = NxLiveness::new(3, 0);
        assert!(l.satisfied(&exec(3, &[0], &[0])));
        assert!(!l.satisfied(&exec(3, &[0], &[])));
        assert!(l.satisfied(&exec(3, &[0, 1], &[])));
    }

    #[test]
    fn n1_requires_first_process_wait_free() {
        let l = NxLiveness::new(3, 1);
        // p1 starves under contention: violated.
        assert!(!l.satisfied(&exec(3, &[0, 1], &[1])));
        // p1 progresses: fine.
        assert!(l.satisfied(&exec(3, &[0, 1], &[0])));
        // p2 (not designated) starving under contention is allowed.
        assert!(l.satisfied(&exec(3, &[0, 1], &[0])));
    }

    #[test]
    fn total_order_by_x() {
        let props: Vec<NxLiveness> = (0..=3).map(|x| NxLiveness::new(3, x)).collect();
        for i in 0..props.len() {
            for j in 0..props.len() {
                assert_eq!(props[i].cmp_strength(&props[j]), i.cmp(&j));
            }
        }
    }

    #[test]
    fn semantic_order_matches_x_order() {
        let samples = [
            exec(3, &[0], &[0]),
            exec(3, &[0], &[]),
            exec(3, &[0, 1], &[]),
            exec(3, &[0, 1], &[0]),
            exec(3, &[0, 1], &[0, 1]),
            exec(3, &[0, 1, 2], &[0, 1, 2]),
        ];
        for x_strong in 0..=3usize {
            for x_weak in 0..=x_strong {
                let strong = NxLiveness::new(3, x_strong);
                let weak = NxLiveness::new(3, x_weak);
                for (i, e) in samples.iter().enumerate() {
                    if strong.satisfied(e) {
                        assert!(weak.satisfied(e), "({x_strong}) vs ({x_weak}) on {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn crashed_waitfree_process_unconstrained() {
        let l = NxLiveness::new(2, 1);
        let mut events = vec![
            Event::Invoked(p(0), Operation::Propose(Value::new(1))),
            Event::Crashed(p(0)),
            Event::Stepped(p(1)),
        ];
        events.push(Event::Invoked(p(1), Operation::Propose(Value::new(1))));
        let view = ExecutionView::new(&events, 2, 0, ProgressKind::AnyResponse);
        // p1 crashed; p2 is solo but that's its first steps with a pending
        // invocation — obstruction-freedom applies: p2 must progress.
        assert!(!l.satisfied(&view));
    }

    #[test]
    fn display_format() {
        assert_eq!(NxLiveness::new(4, 2).to_string(), "(4,2)-liveness");
    }

    #[test]
    #[should_panic(expected = "x <= n")]
    fn x_bigger_than_n_panics() {
        let _ = NxLiveness::new(2, 3);
    }
}
