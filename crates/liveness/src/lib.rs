//! Liveness properties of shared objects (Definition 3.2 and Section 5).
//!
//! A liveness property is a superset of the strongest property `Lmax`
//! (progress for all correct processes). Liveness constrains *infinite*
//! fair executions; this crate evaluates properties on finite executions
//! through a *steady-state window* ([`ExecutionView`]): a process "takes
//! infinitely many steps" iff it steps inside the window, and "makes
//! progress" iff it receives a good response inside the window (or has
//! nothing pending). Exhaustive *proofs* of liveness violations use lassos
//! instead (`slx-explorer`); the window semantics is for long
//! random-schedule runs and for the synthetic witness executions of the
//! incomparability arguments.
//!
//! Provided properties:
//!
//! - [`LkFreedom`] — the paper's (l,k)-freedom (Definition 5.1), with the
//!   product partial order of Figure 1;
//! - [`LLockFreedom`] and [`KObstructionFreedom`] — the two halves whose
//!   union (l,k)-freedom is;
//! - [`Lmax`] — wait-freedom / local progress, depending on the
//!   [`ProgressKind`] of the object type (the paper's `G_Tp`);
//! - [`SFreedom`] — Taubenfeld's S-freedom (Section 6);
//! - [`NxLiveness`] — Imbs–Raynal–Taubenfeld (n,x)-liveness (Section 6).

#![warn(missing_docs)]

mod lk;
mod nx;
mod progress;
mod property;
mod sfreedom;

pub use lk::{KObstructionFreedom, LLockFreedom, LkFreedom};
pub use nx::NxLiveness;
pub use progress::{ExecutionView, ProgressKind};
pub use property::{LivenessProperty, Lmax};
pub use sfreedom::SFreedom;
