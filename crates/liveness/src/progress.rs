//! Window-based progress analysis of finite executions.

use slx_history::{ProcessId, Response};
use slx_memory::Event;

/// Which responses count as "good" (the paper's `G_Tp ⊆ Res`): for
/// consensus and registers any response is progress; for transactional
/// memory only commit events are (aborting everything would otherwise be a
/// trivially "live" TM — exactly the paper's motivation for `G_Tp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressKind {
    /// Every response is progress (consensus, registers, ...).
    AnyResponse,
    /// Only `C` (commit) responses are progress (transactional memory).
    CommitOnly,
}

impl ProgressKind {
    /// Whether `resp` is a good response under this kind.
    pub fn is_good(self, resp: Response) -> bool {
        match self {
            ProgressKind::AnyResponse => true,
            ProgressKind::CommitOnly => resp.is_commit(),
        }
    }
}

/// A finite execution with a designated steady-state window, exposing the
/// quantities liveness definitions talk about:
///
/// - a process *takes infinitely many steps* ⇔ it steps inside the window;
/// - a process is *correct* ⇔ it never crashes in the execution;
/// - a process *makes progress* ⇔ it receives a good response inside the
///   window, or is genuinely inactive (no invocation inside the window and
///   nothing pending at the end — a process that stopped requesting is not
///   being denied anything, but a process caught between retries is).
#[derive(Debug, Clone)]
pub struct ExecutionView {
    n: usize,
    kind: ProgressKind,
    stepped_in_window: Vec<bool>,
    crashed: Vec<bool>,
    good_in_window: Vec<u64>,
    invoked_in_window: Vec<bool>,
    pending_at_end: Vec<bool>,
}

impl ExecutionView {
    /// Analyzes `events` for `n` processes with the window starting at
    /// event index `window_start`.
    ///
    /// # Panics
    ///
    /// Panics if `window_start > events.len()`.
    pub fn new(events: &[Event], n: usize, window_start: usize, kind: ProgressKind) -> Self {
        assert!(
            window_start <= events.len(),
            "window_start {window_start} beyond execution length {}",
            events.len()
        );
        let mut view = ExecutionView {
            n,
            kind,
            stepped_in_window: vec![false; n],
            crashed: vec![false; n],
            good_in_window: vec![0; n],
            invoked_in_window: vec![false; n],
            pending_at_end: vec![false; n],
        };
        for (i, e) in events.iter().enumerate() {
            match e {
                Event::Invoked(p, _) => {
                    view.pending_at_end[p.index()] = true;
                    if i >= window_start {
                        view.invoked_in_window[p.index()] = true;
                    }
                }
                Event::Responded(p, r) => {
                    view.pending_at_end[p.index()] = false;
                    if i >= window_start && kind.is_good(*r) {
                        view.good_in_window[p.index()] += 1;
                    }
                }
                Event::Crashed(p) => view.crashed[p.index()] = true,
                Event::Stepped(p) => {
                    if i >= window_start {
                        view.stepped_in_window[p.index()] = true;
                    }
                }
            }
        }
        view
    }

    /// Convenience: window = the second half of the execution.
    pub fn second_half(events: &[Event], n: usize, kind: ProgressKind) -> Self {
        ExecutionView::new(events, n, events.len() / 2, kind)
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The progress kind in use.
    pub fn kind(&self) -> ProgressKind {
        self.kind
    }

    /// Processes that step inside the window ("take infinitely many steps").
    pub fn steppers(&self) -> Vec<ProcessId> {
        (0..self.n)
            .filter(|&i| self.stepped_in_window[i])
            .map(ProcessId::new)
            .collect()
    }

    /// Whether `p` is correct (never crashed).
    pub fn is_correct(&self, p: ProcessId) -> bool {
        !self.crashed[p.index()]
    }

    /// The correct processes.
    pub fn correct(&self) -> Vec<ProcessId> {
        (0..self.n)
            .filter(|&i| !self.crashed[i])
            .map(ProcessId::new)
            .collect()
    }

    /// Whether `p` makes progress: a good response in the window, or
    /// genuine inactivity (nothing invoked in the window and nothing
    /// pending at the end).
    pub fn makes_progress(&self, p: ProcessId) -> bool {
        self.good_in_window[p.index()] > 0
            || (!self.invoked_in_window[p.index()] && !self.pending_at_end[p.index()])
    }

    /// Number of good responses `p` received in the window.
    pub fn good_responses(&self, p: ProcessId) -> u64 {
        self.good_in_window[p.index()]
    }

    /// Correct processes that make progress.
    pub fn progressing_correct(&self) -> Vec<ProcessId> {
        self.correct()
            .into_iter()
            .filter(|&p| self.makes_progress(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{Operation, Value};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn propose(i: usize) -> Event {
        Event::Invoked(p(i), Operation::Propose(Value::new(0)))
    }

    #[test]
    fn progress_kinds() {
        assert!(ProgressKind::AnyResponse.is_good(Response::Aborted));
        assert!(!ProgressKind::CommitOnly.is_good(Response::Aborted));
        assert!(ProgressKind::CommitOnly.is_good(Response::Committed));
    }

    #[test]
    fn window_analysis() {
        let events = vec![
            propose(0),
            propose(1),
            Event::Stepped(p(0)),
            // --- window starts here (index 3) ---
            Event::Stepped(p(1)),
            Event::Responded(p(1), Response::Decided(Value::new(0))),
            Event::Crashed(p(2)),
        ];
        let v = ExecutionView::new(&events, 3, 3, ProgressKind::AnyResponse);
        assert_eq!(v.steppers(), vec![p(1)]);
        assert!(!v.is_correct(p(2)));
        assert_eq!(v.correct(), vec![p(0), p(1)]);
        assert!(v.makes_progress(p(1)));
        assert!(!v.makes_progress(p(0))); // pending, no response in window
        assert!(v.makes_progress(p(2))); // nothing pending
        assert_eq!(v.good_responses(p(1)), 1);
        assert_eq!(v.progressing_correct(), vec![p(1)]);
    }

    #[test]
    fn response_before_window_not_counted_but_unpends() {
        let events = vec![
            propose(0),
            Event::Stepped(p(0)),
            Event::Responded(p(0), Response::Decided(Value::new(0))),
            // --- window starts here ---
            Event::Stepped(p(1)),
        ];
        let v = ExecutionView::new(&events, 2, 3, ProgressKind::AnyResponse);
        assert_eq!(v.good_responses(p(0)), 0);
        // Not pending at the end, so still "making progress".
        assert!(v.makes_progress(p(0)));
    }

    #[test]
    fn commit_only_counts_commits() {
        let events = vec![
            Event::Invoked(p(0), Operation::TxCommit),
            Event::Responded(p(0), Response::Aborted),
            Event::Invoked(p(0), Operation::TxCommit),
            Event::Responded(p(0), Response::Committed),
        ];
        let v = ExecutionView::new(&events, 1, 0, ProgressKind::CommitOnly);
        assert_eq!(v.good_responses(p(0)), 1);
    }

    #[test]
    fn second_half_window() {
        let events = vec![propose(0); 10];
        let v = ExecutionView::second_half(&events, 1, ProgressKind::AnyResponse);
        assert_eq!(v.n(), 1);
        assert_eq!(v.kind(), ProgressKind::AnyResponse);
    }

    #[test]
    #[should_panic(expected = "beyond execution length")]
    fn bad_window_panics() {
        let _ = ExecutionView::new(&[], 1, 5, ProgressKind::AnyResponse);
    }
}
