//! The liveness-property trait and `Lmax`.

use crate::progress::ExecutionView;

/// A liveness property, represented by its window-semantics predicate on
/// finite executions (see the crate docs for how this approximates the
/// infinite-execution definition).
///
/// The stronger/weaker relation of the paper (`L2` stronger than `L1` iff
/// `L2 ⊆ L1`) appears here as implication of predicates; concrete families
/// expose explicit partial orders ([`crate::LkFreedom::partial_cmp_strength`] and
/// friends) matching their set-theoretic inclusion.
pub trait LivenessProperty {
    /// Human-readable name, e.g. `"(1,2)-freedom"`.
    fn name(&self) -> String;

    /// Whether the execution (as analyzed in `view`) satisfies the
    /// property.
    fn satisfied(&self, view: &ExecutionView) -> bool;
}

impl<T: LivenessProperty + ?Sized> LivenessProperty for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn satisfied(&self, view: &ExecutionView) -> bool {
        (**self).satisfied(view)
    }
}

impl<T: LivenessProperty + ?Sized> LivenessProperty for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn satisfied(&self, view: &ExecutionView) -> bool {
        (**self).satisfied(view)
    }
}

/// The strongest liveness property `Lmax` (Section 3.2): **every correct
/// process makes progress**, no matter how processes are scheduled.
///
/// Instantiated with [`crate::ProgressKind::AnyResponse`] this is
/// wait-freedom (consensus, registers); with
/// [`crate::ProgressKind::CommitOnly`] it is local progress (TM). It
/// coincides with `(n,n)`-freedom, which the test suite verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lmax {
    _priv: (),
}

impl Lmax {
    /// Creates `Lmax`. The progress kind lives in the [`ExecutionView`].
    pub fn new() -> Self {
        Lmax { _priv: () }
    }
}

impl Default for Lmax {
    fn default() -> Self {
        Lmax::new()
    }
}

impl LivenessProperty for Lmax {
    fn name(&self) -> String {
        "Lmax (progress for all correct processes)".to_owned()
    }

    fn satisfied(&self, view: &ExecutionView) -> bool {
        view.correct().into_iter().all(|p| view.makes_progress(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressKind;
    use slx_history::{Operation, ProcessId, Response, Value};
    use slx_memory::Event;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn lmax_requires_all_correct_to_progress() {
        // p1 decides, p2 pending forever: Lmax violated.
        let events = vec![
            Event::Invoked(p(0), Operation::Propose(Value::new(1))),
            Event::Invoked(p(1), Operation::Propose(Value::new(2))),
            Event::Stepped(p(0)),
            Event::Responded(p(0), Response::Decided(Value::new(1))),
            Event::Stepped(p(1)),
        ];
        let view = ExecutionView::new(&events, 2, 0, ProgressKind::AnyResponse);
        assert!(!Lmax::new().satisfied(&view));
    }

    #[test]
    fn lmax_ignores_crashed_processes() {
        let events = vec![
            Event::Invoked(p(0), Operation::Propose(Value::new(1))),
            Event::Invoked(p(1), Operation::Propose(Value::new(2))),
            Event::Crashed(p(1)),
            Event::Stepped(p(0)),
            Event::Responded(p(0), Response::Decided(Value::new(1))),
        ];
        let view = ExecutionView::new(&events, 2, 0, ProgressKind::AnyResponse);
        assert!(Lmax::new().satisfied(&view));
    }

    #[test]
    fn blanket_impls_delegate() {
        let l = Lmax::new();
        let r: &dyn LivenessProperty = &l;
        assert!(r.name().contains("Lmax"));
        let b: Box<dyn LivenessProperty> = Box::new(Lmax::new());
        let view = ExecutionView::new(&[], 0, 0, ProgressKind::AnyResponse);
        assert!(b.satisfied(&view));
    }
}
