//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Timestamp rule on/off**: Algorithm I(1,2) vs the same TM without
//!    the rule (`GlobalVersionTm`) — the rule's cost is one snapshot scan
//!    per `tryC()` plus the forced aborts at ≥ 3 synchronized timestamps.
//! 2. **Snapshot substrate**: base snapshot object (`AgpTm`) vs
//!    register-only double collect (`AgpTmDc`) — the substrate swap
//!    multiplies scan cost by ~2n register reads (more under
//!    interference) without changing any verdicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slx_bench::{agp_system, commits, contended_scheduler, gv_system};
use slx_core::history::ProcessId;
use slx_core::memory::{Memory, System};
use slx_core::tm::{AgpTmDc, TmWord};
use std::time::Duration;

const EVENTS: u64 = 4_000;

fn agp_dc_system(n: usize) -> System<TmWord, AgpTmDc> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTmDc::alloc(&mut mem, n, 1);
    let procs = (0..n)
        .map(|i| AgpTmDc::new(c, r.clone(), ProcessId::new(i), 1))
        .collect();
    System::new(mem, procs)
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_per_4k_events");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[2usize, 3, 5] {
        group.bench_with_input(
            BenchmarkId::new("rule_off_global_version", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sys = gv_system(n);
                    let mut sched = contended_scheduler(n, 11);
                    sys.run(&mut sched, EVENTS);
                    commits(sys.history())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rule_on_snapshot_object", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sys = agp_system(n);
                    let mut sched = contended_scheduler(n, 11);
                    sys.run(&mut sched, EVENTS);
                    commits(sys.history())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rule_on_double_collect", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut sys = agp_dc_system(n);
                    let mut sched = contended_scheduler(n, 11);
                    sys.run(&mut sched, EVENTS);
                    commits(sys.history())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
