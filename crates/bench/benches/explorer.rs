//! B4 — explorer and adversary machinery cost: exhaustive safety
//! exploration vs depth, valence queries, and the full bivalence-adversary
//! step.
//!
//! These are the engines behind Figure 1's verdicts; the bench documents
//! how far the small-scope checks can be pushed. The `explore_safety_*`
//! groups pit the `slx-engine` kernel (fingerprint-only visited set,
//! parallel BFS) against the seed's retained-clone baseline — the ≥2x
//! states/sec acceptance gate of the engine refactor (see also the
//! dependency-free `engine_bench` binary, which reports the same
//! comparison without Criterion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slx_core::adversary::run_bivalence_adversary;
use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::explorer::baseline::explore_safety_retained;
use slx_core::explorer::{decidable_values, explore_safety, history_digest};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;
use std::time::Duration;

fn of_system() -> System<ConsWord, ObstructionFreeConsensus> {
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(0), 2),
        ObstructionFreeConsensus::new(layout, ProcessId::new(1), 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(ProcessId::new(0), Operation::Propose(Value::new(1)))
        .unwrap();
    sys.invoke(ProcessId::new(1), Operation::Propose(Value::new(2)))
        .unwrap();
    sys
}

fn explorer_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let active = [ProcessId::new(0), ProcessId::new(1)];

    for &depth in &[10usize, 14, 18, 22] {
        group.bench_with_input(
            BenchmarkId::new("explore_safety_depth", depth),
            &depth,
            |b, &depth| {
                let sys = of_system();
                let safety = ConsensusSafety::new();
                b.iter(|| explore_safety(&sys, &active, depth, &safety, history_digest))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explore_safety_retained_baseline_depth", depth),
            &depth,
            |b, &depth| {
                let sys = of_system();
                let safety = ConsensusSafety::new();
                b.iter(|| explore_safety_retained(&sys, &active, depth, &safety, history_digest))
            },
        );
    }

    group.bench_function("valence_query_initial", |b| {
        let sys = of_system();
        b.iter(|| decidable_values(&sys, &active, 60_000))
    });

    group.bench_function("bivalence_adversary_20_steps", |b| {
        b.iter(|| {
            let mut sys = of_system();
            run_bivalence_adversary(&mut sys, &active, 20, 40_000)
        })
    });

    group.finish();
}

criterion_group!(benches, explorer_benches);
criterion_main!(benches);
