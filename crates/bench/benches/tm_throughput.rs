//! B1 — TM commit throughput and abort behaviour under contention.
//!
//! Not a paper figure (the paper has no performance evaluation); this
//! bench characterizes the three TMs so the liveness classifications have
//! quantitative texture: the lock-free TM's commits scale with events
//! regardless of contention, Algorithm I(1,2) pays its timestamp rule only
//! at ≥ 3 concurrent same-numbered transactions, and the lock TM
//! serializes everything.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slx_bench::{agp_system, commits, contended_scheduler, gv_system, lock_system};
use std::time::Duration;

const EVENTS: u64 = 5_000;

fn tm_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm_commits_per_5k_events");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::new("global_version", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = gv_system(n);
                let mut sched = contended_scheduler(n, 42);
                sys.run(&mut sched, EVENTS);
                commits(sys.history())
            })
        });
        group.bench_with_input(BenchmarkId::new("agp_i12", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = agp_system(n);
                let mut sched = contended_scheduler(n, 42);
                sys.run(&mut sched, EVENTS);
                commits(sys.history())
            })
        });
        group.bench_with_input(BenchmarkId::new("lock_baseline", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = lock_system(n);
                let mut sched = contended_scheduler(n, 42);
                sys.run(&mut sched, EVENTS);
                commits(sys.history())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, tm_throughput);
criterion_main!(benches);
