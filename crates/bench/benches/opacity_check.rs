//! B3 — opacity checker scaling: exhaustive witness search (the paper's
//! definition, exponential) vs the polynomial unique-write certifier.
//!
//! The cross-over justifies the two-checker design documented in
//! DESIGN.md: the exhaustive checker is the semantic ground truth at small
//! scope; the certifier is what makes history-scale validation feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slx_bench::{contended_scheduler, gv_system};
use slx_core::history::{History, Value};
use slx_core::safety::{certify_unique_writes, Opacity, SafetyProperty};
use std::time::Duration;

fn history_of_len(events: u64) -> History {
    let mut sys = gv_system(2);
    let mut sched = contended_scheduler(2, 7);
    sys.run(&mut sched, events);
    sys.history().clone()
}

fn opacity_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("opacity_checkers");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &events in &[40u64, 80, 120, 160] {
        let h = history_of_len(events);
        group.bench_with_input(BenchmarkId::new("exhaustive", h.len()), &h, |b, h| {
            let checker = Opacity::new(Value::new(0));
            b.iter(|| checker.allows(h))
        });
    }
    for &events in &[40u64, 200, 1_000, 5_000] {
        let h = history_of_len(events);
        group.bench_with_input(BenchmarkId::new("certifier", h.len()), &h, |b, h| {
            b.iter(|| certify_unique_writes(h, Value::new(0)))
        });
    }
    group.finish();
}

criterion_group!(benches, opacity_check);
criterion_main!(benches);
