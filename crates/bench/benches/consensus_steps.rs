//! B2 — consensus decision cost: register-only obstruction-free consensus
//! (solo and contended) vs wait-free CAS consensus.
//!
//! Quantifies the price of the weaker base objects that make the paper's
//! exclusions bite: the CAS algorithm decides in 2 primitives, the
//! register-only one in O(n) per commit-adopt round with round counts
//! depending on the schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slx_core::consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, RoundRobin, SoloScheduler, System};
use std::time::Duration;

fn of_system(n: usize) -> System<ConsWord, ObstructionFreeConsensus> {
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 64);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
        .collect();
    System::new(mem, procs)
}

fn consensus_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_decide");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &n in &[2usize, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::new("of_registers_solo", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = of_system(n);
                let p0 = ProcessId::new(0);
                sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
                sys.run(&mut SoloScheduler::new(p0), 100_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("of_registers_lockstep", n), &n, |b, &n| {
            b.iter(|| {
                let mut sys = of_system(n);
                for i in 0..n {
                    sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(i as i64)))
                        .unwrap();
                }
                sys.run(&mut RoundRobin::new(), 1_000_000)
            })
        });
        group.bench_with_input(BenchmarkId::new("cas_lockstep", n), &n, |b, &n| {
            b.iter(|| {
                let mut mem: Memory<ConsWord> = Memory::new();
                let obj = CasConsensus::alloc(&mut mem);
                let procs = (0..n).map(|_| CasConsensus::new(obj)).collect();
                let mut sys = System::new(mem, procs);
                for i in 0..n {
                    sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(i as i64)))
                        .unwrap();
                }
                sys.run(&mut RoundRobin::new(), 100_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, consensus_steps);
criterion_main!(benches);
