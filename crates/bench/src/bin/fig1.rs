//! Regenerates **Figure 1** (both panes) with anchor evidence.
//!
//! Run with: `cargo run --release -p slx-bench --bin fig1 [n]`

use slx_core::grid::{consensus_grid, tm_grid, Verdict};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    for (pane, grid) in [("(a)", consensus_grid(n)), ("(b)", tm_grid(n))] {
        println!("=== Figure 1{pane} ===");
        println!("{grid}");
        println!();
        println!(
            "strongest implementable: {}",
            grid.strongest_implementable()
                .iter()
                .map(|p| p.lk.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "weakest excluded       : {}",
            grid.weakest_excluded()
                .iter()
                .map(|p| p.lk.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!("evidence:");
        for p in &grid.points {
            let (mark, basis) = match &p.verdict {
                Verdict::Implementable { basis } => ("○", basis),
                Verdict::Excluded { basis } => ("●", basis),
            };
            println!("  {mark} {:<14} {}", p.lk.to_string(), basis);
        }
        println!();
    }
}
