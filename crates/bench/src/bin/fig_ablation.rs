//! Commit/abort accounting table for the three TMs and the two Algorithm
//! I(1,2) substrates — the ablation data behind `benches/ablation.rs`, in
//! table form (counts, not wall-clock).
//!
//! Run with: `cargo run --release -p slx-bench --bin fig_ablation [events]`

use slx_bench::{aborts, agp_system, commits, contended_scheduler, gv_system, lock_system};
use slx_core::history::ProcessId;
use slx_core::memory::{Memory, System};
use slx_core::tm::{AgpTmDc, TmWord};

fn agp_dc_system(n: usize) -> System<TmWord, AgpTmDc> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTmDc::alloc(&mut mem, n, 1);
    let procs = (0..n)
        .map(|i| AgpTmDc::new(c, r.clone(), ProcessId::new(i), 1))
        .collect();
    System::new(mem, procs)
}

fn main() {
    let events: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    println!("per {events} scheduler events, contended single-variable workload, seed 11");
    println!(
        "{:<28} {:>3} {:>9} {:>9} {:>10}",
        "implementation", "n", "commits", "aborts", "ts-aborts"
    );
    for n in [1usize, 2, 3, 4, 8] {
        // GlobalVersionTm (timestamp rule off).
        let mut sys = gv_system(n);
        let mut sched = contended_scheduler(n, 11);
        sys.run(&mut sched, events);
        println!(
            "{:<28} {:>3} {:>9} {:>9} {:>10}",
            "global-version (rule off)",
            n,
            commits(sys.history()),
            aborts(sys.history()),
            "-"
        );

        // AgpTm (rule on, snapshot object).
        let mut sys = agp_system(n);
        let mut sched = contended_scheduler(n, 11);
        sys.run(&mut sched, events);
        let ts_aborts: u64 = (0..n)
            .map(|i| sys.process(ProcessId::new(i)).unwrap().ts_aborts())
            .sum();
        println!(
            "{:<28} {:>3} {:>9} {:>9} {:>10}",
            "I(1,2) snapshot object",
            n,
            commits(sys.history()),
            aborts(sys.history()),
            ts_aborts
        );

        // AgpTmDc (rule on, double collect).
        let mut sys = agp_dc_system(n);
        let mut sched = contended_scheduler(n, 11);
        sys.run(&mut sched, events);
        let scan_reads: u64 = (0..n)
            .map(|i| sys.process(ProcessId::new(i)).unwrap().scan_reads())
            .sum();
        println!(
            "{:<28} {:>3} {:>9} {:>9} {:>10}",
            "I(1,2) double collect",
            n,
            commits(sys.history()),
            aborts(sys.history()),
            format!("r={scan_reads}")
        );

        // LockTm baseline.
        let mut sys = lock_system(n);
        let mut sched = contended_scheduler(n, 11);
        sys.run(&mut sched, events);
        println!(
            "{:<28} {:>3} {:>9} {:>9} {:>10}",
            "lock baseline",
            n,
            commits(sys.history()),
            aborts(sys.history()),
            "-"
        );
        println!();
    }
    println!("ts-aborts: aborts forced by the timestamp rule (count >= 3);");
    println!("r=N: total register reads spent in double-collect scans.");
}
