//! Regenerates the Section 6 structural reports (S-freedom, (n,x)-liveness).
//!
//! Run with: `cargo run --release -p slx-bench --bin fig_sect6 [n]`

use slx_core::sect6::{nx_report, s_freedom_report};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let s = s_freedom_report(n);
    println!("=== Section 6: S-freedom (n = {n}) ===");
    println!(
        "implementable singletons: {}",
        s.singletons
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("pairwise incomparable   : {}", s.pairwise_incomparable);
    println!("⇒ no strongest implementable S-freedom property exists\n");

    let nx = nx_report(n);
    println!("=== Section 6: (n,x)-liveness (n = {n}) ===");
    println!(
        "chain (weak → strong)   : {}",
        nx.chain
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" < ")
    );
    println!("totally ordered         : {}", nx.totally_ordered);
    println!(
        "strongest implementable : {} (pure obstruction-freedom)",
        nx.strongest_implementable
    );
    println!(
        "weakest non-implementable: {} (one wait-free process suffices for impossibility)",
        nx.weakest_non_implementable
    );
}
