//! Regenerates the `Gmax = ∅` demonstrations behind Corollaries 4.5/4.6.
//!
//! Run with: `cargo run --release -p slx-bench --bin fig_gmax`

use slx_core::theorems::{consensus_gmax_demo, tm_gmax_demo};

fn main() {
    let c = consensus_gmax_demo();
    println!("=== {} ===", c.corollary);
    println!("F1 = {}", c.f1);
    println!("F2 = {}", c.f2);
    println!("F1 ∩ F2 = {}", c.gmax);
    println!("established: {}\n", c.establishes_corollary());

    let t = tm_gmax_demo(800);
    println!("=== {} ===", t.corollary);
    println!(
        "F1 sample: {} histories from the §4.1 strategy vs every opaque TM in the workspace",
        t.f1.len()
    );
    for h in t.f1.iter() {
        println!("  first action: {}   length: {}", h.actions()[0], h.len());
    }
    println!(
        "F2 sample: {} histories from the role-swapped twin",
        t.f2.len()
    );
    for h in t.f2.iter() {
        println!("  first action: {}   length: {}", h.actions()[0], h.len());
    }
    println!("F1 ∩ F2 empty: {}", t.gmax.is_empty());
    println!("established: {}", t.establishes_corollary());
}
