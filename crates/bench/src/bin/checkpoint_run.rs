//! `checkpoint_run` — the CI crash/resume probe.
//!
//! Runs the Figure 1a obstruction-free-consensus safety exploration with
//! checkpointing into a caller-owned directory, *resuming* from that
//! directory when it already holds a committed image. The binary is
//! built so a harness can exercise a **real** crash — not an injected
//! panic — end to end:
//!
//! ```text
//! checkpoint_run <dir> <depth> [every]        # fresh or resumed run
//! SLX_CKPT_RUN_STALL_AFTER=<n> checkpoint_run ...   # park after n levels
//! ```
//!
//! 1. start `checkpoint_run` with `SLX_CKPT_RUN_STALL_AFTER` set: the run
//!    commits checkpoints at the cadence and then sleeps forever once the
//!    stall level is reached (a deterministic window for the harness to
//!    land its signal in),
//! 2. `kill -9` it mid-run,
//! 3. rerun without the stall variable: the run resumes from the last
//!    committed image and finishes,
//! 4. diff the final `verdict ...` line against an uninterrupted run's —
//!    the resume contract makes them byte-identical.
//!
//! The stall (instead of killing at a random moment) keeps the probe
//! deterministic: the harness knows at least `n / every` images were
//! committed before the SIGKILL lands, so the resume path — not the
//! fresh-start fallback — is what the diff exercises.

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::engine::{Checker, CheckpointStore};
use slx_core::explorer::{explore_safety_with, history_digest};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;

/// The Figure 1a anchor system (two proposers, inputs 1 and 2) — the
/// same workload `engine_bench` measures.
fn of_system(inputs: &[i64]) -> System<ConsWord, ObstructionFreeConsensus> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for (i, &input) in inputs.iter().enumerate() {
        sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(input)))
            .unwrap();
    }
    sys
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| {
        eprintln!("usage: checkpoint_run <dir> <depth> [every]");
        std::process::exit(2);
    }));
    let depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        eprintln!("usage: checkpoint_run <dir> <depth> [every]");
        std::process::exit(2);
    });
    let every: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let stall_after = slx_core::engine::knobs::SLX_CKPT_RUN_STALL_AFTER.usize_value();

    let resuming = CheckpointStore::exists(&dir);
    let checker = Checker::auto().with_symmetry(false).with_mem_budget(0);
    let checker = checker.with_checkpoint(&dir, every);
    let checker = if resuming {
        checker.resume(&dir)
    } else {
        checker
    };

    let sys = of_system(&[1, 2]);
    let active = [ProcessId::new(0), ProcessId::new(1)];
    let safety = ConsensusSafety::new();

    if let Some(stall_levels) = stall_after {
        // Run the prefix only (deep enough to commit images), then park:
        // the harness's `kill -9` lands while this process sleeps, which
        // models a crash strictly after the prefix's last commit.
        let out = explore_safety_with(
            &checker,
            &sys,
            &active,
            stall_levels,
            &safety,
            history_digest,
        );
        eprintln!(
            "stalled after {stall_levels} levels ({} configs, {} checkpoints) — awaiting SIGKILL",
            out.configs, out.stats.checkpoints_written
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let out = explore_safety_with(&checker, &sys, &active, depth, &safety, history_digest);
    eprintln!(
        "{} from depth {:?}: {} checkpoints committed",
        if resuming { "resumed" } else { "fresh run" },
        out.stats.resumed_from_depth,
        out.stats.checkpoints_written,
    );
    // The diffable contract line: everything the resume guarantee pins,
    // on stdout, stable across fresh/crashed+resumed executions.
    println!(
        "verdict={} configs={} transitions={} dedup_hits={} peak_frontier={} truncated={}",
        if out.holds() { "holds" } else { "violated" },
        out.configs,
        out.stats.transitions,
        out.stats.dedup_hits,
        out.stats.peak_frontier,
        out.stats.truncated,
    );
}
