//! `engine_bench` — states/sec of the `slx-engine` kernel vs the seed's
//! retained-clone baseline, with no external benchmarking dependency.
//!
//! Runs the obstruction-free-consensus safety exploration (the hot loop
//! behind Figure 1a's white anchor) at several depths on four
//! configurations and prints a comparison table:
//!
//! - **sharded** — the kernel with its sharded visited set (thread count
//!   from `SLX_ENGINE_THREADS` or autodetected; shard count from
//!   `SLX_ENGINE_SHARDS` or four per thread), the default since the
//!   sharded-merge refactor;
//! - **spill** — the same kernel under a 16 KiB frontier memory budget
//!   (`SPILL_BUDGET`): every level beyond the budget round-trips through
//!   `StateCodec` records in temp files (the beyond-RAM configuration;
//!   resident footprint stays bounded while verdicts stay identical);
//! - **1 shard** — the kernel pinned to a single shard: the PR 1
//!   behaviour, whose dedup/merge phase is a single sequential map (the
//!   sharded column must not regress below this one);
//! - **baseline** — the seed's sequential DFS over retained `(System,
//!   digest)` clones.
//!
//! Verdicts and visited counts are asserted equal across all four on
//! every row. Usage:
//!
//! ```text
//! cargo run --release -p slx-bench --bin engine_bench [max_depth]
//! ```

use std::time::Instant;

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::engine::Checker;
use slx_core::explorer::baseline::explore_safety_retained;
use slx_core::explorer::{explore_safety_with, history_digest};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;

/// Frontier memory budget of the spill arm: an encoded consensus record
/// is ~400 bytes, so the 8 KiB chunk window holds ~20 states and the
/// deeper rows' levels (up to ~80 states wide) each spill several chunks
/// — the beyond-RAM regime, scaled down to bench runtimes.
const SPILL_BUDGET: usize = 16 * 1024;

fn of_system() -> System<ConsWord, ObstructionFreeConsensus> {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut mem: Memory<ConsWord> = Memory::new();
    // 16 pre-allocated commit-adopt rounds: ample headroom for the
    // depths benched here (a round costs each process 2n + 2 = 6 steps,
    // so depth 22 reaches round ~4). The seed's 64 rounds left ~80% of
    // every configuration as never-touched `⊥` registers, which skews
    // the spill arm: dead registers are a memcpy for the resident clone
    // but per-object work for the codec.
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p0, 2),
        ObstructionFreeConsensus::new(layout, p1, 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
    sys
}

fn main() {
    let max_depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(22);
    let active = [ProcessId::new(0), ProcessId::new(1)];
    let safety = ConsensusSafety::new();
    let sharded_checker = Checker::auto().with_mem_budget(0);
    let spill_checker = Checker::auto().with_mem_budget(SPILL_BUDGET);
    let single_shard_checker = Checker::auto().with_shards(1).with_mem_budget(0);
    let mut threads_used = 1;
    let mut shards_used = 1;
    let mut balance = 1.0f64;
    let mut spill_chunks = 0usize;
    let mut spill_bytes = 0u64;
    let mut spill_resident = 0usize;
    let mut spill_peak_frontier = 0usize;
    let mut worst_spill_overhead = 0.0f64;

    println!(
        "{:>6} {:>10} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "depth",
        "configs",
        "sharded st/s",
        "spill st/s",
        "1-shard st/s",
        "baseline st/s",
        "spill x",
        "vs base"
    );
    for depth in (10..=max_depth).step_by(4) {
        let sys = of_system();

        // Best-of-3 per configuration: these explorations are
        // milliseconds long, so a single sample is allocator/scheduler
        // noise.
        let measure = |run: &dyn Fn() -> _| {
            let mut best_secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let result = run();
                best_secs = best_secs.min(t.elapsed().as_secs_f64());
                out = Some(result);
            }
            (out.expect("ran at least once"), best_secs)
        };

        let (sharded, sharded_secs) = measure(&|| {
            explore_safety_with(
                &sharded_checker,
                &sys,
                &active,
                depth,
                &safety,
                history_digest,
            )
        });
        let (spill, spill_secs) = measure(&|| {
            explore_safety_with(
                &spill_checker,
                &sys,
                &active,
                depth,
                &safety,
                history_digest,
            )
        });
        let (single, single_secs) = measure(&|| {
            explore_safety_with(
                &single_shard_checker,
                &sys,
                &active,
                depth,
                &safety,
                history_digest,
            )
        });
        let (baseline, baseline_secs) =
            measure(&|| explore_safety_retained(&sys, &active, depth, &safety, history_digest));

        assert_eq!(
            sharded.holds(),
            baseline.holds(),
            "verdicts must agree at depth {depth}"
        );
        assert_eq!(
            sharded.configs, baseline.configs,
            "visited counts must agree at depth {depth}"
        );
        assert_eq!(
            sharded.configs, single.configs,
            "shard count must not change visited counts at depth {depth}"
        );
        assert_eq!(sharded.holds(), single.holds());
        assert_eq!(
            spill.configs, sharded.configs,
            "spilling must not change visited counts at depth {depth}"
        );
        assert_eq!(spill.holds(), sharded.holds());
        assert_eq!(
            spill.stats.dedup_hits, sharded.stats.dedup_hits,
            "spilling must not change dedup accounting at depth {depth}"
        );

        threads_used = sharded.stats.threads;
        shards_used = sharded.stats.shards;
        balance = sharded.stats.shard_balance();
        spill_chunks = spill.stats.spilled_chunks;
        spill_bytes = spill.stats.spilled_bytes;
        spill_resident = spill.stats.peak_resident_states;
        spill_peak_frontier = spill.stats.peak_frontier;
        let sharded_rate = sharded.configs as f64 / sharded_secs;
        let spill_rate = spill.configs as f64 / spill_secs;
        let single_rate = single.configs as f64 / single_secs;
        let baseline_rate = baseline.configs as f64 / baseline_secs;
        let spill_overhead = sharded_rate / spill_rate;
        worst_spill_overhead = worst_spill_overhead.max(spill_overhead);
        println!(
            "{:>6} {:>10} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x {:>8.2}x",
            depth,
            sharded.configs,
            sharded_rate,
            spill_rate,
            single_rate,
            baseline_rate,
            spill_overhead,
            sharded_rate / baseline_rate
        );
    }
    println!(
        "\nengine backend: {threads_used} thread(s), {shards_used} visited-set shard(s) \
         (occupancy balance {balance:.2}); dedup on 128-bit fingerprints \
         (baseline retains full configuration clones). \
         Knobs: SLX_ENGINE_THREADS, SLX_ENGINE_SHARDS, SLX_ENGINE_MEM_BUDGET, \
         SLX_ENGINE_SPILL_DIR."
    );
    println!(
        "spill arm (last row): {SPILL_BUDGET}-byte budget, {spill_chunks} chunks / \
         {spill_bytes} bytes spilled, peak {spill_resident} resident of \
         {spill_peak_frontier} frontier states; worst in-memory/spill ratio \
         {worst_spill_overhead:.2}x (beyond-RAM target: <= 1.30x)."
    );
}
