//! `engine_bench` — states/sec of the `slx-engine` kernel vs the seed's
//! retained-clone baseline, with no external benchmarking dependency.
//!
//! Runs the obstruction-free-consensus safety exploration (the hot loop
//! behind Figure 1a's white anchor) at several depths on five
//! configurations and prints a comparison table:
//!
//! - **sharded** — the kernel with its sharded visited set (thread count
//!   from `SLX_ENGINE_THREADS` or autodetected; shard count from
//!   `SLX_ENGINE_SHARDS` or four per thread), the default since the
//!   sharded-merge refactor;
//! - **spill Δ** — the same kernel under a 16 KiB frontier memory budget
//!   (`SPILL_BUDGET`) with the default **delta-encoded** spill chunks:
//!   every level beyond the budget round-trips through records
//!   delta-encoded against their chunk predecessor (the beyond-RAM
//!   configuration; resident footprint stays bounded while verdicts stay
//!   identical);
//! - **spill ≡** — the same budget with plain self-contained records
//!   (the PR 3 chunk encoding, kept as the delta codec's comparison
//!   arm);
//! - **1 shard** — the kernel pinned to a single shard: the PR 1
//!   behaviour, whose dedup/merge phase is a single sequential map (the
//!   sharded column must not regress below this one);
//! - **baseline** — the seed's sequential DFS over retained `(System,
//!   digest)` clones.
//!
//! Verdicts and visited counts are asserted equal across all five on
//! every row. After the table, one machine-readable JSON line per
//! (depth, arm) is printed for trajectory tracking (`"bench":
//! "engine_bench"`). Usage:
//!
//! ```text
//! cargo run --release -p slx-bench --bin engine_bench [max_depth] [spill_budget]
//! ```

use std::time::Instant;

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::engine::{Checker, SpillCodec};
use slx_core::explorer::baseline::explore_safety_retained;
use slx_core::explorer::{explore_safety_with, history_digest, ExploreOutcome};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;

/// Default frontier memory budget of the spill arms (override with the
/// second CLI argument): a self-contained encoded consensus record is
/// ~400 bytes, so the 8 KiB chunk window holds ~20 plain states (a few
/// times that with delta records) and the deeper rows' levels each spill
/// several chunks — the beyond-RAM regime, scaled down to bench
/// runtimes.
const SPILL_BUDGET: usize = 16 * 1024;

fn of_system() -> System<ConsWord, ObstructionFreeConsensus> {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut mem: Memory<ConsWord> = Memory::new();
    // 16 pre-allocated commit-adopt rounds: ample headroom for the
    // depths benched here (a round costs each process 2n + 2 = 6 steps,
    // so depth 22 reaches round ~4). The seed's 64 rounds left ~80% of
    // every configuration as never-touched `⊥` registers, which skews
    // the spill arm: dead registers are a memcpy for the resident clone
    // but per-object work for the codec.
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 16);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p0, 2),
        ObstructionFreeConsensus::new(layout, p1, 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
    sys
}

/// One machine-readable trajectory record per (depth, arm).
fn json_line(depth: usize, arm: &str, out: &ExploreOutcome, secs: f64, overhead_x: f64) -> String {
    format!(
        "{{\"bench\":\"engine_bench\",\"workload\":\"fig1a-of-consensus\",\
         \"depth\":{depth},\"arm\":\"{arm}\",\"configs\":{},\
         \"states_per_sec\":{:.0},\"secs\":{:.6},\"overhead_x\":{:.3},\
         \"spilled_chunks\":{},\"spilled_bytes\":{},\
         \"peak_resident_states\":{},\"peak_frontier\":{},\
         \"threads\":{},\"shards\":{}}}",
        out.configs,
        out.configs as f64 / secs,
        secs,
        overhead_x,
        out.stats.spilled_chunks,
        out.stats.spilled_bytes,
        out.stats.peak_resident_states,
        out.stats.peak_frontier,
        out.stats.threads,
        out.stats.shards,
    )
}

fn main() {
    let max_depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(22);
    let spill_budget: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(SPILL_BUDGET);
    let active = [ProcessId::new(0), ProcessId::new(1)];
    let safety = ConsensusSafety::new();
    let sharded_checker = Checker::auto().with_mem_budget(0);
    let delta_checker = Checker::auto()
        .with_mem_budget(spill_budget)
        .with_spill_codec(SpillCodec::Delta);
    let plain_checker = Checker::auto()
        .with_mem_budget(spill_budget)
        .with_spill_codec(SpillCodec::Plain);
    let single_shard_checker = Checker::auto().with_shards(1).with_mem_budget(0);
    let mut threads_used = 1;
    let mut shards_used = 1;
    let mut balance = 1.0f64;
    let mut delta_chunks = 0usize;
    let mut delta_bytes = 0u64;
    let mut plain_bytes = 0u64;
    let mut spill_resident = 0usize;
    let mut spill_peak_frontier = 0usize;
    let mut worst_delta_overhead = 0.0f64;
    let mut worst_plain_overhead = 0.0f64;
    let mut json_lines: Vec<String> = Vec::new();

    println!(
        "{:>6} {:>10} {:>13} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9} {:>9}",
        "depth",
        "configs",
        "sharded st/s",
        "spill-Δ st/s",
        "spill-≡ st/s",
        "1-shard st/s",
        "baseline st/s",
        "Δ x",
        "plain x",
        "vs base"
    );
    for depth in (10..=max_depth).step_by(4) {
        let sys = of_system();

        // Best-of-3 per configuration: these explorations are
        // milliseconds long, so a single sample is allocator/scheduler
        // noise.
        let measure = |run: &dyn Fn() -> ExploreOutcome| {
            let mut best_secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let result = run();
                best_secs = best_secs.min(t.elapsed().as_secs_f64());
                out = Some(result);
            }
            (out.expect("ran at least once"), best_secs)
        };
        let explore = |checker: &Checker| {
            explore_safety_with(checker, &sys, &active, depth, &safety, history_digest)
        };

        let (sharded, sharded_secs) = measure(&|| explore(&sharded_checker));
        let (delta, delta_secs) = measure(&|| explore(&delta_checker));
        let (plain, plain_secs) = measure(&|| explore(&plain_checker));
        let (single, single_secs) = measure(&|| explore(&single_shard_checker));
        let (baseline, baseline_secs) =
            measure(&|| explore_safety_retained(&sys, &active, depth, &safety, history_digest));

        assert_eq!(
            sharded.holds(),
            baseline.holds(),
            "verdicts must agree at depth {depth}"
        );
        assert_eq!(
            sharded.configs, baseline.configs,
            "visited counts must agree at depth {depth}"
        );
        assert_eq!(
            sharded.configs, single.configs,
            "shard count must not change visited counts at depth {depth}"
        );
        assert_eq!(sharded.holds(), single.holds());
        for (spill, name) in [(&delta, "delta"), (&plain, "plain")] {
            assert_eq!(
                spill.configs, sharded.configs,
                "{name} spilling must not change visited counts at depth {depth}"
            );
            assert_eq!(spill.holds(), sharded.holds(), "{name} at depth {depth}");
            assert_eq!(
                spill.stats.dedup_hits, sharded.stats.dedup_hits,
                "{name} spilling must not change dedup accounting at depth {depth}"
            );
        }

        threads_used = sharded.stats.threads;
        shards_used = sharded.stats.shards;
        balance = sharded.stats.shard_balance();
        delta_chunks = delta.stats.spilled_chunks;
        delta_bytes = delta.stats.spilled_bytes;
        plain_bytes = plain.stats.spilled_bytes;
        spill_resident = delta.stats.peak_resident_states;
        spill_peak_frontier = delta.stats.peak_frontier;
        let sharded_rate = sharded.configs as f64 / sharded_secs;
        let delta_rate = delta.configs as f64 / delta_secs;
        let plain_rate = plain.configs as f64 / plain_secs;
        let single_rate = single.configs as f64 / single_secs;
        let baseline_rate = baseline.configs as f64 / baseline_secs;
        let delta_overhead = sharded_rate / delta_rate;
        let plain_overhead = sharded_rate / plain_rate;
        worst_delta_overhead = worst_delta_overhead.max(delta_overhead);
        worst_plain_overhead = worst_plain_overhead.max(plain_overhead);
        println!(
            "{:>6} {:>10} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>8.2}x {:>8.2}x {:>8.2}x",
            depth,
            sharded.configs,
            sharded_rate,
            delta_rate,
            plain_rate,
            single_rate,
            baseline_rate,
            delta_overhead,
            plain_overhead,
            sharded_rate / baseline_rate
        );
        json_lines.push(json_line(depth, "sharded", &sharded, sharded_secs, 1.0));
        json_lines.push(json_line(
            depth,
            "spill-delta",
            &delta,
            delta_secs,
            delta_overhead,
        ));
        json_lines.push(json_line(
            depth,
            "spill-plain",
            &plain,
            plain_secs,
            plain_overhead,
        ));
        json_lines.push(json_line(
            depth,
            "single-shard",
            &single,
            single_secs,
            sharded_rate / single_rate,
        ));
        json_lines.push(json_line(
            depth,
            "retained-baseline",
            &baseline,
            baseline_secs,
            sharded_rate / baseline_rate,
        ));
    }
    println!(
        "\nengine backend: {threads_used} thread(s), {shards_used} visited-set shard(s) \
         (occupancy balance {balance:.2}); dedup on 128-bit fingerprints \
         (baseline retains full configuration clones). \
         Knobs: SLX_ENGINE_THREADS, SLX_ENGINE_SHARDS, SLX_ENGINE_MEM_BUDGET, \
         SLX_ENGINE_SPILL_DIR, SLX_ENGINE_SPILL_CODEC."
    );
    println!(
        "spill arms (last row): {spill_budget}-byte budget; delta codec wrote \
         {delta_chunks} chunks / {delta_bytes} bytes (plain: {plain_bytes} bytes), \
         peak {spill_resident} resident of {spill_peak_frontier} frontier states; \
         worst in-memory/spill ratio {worst_delta_overhead:.2}x delta vs \
         {worst_plain_overhead:.2}x plain (beyond-RAM target: <= 1.30x).\n"
    );
    for line in json_lines {
        println!("{line}");
    }
}
