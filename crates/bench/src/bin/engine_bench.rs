//! `engine_bench` — states/sec of the `slx-engine` kernel vs the seed's
//! retained-clone baseline, with no external benchmarking dependency.
//!
//! Runs the obstruction-free-consensus safety exploration (the hot loop
//! behind Figure 1a's white anchor) at several depths on both the kernel
//! (fingerprint-only visited set, parallel BFS sized to the machine) and
//! the baseline (sequential DFS over a `HashSet` of retained `(System,
//! digest)` clones), and prints a comparison table. Usage:
//!
//! ```text
//! cargo run --release -p slx-bench --bin engine_bench [max_depth]
//! ```

use std::time::Instant;

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::explorer::baseline::explore_safety_retained;
use slx_core::explorer::{explore_safety, history_digest};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;

fn of_system() -> System<ConsWord, ObstructionFreeConsensus> {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
    let procs = vec![
        ObstructionFreeConsensus::new(layout.clone(), p0, 2),
        ObstructionFreeConsensus::new(layout, p1, 2),
    ];
    let mut sys = System::new(mem, procs);
    sys.invoke(p0, Operation::Propose(Value::new(1))).unwrap();
    sys.invoke(p1, Operation::Propose(Value::new(2))).unwrap();
    sys
}

fn main() {
    let max_depth: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(22);
    let active = [ProcessId::new(0), ProcessId::new(1)];
    let safety = ConsensusSafety::new();
    let mut threads_used = 1;

    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>9}",
        "depth", "configs", "engine st/s", "baseline st/s", "speedup"
    );
    for depth in (10..=max_depth).step_by(4) {
        let sys = of_system();

        let t0 = Instant::now();
        let engine = explore_safety(&sys, &active, depth, &safety, history_digest);
        let engine_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let baseline = explore_safety_retained(&sys, &active, depth, &safety, history_digest);
        let baseline_secs = t1.elapsed().as_secs_f64();

        assert_eq!(
            engine.holds(),
            baseline.holds(),
            "verdicts must agree at depth {depth}"
        );
        assert_eq!(
            engine.configs, baseline.configs,
            "visited counts must agree at depth {depth}"
        );

        threads_used = engine.stats.threads;
        let engine_rate = engine.configs as f64 / engine_secs;
        let baseline_rate = baseline.configs as f64 / baseline_secs;
        println!(
            "{:>6} {:>10} {:>14.0} {:>14.0} {:>8.2}x",
            depth,
            engine.configs,
            engine_rate,
            baseline_rate,
            engine_rate / baseline_rate
        );
    }
    println!(
        "\nengine backend: {threads_used} thread(s); dedup on 128-bit fingerprints \
         (baseline retains full configuration clones)"
    );
}
