//! Regenerates the Section 5.3 counterexample experiment.
//!
//! Run with: `cargo run --release -p slx-bench --bin fig_s`

use slx_core::counterexample::run_counterexample_s;

fn main() {
    let r = run_counterexample_s(4000);
    println!("=== Section 5.3: property S has no weakest excluding (l,k)-freedom ===");
    println!(
        "(1,3) excluded : {} all-abort rounds, commit escaped: {}",
        r.triple_rounds, r.triple_lost
    );
    println!(
        "(2,2) excluded : {} starvation rounds, victim committed: {}",
        r.starvation_rounds, r.starvation_lost
    );
    println!(
        "(1,2) holds    : commits by the two steppers = {:?}",
        r.duo_commits
    );
    println!("S maintained   : {}", r.s_holds);
    println!("conclusion established: {}", r.establishes_section_5_3());
}
