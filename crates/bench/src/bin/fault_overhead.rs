//! `fault_overhead` — the fault plane must be free when it is off.
//!
//! Runs the Figure 1a obstruction-free-consensus row at one depth under
//! a spill budget (so the exploration actually crosses the plane's
//! spill-path seams every chunk) on two arms:
//!
//! - **fault-plane-off** — no `SLX_ENGINE_FAULT_PLAN`, the seams reduce
//!   to an inlined `None` check on a disabled plane;
//! - **fault-plane-rate0** — a plane armed with an injection rate of
//!   zero: every seam consults the seeded schedule and never injects.
//!
//! Samples interleave round-robin (a batch of runs per arm per round,
//! best batch kept) so scheduler noise hits both arms alike. The smoke
//! assertion is two-sided: each arm must stay within the acceptance
//! ratio (1.02x) of the other — a disabled plane costs nothing over an
//! armed-but-silent one, and arming the schedule costs nothing over the
//! inlined no-op — and both arms must report `faults_injected == 0`.
//! One `BENCH_engine.json`-ready line is printed for the off arm.
//!
//! ```text
//! cargo run --release -p slx-bench --bin fault_overhead \
//!     [depth] [rounds] [batch] [spill_budget]
//! ```

use std::time::Instant;

use slx_core::consensus::{ConsWord, ObstructionFreeConsensus};
use slx_core::engine::{Checker, FaultPlan, SpillCodec};
use slx_core::explorer::{explore_safety_with, history_digest, ExploreOutcome};
use slx_core::history::{Operation, ProcessId, Value};
use slx_core::memory::{Memory, System};
use slx_core::safety::ConsensusSafety;

/// Acceptance ratio for the smoke assertion, both directions.
const MAX_OVERHEAD: f64 = 1.02;

/// Frontier budget forcing the depth-26 row through the spill seams.
const SPILL_BUDGET: usize = 8 * 1024;

/// The Figure 1a anchor system (see `engine_bench`).
fn of_system(inputs: &[i64]) -> System<ConsWord, ObstructionFreeConsensus> {
    let n = inputs.len();
    let mut mem: Memory<ConsWord> = Memory::new();
    let layout = ObstructionFreeConsensus::layout(&mut mem, n, 16);
    let procs = (0..n)
        .map(|i| ObstructionFreeConsensus::new(layout.clone(), ProcessId::new(i), n))
        .collect();
    let mut sys = System::new(mem, procs);
    for (i, &input) in inputs.iter().enumerate() {
        sys.invoke(ProcessId::new(i), Operation::Propose(Value::new(input)))
            .unwrap();
    }
    sys
}

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(26);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let spill_budget: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(SPILL_BUDGET);

    let sys = of_system(&[1, 2]);
    let active = [ProcessId::new(0), ProcessId::new(1)];
    let safety = ConsensusSafety::new();
    let off_checker = Checker::auto()
        .with_mem_budget(spill_budget)
        .with_spill_codec(SpillCodec::Delta)
        .with_symmetry(false);
    // Rate 0 out of 1024: the schedule is consulted on every seam
    // crossing and never fires — the pure cost of an armed plane.
    let rate0_checker = off_checker
        .clone()
        .with_fault_plan(FaultPlan::seeded(7).with_rate(0));

    let explore = |checker: &Checker| {
        explore_safety_with(checker, &sys, &active, depth, &safety, history_digest)
    };
    // One timed sample is a whole batch of explorations: the single runs
    // are milliseconds long, far below the 2% being resolved.
    let sample = |checker: &Checker| -> (ExploreOutcome, f64) {
        let t = Instant::now();
        let mut out = None;
        for _ in 0..batch {
            out = Some(explore(checker));
        }
        (out.expect("batch is nonempty"), t.elapsed().as_secs_f64())
    };

    let mut off_secs = f64::INFINITY;
    let mut rate0_secs = f64::INFINITY;
    let mut off = None;
    let mut rate0 = None;
    for _ in 0..rounds.max(1) {
        let (out, secs) = sample(&off_checker);
        off_secs = off_secs.min(secs);
        off = Some(out);
        let (out, secs) = sample(&rate0_checker);
        rate0_secs = rate0_secs.min(secs);
        rate0 = Some(out);
    }
    let (off, rate0) = (off.expect("sampled"), rate0.expect("sampled"));

    assert_eq!(off.holds(), rate0.holds(), "verdicts must agree");
    assert_eq!(off.configs, rate0.configs, "visited counts must agree");
    assert!(
        off.stats.spilled_chunks > 0 && rate0.stats.spilled_chunks > 0,
        "the budget must force both arms through the spill seams"
    );
    assert_eq!(
        off.stats.faults_injected, 0,
        "no plan armed: the counter must stay zero"
    );
    assert_eq!(off.stats.io_retries, 0);
    assert_eq!(
        rate0.stats.faults_injected, 0,
        "rate-0 plan: consulted, never fires"
    );

    let off_x = off_secs / rate0_secs;
    let rate0_x = rate0_secs / off_secs;
    println!(
        "fault plane overhead (depth {depth}, {} configs, {} spilled chunks, \
         best-of-{rounds} batches of {batch}): off {off_secs:.4}s vs rate-0 \
         {rate0_secs:.4}s — off/rate0 {off_x:.3}x, rate0/off {rate0_x:.3}x \
         (acceptance <= {MAX_OVERHEAD}x each way)",
        off.configs, off.stats.spilled_chunks,
    );
    println!(
        "{{\"bench\":\"engine_bench\",\"workload\":\"fig1a-of-consensus\",\
         \"depth\":{depth},\"arm\":\"fault-plane-off\",\"configs\":{},\
         \"states_per_sec\":{:.0},\"secs\":{:.6},\"overhead_x\":{:.3},\
         \"spilled_chunks\":{},\"spilled_bytes\":{},\"replayed_parents\":{},\
         \"orbit_hits\":{},\"peak_resident_states\":{},\"peak_frontier\":{},\
         \"threads\":{},\"shards\":{}}}",
        off.configs,
        off.configs as f64 / (off_secs / batch as f64),
        off_secs / batch as f64,
        off_x,
        off.stats.spilled_chunks,
        off.stats.spilled_bytes,
        off.stats.replayed_parents,
        off.stats.orbit_hits,
        off.stats.peak_resident_states,
        off.stats.peak_frontier,
        off.stats.threads,
        off.stats.shards,
    );
    assert!(
        off_x <= MAX_OVERHEAD && rate0_x <= MAX_OVERHEAD,
        "fault-plane overhead out of budget: off/rate0 {off_x:.3}x, \
         rate0/off {rate0_x:.3}x (max {MAX_OVERHEAD}x)"
    );
}
