//! Shared helpers for the benchmark harness.
//!
//! The binaries in `src/bin` regenerate the paper's figure and the
//! corollary demonstrations (`fig1`, `fig_gmax`, `fig_s`, `fig_sect6`);
//! the Criterion benches in `benches/` measure the performance
//! characteristics of the workspace itself (TM throughput and abort
//! rates, consensus step complexity, checker scaling, explorer
//! throughput). See `EXPERIMENTS.md` at the workspace root for the
//! mapping from paper claims to targets.

#![warn(missing_docs)]

use slx_core::history::{ProcessId, VarId};
use slx_core::memory::{FairRandom, Memory, RepeatTxn, System, WorkloadScheduler};
use slx_core::tm::{AgpTm, GlobalVersionTm, LockTm, TmWord};

/// Builds an `AgpTm` system of `n` processes over one variable.
pub fn agp_system(n: usize) -> System<TmWord, AgpTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (c, r) = AgpTm::alloc(&mut mem, n, 1);
    let procs = (0..n)
        .map(|i| AgpTm::new(c, r, ProcessId::new(i), n, 1))
        .collect();
    System::new(mem, procs)
}

/// Builds a `GlobalVersionTm` system of `n` processes over one variable.
pub fn gv_system(n: usize) -> System<TmWord, GlobalVersionTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let c = GlobalVersionTm::alloc(&mut mem, 1);
    let procs = (0..n).map(|_| GlobalVersionTm::new(c, 1)).collect();
    System::new(mem, procs)
}

/// Builds a `LockTm` system of `n` processes over one variable.
pub fn lock_system(n: usize) -> System<TmWord, LockTm> {
    let mut mem: Memory<TmWord> = Memory::new();
    let (lock, store) = LockTm::alloc(&mut mem, 1);
    let procs = (0..n).map(|_| LockTm::new(lock, store, 1)).collect();
    System::new(mem, procs)
}

/// The standard contended workload scheduler: every process repeatedly
/// runs `start; read x1; write x1; tryC`, retrying on abort.
pub fn contended_scheduler(n: usize, seed: u64) -> WorkloadScheduler<RepeatTxn, FairRandom> {
    let workload = RepeatTxn::new(n, vec![VarId::new(0)], vec![VarId::new(0)], None);
    WorkloadScheduler::new(n, workload, FairRandom::new(seed))
}

/// Counts commit responses in a history.
pub fn commits(h: &slx_core::history::History) -> u64 {
    h.iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_commit()))
        .count() as u64
}

/// Counts abort responses in a history.
pub fn aborts(h: &slx_core::history::History) -> u64 {
    h.iter()
        .filter(|a| a.as_respond().is_some_and(|r| r.is_abort()))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_running_systems() {
        let mut sys = gv_system(2);
        let mut sched = contended_scheduler(2, 1);
        sys.run(&mut sched, 500);
        assert!(commits(sys.history()) > 0);
        let _ = aborts(sys.history());
        let _ = agp_system(2);
        let _ = lock_system(2);
    }
}
