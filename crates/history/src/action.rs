//! Actions: invocations, responses and crash events.

use std::fmt;

use crate::ids::{ProcessId, Value, VarId};

/// An invocation on a shared object, i.e. an element of the set `Inv` of the
/// object type `Tp = (St, Inv, Res, Seq)`.
///
/// One enum covers every object type the paper instantiates its results on;
/// a given history normally uses operations of a single object type, and the
/// safety checkers reject mixed histories where the mix is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operation {
    /// Consensus: propose a value and wait for the decided value.
    Propose(Value),
    /// Register: read variable.
    Read(VarId),
    /// Register: write a value to a variable.
    Write(VarId, Value),
    /// Test-and-set: atomically set the bit, returning its previous value.
    TestAndSet,
    /// Compare-and-swap: if the object holds `expected`, replace it with
    /// `new` and return `true`; otherwise return `false`.
    CompareAndSwap {
        /// Value the object must currently hold for the swap to happen.
        expected: Value,
        /// Replacement value.
        new: Value,
    },
    /// Fetch-and-add: atomically add a delta, returning the previous value.
    FetchAdd(Value),
    /// Transactional memory: request to start a new transaction (`start()`).
    TxStart,
    /// Transactional memory: read a transactional variable (`x.read()`).
    TxRead(VarId),
    /// Transactional memory: write a transactional variable (`x.write(v)`).
    TxWrite(VarId, Value),
    /// Transactional memory: request to commit (`tryC()`).
    TxCommit,
}

impl Operation {
    /// Returns `true` for transactional-memory operations.
    pub fn is_transactional(&self) -> bool {
        matches!(
            self,
            Operation::TxStart
                | Operation::TxRead(_)
                | Operation::TxWrite(_, _)
                | Operation::TxCommit
        )
    }

    /// Returns `true` for the consensus `propose` operation.
    pub fn is_propose(&self) -> bool {
        matches!(self, Operation::Propose(_))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Propose(v) => write!(f, "propose({v})"),
            Operation::Read(x) => write!(f, "{x}.read()"),
            Operation::Write(x, v) => write!(f, "{x}.write({v})"),
            Operation::TestAndSet => write!(f, "test-and-set()"),
            Operation::CompareAndSwap { expected, new } => {
                write!(f, "cas({expected},{new})")
            }
            Operation::FetchAdd(v) => write!(f, "fetch-add({v})"),
            Operation::TxStart => write!(f, "start()"),
            Operation::TxRead(x) => write!(f, "{x}.read()"),
            Operation::TxWrite(x, v) => write!(f, "{x}.write({v})"),
            Operation::TxCommit => write!(f, "tryC()"),
        }
    }
}

/// A response from a shared object, i.e. an element of the set `Res`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Response {
    /// Consensus: the decided value.
    Decided(Value),
    /// A value returned by a read, fetch-add, or transactional read.
    ValueReturned(Value),
    /// Generic acknowledgement (`ok`), for writes and successful
    /// transactional starts/writes.
    Ok,
    /// Boolean result of test-and-set or compare-and-swap.
    Flag(bool),
    /// Transactional memory: commit event `C`.
    Committed,
    /// Transactional memory: abort event `A`.
    Aborted,
}

impl Response {
    /// Returns `true` for the TM abort event `A`.
    pub fn is_abort(&self) -> bool {
        matches!(self, Response::Aborted)
    }

    /// Returns `true` for the TM commit event `C`.
    pub fn is_commit(&self) -> bool {
        matches!(self, Response::Committed)
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Decided(v) => write!(f, "decided({v})"),
            Response::ValueReturned(v) => write!(f, "{v}"),
            Response::Ok => write!(f, "ok"),
            Response::Flag(b) => write!(f, "{b}"),
            Response::Committed => write!(f, "C"),
            Response::Aborted => write!(f, "A"),
        }
    }
}

/// The kind of an [`Action`], without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// An invocation (input action of the implementation automaton).
    Invoke,
    /// A response (output action of the implementation automaton).
    Respond,
    /// A crash event `crash_i`.
    Crash,
}

/// One element of `ext(Tp)`: an invocation `inv_i`, a response `res_i`, or a
/// crash `crash_i`, tagged with the process it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Process `proc` invokes `op`.
    Invoke {
        /// Invoking process.
        proc: ProcessId,
        /// The invocation.
        op: Operation,
    },
    /// Process `proc` receives response `resp`.
    Respond {
        /// Responding process.
        proc: ProcessId,
        /// The response.
        resp: Response,
    },
    /// Process `proc` crashes and takes no further steps.
    Crash {
        /// Crashing process.
        proc: ProcessId,
    },
}

impl Action {
    /// Convenience constructor for an invocation action.
    pub const fn invoke(proc: ProcessId, op: Operation) -> Self {
        Action::Invoke { proc, op }
    }

    /// Convenience constructor for a response action.
    pub const fn respond(proc: ProcessId, resp: Response) -> Self {
        Action::Respond { proc, resp }
    }

    /// Convenience constructor for a crash action.
    pub const fn crash(proc: ProcessId) -> Self {
        Action::Crash { proc }
    }

    /// The process the action belongs to.
    pub const fn proc(&self) -> ProcessId {
        match self {
            Action::Invoke { proc, .. } | Action::Respond { proc, .. } | Action::Crash { proc } => {
                *proc
            }
        }
    }

    /// The kind of the action.
    pub const fn kind(&self) -> ActionKind {
        match self {
            Action::Invoke { .. } => ActionKind::Invoke,
            Action::Respond { .. } => ActionKind::Respond,
            Action::Crash { .. } => ActionKind::Crash,
        }
    }

    /// Returns the invocation payload, if this is an invocation.
    pub const fn as_invoke(&self) -> Option<Operation> {
        match self {
            Action::Invoke { op, .. } => Some(*op),
            _ => None,
        }
    }

    /// Returns the response payload, if this is a response.
    pub const fn as_respond(&self) -> Option<Response> {
        match self {
            Action::Respond { resp, .. } => Some(*resp),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Invoke { proc, op } => write!(f, "{op}@{proc}"),
            Action::Respond { proc, resp } => write!(f, "{resp}@{proc}"),
            Action::Crash { proc } => write!(f, "crash@{proc}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn operation_classification() {
        assert!(Operation::TxStart.is_transactional());
        assert!(Operation::TxRead(VarId::new(0)).is_transactional());
        assert!(Operation::TxWrite(VarId::new(0), Value::new(1)).is_transactional());
        assert!(Operation::TxCommit.is_transactional());
        assert!(!Operation::Propose(Value::new(0)).is_transactional());
        assert!(Operation::Propose(Value::new(0)).is_propose());
        assert!(!Operation::Read(VarId::new(0)).is_propose());
    }

    #[test]
    fn response_classification() {
        assert!(Response::Aborted.is_abort());
        assert!(!Response::Aborted.is_commit());
        assert!(Response::Committed.is_commit());
        assert!(!Response::Ok.is_abort());
    }

    #[test]
    fn action_accessors() {
        let a = Action::invoke(p(1), Operation::TxStart);
        assert_eq!(a.proc(), p(1));
        assert_eq!(a.kind(), ActionKind::Invoke);
        assert_eq!(a.as_invoke(), Some(Operation::TxStart));
        assert_eq!(a.as_respond(), None);

        let r = Action::respond(p(0), Response::Committed);
        assert_eq!(r.kind(), ActionKind::Respond);
        assert_eq!(r.as_respond(), Some(Response::Committed));
        assert_eq!(r.as_invoke(), None);

        let c = Action::crash(p(2));
        assert_eq!(c.kind(), ActionKind::Crash);
        assert_eq!(c.proc(), p(2));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            Action::invoke(p(0), Operation::Propose(Value::new(5))).to_string(),
            "propose(5)@p1"
        );
        assert_eq!(Action::respond(p(1), Response::Aborted).to_string(), "A@p2");
        assert_eq!(Operation::TxCommit.to_string(), "tryC()");
    }
}
