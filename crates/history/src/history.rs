//! Finite histories and their structural operations.

use std::fmt;

use crate::action::{Action, Operation, Response};
use crate::calls::{CallStatus, OpCall};
use crate::ids::ProcessId;

/// A finite history: the subsequence of an execution consisting only of
/// input and output actions (invocations, responses, crashes).
///
/// Histories are ordered lexicographically ([`Ord`]) so that finite sets of
/// histories can be stored in ordered collections; the order has no semantic
/// meaning.
///
/// # Examples
///
/// ```
/// use slx_history::{Action, History, Operation, ProcessId, Response, Value};
///
/// let p1 = ProcessId::new(0);
/// let mut h = History::new();
/// h.push(Action::invoke(p1, Operation::Propose(Value::new(3))));
/// h.push(Action::respond(p1, Response::Decided(Value::new(3))));
/// assert!(h.is_well_formed());
/// assert!(!h.pending(p1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct History {
    actions: Vec<Action>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Creates a history from a sequence of actions.
    pub fn from_actions<I: IntoIterator<Item = Action>>(actions: I) -> Self {
        History {
            actions: actions.into_iter().collect(),
        }
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Number of actions in the history.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the history contains no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The actions of the history, in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Iterates over the actions.
    pub fn iter(&self) -> std::slice::Iter<'_, Action> {
        self.actions.iter()
    }

    /// The per-process projection `h|pi`: the longest subsequence consisting
    /// only of actions of process `proc`.
    pub fn projection(&self, proc: ProcessId) -> History {
        History::from_actions(self.actions.iter().copied().filter(|a| a.proc() == proc))
    }

    /// The set of processes that appear in the history.
    pub fn participants(&self) -> Vec<ProcessId> {
        let mut seen: Vec<ProcessId> = Vec::new();
        for a in &self.actions {
            if !seen.contains(&a.proc()) {
                seen.push(a.proc());
            }
        }
        seen.sort();
        seen
    }

    /// Whether process `proc` is *pending* in the history: its projection
    /// ends with an invocation (Section 2).
    pub fn pending(&self, proc: ProcessId) -> bool {
        self.actions
            .iter()
            .rev()
            .find(|a| a.proc() == proc && !matches!(a, Action::Crash { .. }))
            .is_some_and(|a| matches!(a, Action::Invoke { .. }))
    }

    /// Whether process `proc` crashes in the history.
    pub fn crashed(&self, proc: ProcessId) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Action::Crash { proc: q } if *q == proc))
    }

    /// Whether process `proc` is *correct* in the history: it does not crash.
    pub fn correct(&self, proc: ProcessId) -> bool {
        !self.crashed(proc)
    }

    /// Well-formedness (Section 2): for every process, the projection is an
    /// alternating sequence of invocations and responses starting with an
    /// invocation, and no non-crash action follows a crash.
    pub fn is_well_formed(&self) -> bool {
        let mut pending: std::collections::BTreeMap<ProcessId, bool> = Default::default();
        let mut crashed: std::collections::BTreeSet<ProcessId> = Default::default();
        for a in &self.actions {
            let p = a.proc();
            if crashed.contains(&p) {
                return false;
            }
            match a {
                Action::Invoke { .. } => {
                    if *pending.get(&p).unwrap_or(&false) {
                        return false;
                    }
                    pending.insert(p, true);
                }
                Action::Respond { .. } => {
                    if !pending.get(&p).unwrap_or(&false) {
                        return false;
                    }
                    pending.insert(p, false);
                }
                Action::Crash { .. } => {
                    crashed.insert(p);
                }
            }
        }
        true
    }

    /// The prefix consisting of the first `len` actions.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> History {
        History::from_actions(self.actions[..len].iter().copied())
    }

    /// Iterates over all prefixes of the history, from the empty history to
    /// the history itself (`len + 1` prefixes).
    pub fn prefixes(&self) -> impl Iterator<Item = History> + '_ {
        (0..=self.actions.len()).map(move |k| self.prefix(k))
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &History) -> bool {
        other.actions.len() >= self.actions.len()
            && other.actions[..self.actions.len()] == self.actions[..]
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &History) -> History {
        let mut actions = self.actions.clone();
        actions.extend_from_slice(&other.actions);
        History { actions }
    }

    /// Matches invocations with their responses, in invocation order.
    ///
    /// Requires a well-formed history; on malformed histories the result is
    /// unspecified but does not panic.
    pub fn calls(&self) -> Vec<OpCall> {
        let mut calls: Vec<OpCall> = Vec::new();
        // Per-process index of the call awaiting a response.
        let mut open: std::collections::BTreeMap<ProcessId, usize> = Default::default();
        for (i, a) in self.actions.iter().enumerate() {
            match a {
                Action::Invoke { proc, op } => {
                    open.insert(*proc, calls.len());
                    calls.push(OpCall {
                        proc: *proc,
                        op: *op,
                        resp: None,
                        invoke_index: i,
                        respond_index: None,
                    });
                }
                Action::Respond { proc, resp } => {
                    if let Some(ci) = open.remove(proc) {
                        calls[ci].resp = Some(*resp);
                        calls[ci].respond_index = Some(i);
                    }
                }
                Action::Crash { .. } => {}
            }
        }
        calls
    }

    /// Completed calls only (those that received a response).
    pub fn completed_calls(&self) -> Vec<OpCall> {
        self.calls()
            .into_iter()
            .filter(|c| c.status() == CallStatus::Completed)
            .collect()
    }

    /// All responses received by `proc`, in order.
    pub fn responses_of(&self, proc: ProcessId) -> Vec<Response> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Respond { proc: q, resp } if *q == proc => Some(*resp),
                _ => None,
            })
            .collect()
    }

    /// All operations invoked by `proc`, in order.
    pub fn invocations_of(&self, proc: ProcessId) -> Vec<Operation> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Invoke { proc: q, op } if *q == proc => Some(*op),
                _ => None,
            })
            .collect()
    }

    /// Real-time precedence on completed calls: call `a` precedes call `b`
    /// if `a`'s response occurs before `b`'s invocation.
    pub fn precedes(&self, a: &OpCall, b: &OpCall) -> bool {
        match a.respond_index {
            Some(ra) => ra < b.invoke_index,
            None => false,
        }
    }

    /// Whether the history is *sequential*: every invocation is immediately
    /// followed by its response (no interleaving).
    pub fn is_sequential(&self) -> bool {
        let mut pending_proc: Option<ProcessId> = None;
        for a in &self.actions {
            match a {
                Action::Invoke { proc, .. } => {
                    if pending_proc.is_some() {
                        return false;
                    }
                    pending_proc = Some(*proc);
                }
                Action::Respond { proc, .. } => {
                    if pending_proc != Some(*proc) {
                        return false;
                    }
                    pending_proc = None;
                }
                Action::Crash { .. } => {}
            }
        }
        true
    }

    /// Equivalence in the paper's sense: two histories are equivalent if
    /// every per-process projection agrees.
    pub fn equivalent(&self, other: &History, n: usize) -> bool {
        ProcessId::all(n).all(|p| self.projection(p) == other.projection(p))
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return write!(f, "ε");
        }
        let mut first = true;
        for a in &self.actions {
            if !first {
                write!(f, " · ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<Action> for History {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        History::from_actions(iter)
    }
}

impl Extend<Action> for History {
    fn extend<I: IntoIterator<Item = Action>>(&mut self, iter: I) {
        self.actions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Value, VarId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn v(x: i64) -> Value {
        Value::new(x)
    }

    /// `propose1(1) · propose2(2) · decided(1)@p1`
    fn sample() -> History {
        History::from_actions([
            Action::invoke(p(0), Operation::Propose(v(1))),
            Action::invoke(p(1), Operation::Propose(v(2))),
            Action::respond(p(0), Response::Decided(v(1))),
        ])
    }

    #[test]
    fn projection_keeps_only_own_actions() {
        let h = sample();
        let h1 = h.projection(p(0));
        assert_eq!(h1.len(), 2);
        assert!(h1.iter().all(|a| a.proc() == p(0)));
        assert_eq!(h.projection(p(2)).len(), 0);
    }

    #[test]
    fn pending_tracking() {
        let h = sample();
        assert!(!h.pending(p(0)));
        assert!(h.pending(p(1)));
        assert!(!h.pending(p(2)));
    }

    #[test]
    fn well_formedness_accepts_alternation() {
        assert!(sample().is_well_formed());
        assert!(History::new().is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_double_invoke() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::invoke(p(0), Operation::TxCommit),
        ]);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_orphan_response() {
        let h = History::from_actions([Action::respond(p(0), Response::Ok)]);
        assert!(!h.is_well_formed());
    }

    #[test]
    fn well_formedness_rejects_action_after_crash() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::crash(p(0)),
            Action::respond(p(0), Response::Ok),
        ]);
        assert!(!h.is_well_formed());
        let ok = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::crash(p(0)),
        ]);
        assert!(ok.is_well_formed());
    }

    #[test]
    fn crash_and_correct() {
        let h = History::from_actions([Action::crash(p(1))]);
        assert!(h.crashed(p(1)));
        assert!(!h.correct(p(1)));
        assert!(h.correct(p(0)));
    }

    #[test]
    fn prefixes_enumerate_all() {
        let h = sample();
        let ps: Vec<History> = h.prefixes().collect();
        assert_eq!(ps.len(), 4);
        assert!(ps[0].is_empty());
        assert_eq!(ps[3], h);
        for w in ps.windows(2) {
            assert!(w[0].is_prefix_of(&w[1]));
        }
        assert!(!h.is_prefix_of(&ps[1]));
    }

    #[test]
    fn concat_appends() {
        let a = History::from_actions([Action::invoke(p(0), Operation::TxStart)]);
        let b = History::from_actions([Action::respond(p(0), Response::Ok)]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 2);
        assert!(a.is_prefix_of(&c));
    }

    #[test]
    fn calls_match_invocations_to_responses() {
        let h = sample();
        let calls = h.calls();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].resp, Some(Response::Decided(v(1))));
        assert_eq!(calls[0].status(), CallStatus::Completed);
        assert_eq!(calls[1].resp, None);
        assert_eq!(calls[1].status(), CallStatus::Pending);
        assert_eq!(h.completed_calls().len(), 1);
    }

    #[test]
    fn precedes_uses_real_time() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::Write(VarId::new(0), v(1))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::Read(VarId::new(0))),
            Action::respond(p(1), Response::ValueReturned(v(1))),
        ]);
        let calls = h.calls();
        assert!(h.precedes(&calls[0], &calls[1]));
        assert!(!h.precedes(&calls[1], &calls[0]));
    }

    #[test]
    fn sequential_detection() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
        ]);
        assert!(h.is_sequential());
        assert!(!sample().is_sequential());
    }

    #[test]
    fn equivalence_compares_projections() {
        let h1 = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::respond(p(1), Response::Ok),
        ]);
        let h2 = History::from_actions([
            Action::invoke(p(1), Operation::TxStart),
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::respond(p(0), Response::Ok),
        ]);
        assert!(h1.equivalent(&h2, 2));
        assert!(!h1.equivalent(&sample(), 2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(History::new().to_string(), "ε");
        let h = History::from_actions([Action::invoke(p(0), Operation::TxCommit)]);
        assert_eq!(h.to_string(), "tryC()@p1");
    }

    #[test]
    fn responses_and_invocations_of() {
        let h = sample();
        assert_eq!(h.responses_of(p(0)), vec![Response::Decided(v(1))]);
        assert!(h.responses_of(p(1)).is_empty());
        assert_eq!(h.invocations_of(p(1)), vec![Operation::Propose(v(2))]);
    }

    #[test]
    fn participants_sorted_unique() {
        let h = sample();
        assert_eq!(h.participants(), vec![p(0), p(1)]);
    }
}
