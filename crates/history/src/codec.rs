//! [`StateCodec`] implementations for the history alphabet.
//!
//! These let configurations containing histories round-trip through the
//! exploration kernel's disk-backed frontier (`slx_engine`'s spill path):
//! a spilled `System` carries its history and event log, so every type in
//! the external alphabet encodes here. Enum variants are tagged with one
//! byte in declaration order; payloads follow, using the kernel's
//! fixed-width little-endian primitive encodings.

use slx_engine::{decode_slice_delta, encode_slice_delta, DeltaCodec, DeltaCtx, StateCodec};

use crate::action::{Action, Operation, Response};
use crate::history::History;
use crate::ids::{ProcessId, Value, VarId};

// The alphabet types are a few bytes each; their delta hooks keep the
// self-contained defaults. Histories delta below — they are where sibling
// records share long prefixes.
impl DeltaCodec for ProcessId {}
impl DeltaCodec for Value {}
impl DeltaCodec for VarId {}
impl DeltaCodec for Operation {}
impl DeltaCodec for Response {}
impl DeltaCodec for Action {}

impl DeltaCodec for History {
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        match prev {
            None => self.encode(out),
            // Sibling configurations extend a common parent history, so
            // the shared prefix collapses to the slice-delta header and
            // only the divergent tail actions hit the wire.
            Some(prev) => encode_slice_delta(self.actions(), prev.actions(), out),
        }
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        match prev {
            None => Self::decode(input),
            Some(prev) => Some(History::from_actions(decode_slice_delta(
                prev.actions(),
                input,
                ctx,
            )?)),
        }
    }
}

impl StateCodec for ProcessId {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(ProcessId::new(usize::decode(input)?))
    }
}

impl StateCodec for Value {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Value::new(i64::decode(input)?))
    }
}

impl StateCodec for VarId {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.index().encode(out);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(VarId::new(usize::decode(input)?))
    }
}

impl StateCodec for Operation {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Operation::Propose(v) => {
                out.push(0);
                v.encode(out);
            }
            Operation::Read(x) => {
                out.push(1);
                x.encode(out);
            }
            Operation::Write(x, v) => {
                out.push(2);
                x.encode(out);
                v.encode(out);
            }
            Operation::TestAndSet => out.push(3),
            Operation::CompareAndSwap { expected, new } => {
                out.push(4);
                expected.encode(out);
                new.encode(out);
            }
            Operation::FetchAdd(v) => {
                out.push(5);
                v.encode(out);
            }
            Operation::TxStart => out.push(6),
            Operation::TxRead(x) => {
                out.push(7);
                x.encode(out);
            }
            Operation::TxWrite(x, v) => {
                out.push(8);
                x.encode(out);
                v.encode(out);
            }
            Operation::TxCommit => out.push(9),
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => Operation::Propose(Value::decode(input)?),
            1 => Operation::Read(VarId::decode(input)?),
            2 => Operation::Write(VarId::decode(input)?, Value::decode(input)?),
            3 => Operation::TestAndSet,
            4 => Operation::CompareAndSwap {
                expected: Value::decode(input)?,
                new: Value::decode(input)?,
            },
            5 => Operation::FetchAdd(Value::decode(input)?),
            6 => Operation::TxStart,
            7 => Operation::TxRead(VarId::decode(input)?),
            8 => Operation::TxWrite(VarId::decode(input)?, Value::decode(input)?),
            9 => Operation::TxCommit,
            _ => return None,
        })
    }
}

impl StateCodec for Response {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Decided(v) => {
                out.push(0);
                v.encode(out);
            }
            Response::ValueReturned(v) => {
                out.push(1);
                v.encode(out);
            }
            Response::Ok => out.push(2),
            Response::Flag(b) => {
                out.push(3);
                b.encode(out);
            }
            Response::Committed => out.push(4),
            Response::Aborted => out.push(5),
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => Response::Decided(Value::decode(input)?),
            1 => Response::ValueReturned(Value::decode(input)?),
            2 => Response::Ok,
            3 => Response::Flag(bool::decode(input)?),
            4 => Response::Committed,
            5 => Response::Aborted,
            _ => return None,
        })
    }
}

impl StateCodec for Action {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Action::Invoke { proc, op } => {
                out.push(0);
                proc.encode(out);
                op.encode(out);
            }
            Action::Respond { proc, resp } => {
                out.push(1);
                proc.encode(out);
                resp.encode(out);
            }
            Action::Crash { proc } => {
                out.push(2);
                proc.encode(out);
            }
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => Action::Invoke {
                proc: ProcessId::decode(input)?,
                op: Operation::decode(input)?,
            },
            1 => Action::Respond {
                proc: ProcessId::decode(input)?,
                resp: Response::decode(input)?,
            },
            2 => Action::Crash {
                proc: ProcessId::decode(input)?,
            },
            _ => return None,
        })
    }
}

impl StateCodec for History {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        // Same wire shape as `Vec<Action>`, without materializing one.
        let len = u32::try_from(self.len()).expect("histories are far below 2^32 actions");
        len.encode(out);
        for action in self.iter() {
            action.encode(out);
        }
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Option<Self> {
        // `from_actions` reuses the Vec's allocation, so this inherits
        // `Vec::decode`'s reserve-capped-by-input corrupt-length defense.
        Some(History::from_actions(Vec::<Action>::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: StateCodec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(T::decode(&mut input), Some(value));
        assert!(input.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn alphabet_round_trips() {
        let p = ProcessId::new(3);
        let x = VarId::new(1);
        let v = Value::new(-42);
        round_trip(p);
        round_trip(x);
        round_trip(v);
        for op in [
            Operation::Propose(v),
            Operation::Read(x),
            Operation::Write(x, v),
            Operation::TestAndSet,
            Operation::CompareAndSwap {
                expected: v,
                new: Value::new(7),
            },
            Operation::FetchAdd(v),
            Operation::TxStart,
            Operation::TxRead(x),
            Operation::TxWrite(x, v),
            Operation::TxCommit,
        ] {
            round_trip(op);
            round_trip(Action::invoke(p, op));
        }
        for resp in [
            Response::Decided(v),
            Response::ValueReturned(v),
            Response::Ok,
            Response::Flag(true),
            Response::Committed,
            Response::Aborted,
        ] {
            round_trip(resp);
            round_trip(Action::respond(p, resp));
        }
        round_trip(Action::crash(p));
    }

    #[test]
    fn histories_round_trip() {
        round_trip(History::new());
        round_trip(History::from_actions([
            Action::invoke(ProcessId::new(0), Operation::Propose(Value::new(1))),
            Action::invoke(ProcessId::new(1), Operation::Propose(Value::new(2))),
            Action::respond(ProcessId::new(0), Response::Decided(Value::new(1))),
            Action::crash(ProcessId::new(1)),
        ]));
    }

    #[test]
    fn history_deltas_round_trip_and_compress_shared_prefixes() {
        let p = ProcessId::new(0);
        let base = History::from_actions([
            Action::invoke(p, Operation::Propose(Value::new(1))),
            Action::invoke(ProcessId::new(1), Operation::Propose(Value::new(2))),
            Action::respond(p, Response::Decided(Value::new(1))),
        ]);
        let mut extended = base.clone();
        extended.push(Action::crash(ProcessId::new(1)));

        let mut delta = Vec::new();
        extended.encode_delta(Some(&base), &mut delta);
        let mut full = Vec::new();
        extended.encode(&mut full);
        assert!(
            delta.len() < full.len(),
            "shared prefix must compress: delta {} vs full {}",
            delta.len(),
            full.len()
        );
        let mut input = delta.as_slice();
        let mut ctx = slx_engine::DeltaCtx::new();
        assert_eq!(
            History::decode_delta(Some(&base), &mut input, &mut ctx),
            Some(extended.clone())
        );
        assert!(input.is_empty());

        // Self-contained (chunk-first) form round-trips too, and an
        // identical history costs only the slice-delta header.
        let mut contained = Vec::new();
        extended.encode_delta(None, &mut contained);
        let mut input = contained.as_slice();
        assert_eq!(
            History::decode_delta(None, &mut input, &mut ctx),
            Some(extended.clone())
        );
        let mut same = Vec::new();
        extended.encode_delta(Some(&extended), &mut same);
        assert_eq!(same.len(), 2, "unchanged history is two varints");
    }

    #[test]
    fn unknown_tags_fail_cleanly() {
        let mut input: &[u8] = &[99];
        assert_eq!(Operation::decode(&mut input), None);
        let mut input: &[u8] = &[99];
        assert_eq!(Response::decode(&mut input), None);
        let mut input: &[u8] = &[99];
        assert_eq!(Action::decode(&mut input), None);
    }
}
