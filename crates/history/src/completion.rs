//! The completion operator `comp(h)` of Section 4.1.
//!
//! A completion of a TM history `h` is any history obtained by appending,
//! for every transaction that has not invoked a commit request, `tryC · A`
//! (it aborts), and for every transaction whose commit request is pending,
//! either `C` or `A`. Opacity quantifies over completions; this module
//! makes the operator itself a first-class, tested artifact.

use crate::action::{Action, Operation, Response};
use crate::history::History;
use crate::txn::{TransactionStatus, TxnEvent, TxnView};

/// Enumerates all completions `comp(h)` of a TM history.
///
/// Each live transaction with a pending `tryC()` contributes a binary
/// choice (commit or abort); every other live transaction is aborted
/// deterministically. The result therefore has `2^p` members where `p` is
/// the number of commit-pending transactions.
///
/// Transactions of *crashed* processes cannot receive appended events in a
/// well-formed way; following the standard reading, their pending
/// operations are completed just like live ones (the appended events stand
/// for the fate of the transaction, not steps of the crashed process), so
/// completions of histories with crashes may be non-well-formed as raw
/// action sequences. The safety checkers work at transaction granularity
/// and are insensitive to this.
///
/// # Panics
///
/// Panics if `h` is not TM-client well-formed
/// ([`TxnView::client_well_formed`]): a process that started a new
/// transaction while its previous one was still live has shadowed a
/// transaction that appended events can no longer reach.
pub fn completions(h: &History) -> Vec<History> {
    let view = TxnView::parse(h);
    assert!(
        view.client_well_formed(),
        "completions require TM-client well-formed histories \
         (no process starts a transaction while its previous one is live)"
    );
    // Partition live transactions.
    let mut commit_pending = Vec::new();
    let mut to_abort = Vec::new();
    for t in view.transactions() {
        if t.status() != TransactionStatus::Live {
            continue;
        }
        let last_is_pending_tryc =
            matches!(t.events.last(), Some(TxnEvent::TryCommit { resp: None }));
        if last_is_pending_tryc {
            commit_pending.push(t.id);
        } else {
            to_abort.push((t.id, t.events.clone()));
        }
    }

    let mut out = Vec::new();
    for choice in 0u64..(1 << commit_pending.len()) {
        let mut c = h.clone();
        // Commit-pending transactions: append the chosen verdict.
        for (bit, id) in commit_pending.iter().enumerate() {
            let resp = if choice & (1 << bit) != 0 {
                Response::Committed
            } else {
                Response::Aborted
            };
            c.push(Action::respond(id.proc, resp));
        }
        // Other live transactions: finish the pending operation (if any)
        // with an abort, or append tryC · A.
        for (id, events) in &to_abort {
            let last_pending = events.last().is_some_and(|e| e.response().is_none());
            if last_pending {
                // The pending read/write/start aborts.
                c.push(Action::respond(id.proc, Response::Aborted));
            } else {
                c.push(Action::invoke(id.proc, Operation::TxCommit));
                c.push(Action::respond(id.proc, Response::Aborted));
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, Value, VarId};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn complete_history_has_single_trivial_completion() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
        ]);
        let cs = completions(&h);
        assert_eq!(cs, vec![h]);
    }

    #[test]
    fn commit_pending_yields_two_completions() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
        ]);
        let cs = completions(&h);
        assert_eq!(cs.len(), 2);
        let statuses: Vec<TransactionStatus> = cs
            .iter()
            .map(|c| TxnView::parse(c).transactions()[0].status())
            .collect();
        assert!(statuses.contains(&TransactionStatus::Committed));
        assert!(statuses.contains(&TransactionStatus::Aborted));
    }

    #[test]
    fn live_without_tryc_gets_aborting_tryc_appended() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(VarId::new(0), Value::new(1))),
            Action::respond(p(0), Response::Ok),
        ]);
        let cs = completions(&h);
        assert_eq!(cs.len(), 1);
        let view = TxnView::parse(&cs[0]);
        assert_eq!(view.transactions()[0].status(), TransactionStatus::Aborted);
        assert!(view.transactions()[0].invoked_commit());
        assert!(cs[0].is_well_formed());
    }

    #[test]
    fn pending_read_aborts_in_completion() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(VarId::new(0))),
        ]);
        let cs = completions(&h);
        assert_eq!(cs.len(), 1);
        let view = TxnView::parse(&cs[0]);
        assert_eq!(view.transactions()[0].status(), TransactionStatus::Aborted);
        assert!(cs[0].is_well_formed());
    }

    #[test]
    fn two_commit_pending_yield_four_completions() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::invoke(p(1), Operation::TxCommit),
        ]);
        assert_eq!(completions(&h).len(), 4);
    }

    #[test]
    fn every_completion_has_no_live_transactions() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(1), Operation::TxCommit),
        ]);
        for c in completions(&h) {
            let view = TxnView::parse(&c);
            assert!(view
                .transactions()
                .iter()
                .all(|t| t.status() != TransactionStatus::Live));
        }
    }
}
