//! Matched invocation/response pairs ("calls").

use std::fmt;

use crate::action::{Operation, Response};
use crate::ids::ProcessId;

/// Completion status of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CallStatus {
    /// The invocation received a matching response.
    Completed,
    /// The invocation is still awaiting its response.
    Pending,
}

/// One operation instance in a history: an invocation together with its
/// matching response, if any.
///
/// Produced by [`History::calls`](crate::History::calls). The indices refer
/// to positions in the originating history and support the real-time
/// precedence order used by linearizability and opacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpCall {
    /// The invoking process.
    pub proc: ProcessId,
    /// The invocation.
    pub op: Operation,
    /// The matching response, if the call completed.
    pub resp: Option<Response>,
    /// Index of the invocation action in the history.
    pub invoke_index: usize,
    /// Index of the response action in the history, if completed.
    pub respond_index: Option<usize>,
}

impl OpCall {
    /// The completion status of the call.
    pub fn status(&self) -> CallStatus {
        if self.resp.is_some() {
            CallStatus::Completed
        } else {
            CallStatus::Pending
        }
    }
}

impl fmt::Display for OpCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resp {
            Some(r) => write!(f, "{}:{}→{}", self.proc, self.op, r),
            None => write!(f, "{}:{}→?", self.proc, self.op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Value;

    #[test]
    fn status_and_display() {
        let done = OpCall {
            proc: ProcessId::new(0),
            op: Operation::Propose(Value::new(1)),
            resp: Some(Response::Decided(Value::new(1))),
            invoke_index: 0,
            respond_index: Some(1),
        };
        assert_eq!(done.status(), CallStatus::Completed);
        assert_eq!(done.to_string(), "p1:propose(1)→decided(1)");

        let open = OpCall {
            resp: None,
            respond_index: None,
            ..done
        };
        assert_eq!(open.status(), CallStatus::Pending);
        assert_eq!(open.to_string(), "p1:propose(1)→?");
    }
}
