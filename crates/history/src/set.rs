//! Finite, explicitly enumerated sets of histories.
//!
//! The paper's adversary-set arguments (Section 4.1) hinge on *set-theoretic*
//! facts about sets of histories — most importantly that the two consensus
//! adversary sets `F1` and `F2` are disjoint, so their intersection `Gmax`
//! is empty and, by Theorem 4.4, no weakest excluding liveness property
//! exists. This module provides finite history sets with the operations
//! those arguments need: union, intersection, emptiness, prefix closure.
//!
//! Safety and liveness properties in general are *infinite* sets; those are
//! represented intensionally as predicates in `slx-safety` and
//! `slx-liveness`. [`HistorySet`] is for the finite witnesses.

use std::collections::BTreeSet;
use std::fmt;

use crate::history::History;

/// A finite set of histories.
///
/// # Examples
///
/// ```
/// use slx_history::{Action, History, HistorySet, Operation, ProcessId, Value};
///
/// let p1 = ProcessId::new(0);
/// let h = History::from_actions([Action::invoke(p1, Operation::Propose(Value::new(1)))]);
/// let f1 = HistorySet::from_histories([h.clone()]);
/// let f2 = HistorySet::new();
/// assert!(f1.intersection(&f2).is_empty());
/// assert!(f1.contains(&h));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistorySet {
    histories: BTreeSet<History>,
}

impl HistorySet {
    /// Creates an empty set.
    pub fn new() -> Self {
        HistorySet::default()
    }

    /// Creates a set from an iterator of histories.
    pub fn from_histories<I: IntoIterator<Item = History>>(histories: I) -> Self {
        HistorySet {
            histories: histories.into_iter().collect(),
        }
    }

    /// Inserts a history; returns `true` if it was not already present.
    pub fn insert(&mut self, h: History) -> bool {
        self.histories.insert(h)
    }

    /// Whether the set contains `h`.
    pub fn contains(&self, h: &History) -> bool {
        self.histories.contains(h)
    }

    /// Number of histories in the set.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Iterates over the histories in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &History> {
        self.histories.iter()
    }

    /// Set intersection.
    pub fn intersection(&self, other: &HistorySet) -> HistorySet {
        HistorySet {
            histories: self
                .histories
                .intersection(&other.histories)
                .cloned()
                .collect(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &HistorySet) -> HistorySet {
        HistorySet {
            histories: self.histories.union(&other.histories).cloned().collect(),
        }
    }

    /// Whether the two sets are disjoint.
    pub fn is_disjoint(&self, other: &HistorySet) -> bool {
        self.histories.is_disjoint(&other.histories)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &HistorySet) -> bool {
        self.histories.is_subset(&other.histories)
    }

    /// The prefix closure of the set: every prefix of every member.
    ///
    /// Safety properties are prefix-closed (Definition 3.1); this is the
    /// finite analogue used by tests that validate property implementations
    /// against the definition.
    pub fn prefix_closure(&self) -> HistorySet {
        let mut out = BTreeSet::new();
        for h in &self.histories {
            for p in h.prefixes() {
                out.insert(p);
            }
        }
        HistorySet { histories: out }
    }

    /// Whether the set is prefix-closed.
    pub fn is_prefix_closed(&self) -> bool {
        self.histories
            .iter()
            .all(|h| h.prefixes().all(|p| self.histories.contains(&p)))
    }
}

impl fmt::Display for HistorySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for h in &self.histories {
            writeln!(f, "  {h}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<History> for HistorySet {
    fn from_iter<I: IntoIterator<Item = History>>(iter: I) -> Self {
        HistorySet::from_histories(iter)
    }
}

impl Extend<History> for HistorySet {
    fn extend<I: IntoIterator<Item = History>>(&mut self, iter: I) {
        self.histories.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Operation};
    use crate::ids::{ProcessId, Value};

    fn h1() -> History {
        History::from_actions([Action::invoke(
            ProcessId::new(0),
            Operation::Propose(Value::new(1)),
        )])
    }

    fn h2() -> History {
        History::from_actions([Action::invoke(
            ProcessId::new(1),
            Operation::Propose(Value::new(2)),
        )])
    }

    #[test]
    fn insert_and_contains() {
        let mut s = HistorySet::new();
        assert!(s.insert(h1()));
        assert!(!s.insert(h1()));
        assert!(s.contains(&h1()));
        assert!(!s.contains(&h2()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn intersection_and_disjointness() {
        let a = HistorySet::from_histories([h1(), h2()]);
        let b = HistorySet::from_histories([h2()]);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&h2()));
        let c = HistorySet::from_histories([h1()]);
        assert!(b.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn union_and_subset() {
        let a = HistorySet::from_histories([h1()]);
        let b = HistorySet::from_histories([h2()]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
    }

    #[test]
    fn prefix_closure_adds_prefixes() {
        let s = HistorySet::from_histories([h1().concat(&h2())]);
        assert!(!s.is_prefix_closed());
        let c = s.prefix_closure();
        assert!(c.is_prefix_closed());
        // ε, h1, h1·h2
        assert_eq!(c.len(), 3);
        assert!(c.contains(&History::new()));
    }

    #[test]
    fn display_lists_members() {
        let s = HistorySet::from_histories([h1()]);
        let out = s.to_string();
        assert!(out.contains("propose(1)@p1"));
    }
}
