//! Histories of shared-object computations.
//!
//! This crate implements Section 2 and the history-level parts of Section 3
//! of *Bushkov & Guerraoui, "Safety-Liveness Exclusion in Distributed
//! Computing" (PODC 2015)*: the external alphabet `ext(Tp)` of a shared
//! object type (invocations, responses and crash events, each tagged with a
//! process identifier), finite histories over that alphabet, per-process
//! projections `h|pi`, well-formedness, prefix machinery, and finite sets of
//! histories with intersection (used to exhibit the disjoint adversary sets
//! `F1 ∩ F2 = ∅` behind Corollaries 4.5 and 4.6).
//!
//! # Design notes
//!
//! The paper works with histories over an *arbitrary* object type
//! `Tp = (St, Inv, Res, Seq)`. Here the invocation and response alphabets
//! are concrete Rust enums ([`Operation`], [`Response`]) covering every
//! object type the paper's results are instantiated on: consensus,
//! read/write registers, test-and-set, compare-and-swap, fetch-and-add and
//! transactional memory. Code that is generic in the paper (safety and
//! liveness property traits, projections, prefix closure) is generic over
//! histories here; only the alphabet is fixed.
//!
//! # Examples
//!
//! Build the first history of the paper's consensus adversary set `F1`
//! (`propose1(v) · propose2(v')`) and project it:
//!
//! ```
//! use slx_history::{Action, History, Operation, ProcessId, Value};
//!
//! let p1 = ProcessId::new(0);
//! let p2 = ProcessId::new(1);
//! let h = History::from_actions([
//!     Action::invoke(p1, Operation::Propose(Value::new(1))),
//!     Action::invoke(p2, Operation::Propose(Value::new(2))),
//! ]);
//! assert!(h.is_well_formed());
//! assert_eq!(h.projection(p1).len(), 1);
//! assert!(h.pending(p1));
//! ```

#![warn(missing_docs)]

mod action;
mod calls;
mod codec;
mod completion;
mod history;
mod ids;
mod set;
mod txn;

pub use action::{Action, ActionKind, Operation, Response};
pub use calls::{CallStatus, OpCall};
pub use completion::completions;
pub use history::History;
pub use ids::{ProcessId, TxnId, Value, VarId};
pub use set::HistorySet;
pub use txn::{Transaction, TransactionStatus, TxnEvent, TxnView};
