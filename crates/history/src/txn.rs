//! Transaction-level view of transactional-memory histories.
//!
//! Opacity (Section 4.1) and the safety property `S` of Section 5.3 are
//! stated in terms of *transactions*, not raw actions. This module parses a
//! TM history into per-process sequences of transactions with their events,
//! boundaries and statuses, exposing exactly the notions the paper uses:
//! per-process transaction sequence numbers (`Ti is the t-th transaction in
//! h|pi`), real-time precedence between transactions, concurrency, read and
//! write sets.

use std::collections::BTreeMap;

use crate::action::{Action, Operation, Response};
use crate::history::History;
use crate::ids::{ProcessId, TxnId, Value, VarId};

/// Final status of a transaction within a (finite) history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransactionStatus {
    /// The transaction received the commit event `C`.
    Committed,
    /// The transaction received an abort event `A` (from any operation).
    Aborted,
    /// The transaction has neither committed nor aborted yet.
    Live,
}

/// One transactional operation within a transaction, with its response (if
/// it completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnEvent {
    /// `start()` request.
    Start {
        /// Response: `Ok` or `Aborted`, if received.
        resp: Option<Response>,
    },
    /// `x.read()` request.
    Read {
        /// The variable read.
        var: VarId,
        /// Response: `ValueReturned(v)` or `Aborted`, if received.
        resp: Option<Response>,
    },
    /// `x.write(v)` request.
    Write {
        /// The variable written.
        var: VarId,
        /// The value written.
        val: Value,
        /// Response: `Ok` or `Aborted`, if received.
        resp: Option<Response>,
    },
    /// `tryC()` request.
    TryCommit {
        /// Response: `Committed` or `Aborted`, if received.
        resp: Option<Response>,
    },
}

impl TxnEvent {
    /// The response attached to the event, if any.
    pub fn response(&self) -> Option<Response> {
        match self {
            TxnEvent::Start { resp }
            | TxnEvent::Read { resp, .. }
            | TxnEvent::Write { resp, .. }
            | TxnEvent::TryCommit { resp } => *resp,
        }
    }
}

/// A single transaction parsed out of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Identifier: process and one-based per-process sequence number.
    pub id: TxnId,
    /// The transactional operations of the transaction, in order.
    pub events: Vec<TxnEvent>,
    /// Index in the history of the `start()` invocation.
    pub start_index: usize,
    /// Index in the history of the terminating `C`/`A` response, if any.
    pub end_index: Option<usize>,
}

impl Transaction {
    /// The status of the transaction.
    pub fn status(&self) -> TransactionStatus {
        for e in &self.events {
            match e.response() {
                Some(Response::Committed) => return TransactionStatus::Committed,
                Some(Response::Aborted) => return TransactionStatus::Aborted,
                _ => {}
            }
        }
        TransactionStatus::Live
    }

    /// Whether the transaction invoked `tryC()`.
    pub fn invoked_commit(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TxnEvent::TryCommit { .. }))
    }

    /// Whether the transaction's `start()` received a (non-abort) response
    /// at or before history index `idx`.
    ///
    /// Used by property `S` (Section 5.3): "after at least two other
    /// transactions receive a response for a `start()` operation".
    pub fn start_responded_by(&self, idx: usize, history: &History) -> bool {
        // The start() response, if present, is the first response of the
        // transaction; locate it in the history.
        let mut seen_start_invoke = false;
        for (i, a) in history.actions().iter().enumerate() {
            if i < self.start_index {
                continue;
            }
            if a.proc() != self.id.proc {
                continue;
            }
            match a {
                Action::Invoke {
                    op: Operation::TxStart,
                    ..
                } if i == self.start_index => {
                    seen_start_invoke = true;
                }
                Action::Respond { .. } if seen_start_invoke => {
                    return i <= idx;
                }
                _ => {}
            }
        }
        false
    }

    /// The read set: for each variable, the first value returned by a read
    /// of that variable *before* the transaction wrote it.
    pub fn read_set(&self) -> BTreeMap<VarId, Value> {
        let mut reads = BTreeMap::new();
        let mut written: Vec<VarId> = Vec::new();
        for e in &self.events {
            match e {
                TxnEvent::Read {
                    var,
                    resp: Some(Response::ValueReturned(v)),
                } if !written.contains(var) => {
                    reads.entry(*var).or_insert(*v);
                }
                TxnEvent::Write { var, resp, .. } => {
                    if matches!(resp, Some(Response::Ok)) {
                        written.push(*var);
                    }
                }
                _ => {}
            }
        }
        reads
    }

    /// The write set: for each variable, the last value successfully
    /// written by the transaction.
    pub fn write_set(&self) -> BTreeMap<VarId, Value> {
        let mut writes = BTreeMap::new();
        for e in &self.events {
            if let TxnEvent::Write { var, val, resp } = e {
                if matches!(resp, Some(Response::Ok)) {
                    writes.insert(*var, *val);
                }
            }
        }
        writes
    }
}

/// A parsed transaction-level view of a TM history.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnView {
    transactions: Vec<Transaction>,
}

impl TxnView {
    /// Parses a TM history into transactions.
    ///
    /// Transaction boundaries follow the paper: a transaction begins with a
    /// `start()` invocation and ends when any of its operations receives a
    /// commit event `C` or an abort event `A`. Non-transactional actions
    /// are ignored.
    pub fn parse(history: &History) -> TxnView {
        // Per-process: (current open transaction index into `txns`, next seq).
        let mut open: BTreeMap<ProcessId, usize> = BTreeMap::new();
        let mut next_seq: BTreeMap<ProcessId, usize> = BTreeMap::new();
        let mut txns: Vec<Transaction> = Vec::new();

        for (i, a) in history.actions().iter().enumerate() {
            let p = a.proc();
            match a {
                Action::Invoke { op, .. } if op.is_transactional() => {
                    if let Operation::TxStart = op {
                        let seq = next_seq.entry(p).or_insert(1);
                        let id = TxnId::new(p, *seq);
                        *seq += 1;
                        open.insert(p, txns.len());
                        txns.push(Transaction {
                            id,
                            events: vec![TxnEvent::Start { resp: None }],
                            start_index: i,
                            end_index: None,
                        });
                    } else if let Some(&ti) = open.get(&p) {
                        let ev = match op {
                            Operation::TxRead(x) => TxnEvent::Read {
                                var: *x,
                                resp: None,
                            },
                            Operation::TxWrite(x, v) => TxnEvent::Write {
                                var: *x,
                                val: *v,
                                resp: None,
                            },
                            Operation::TxCommit => TxnEvent::TryCommit { resp: None },
                            Operation::TxStart => unreachable!(),
                            _ => continue,
                        };
                        txns[ti].events.push(ev);
                    }
                }
                Action::Respond { resp, .. } => {
                    if let Some(&ti) = open.get(&p) {
                        if let Some(last) = txns[ti].events.last_mut() {
                            let slot = match last {
                                TxnEvent::Start { resp }
                                | TxnEvent::Read { resp, .. }
                                | TxnEvent::Write { resp, .. }
                                | TxnEvent::TryCommit { resp } => resp,
                            };
                            if slot.is_none() {
                                *slot = Some(*resp);
                                if matches!(resp, Response::Committed | Response::Aborted) {
                                    txns[ti].end_index = Some(i);
                                    open.remove(&p);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        TxnView { transactions: txns }
    }

    /// All transactions, in start order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The transactions of one process, in order (their `seq` fields are
    /// `1, 2, ...`).
    pub fn of_process(&self, proc: ProcessId) -> Vec<&Transaction> {
        self.transactions
            .iter()
            .filter(|t| t.id.proc == proc)
            .collect()
    }

    /// TM-client well-formedness: every transaction except possibly the
    /// *last* of each process has completed (received `C` or `A`). A
    /// client that invokes `start()` while its previous transaction is
    /// still live violates the sequential-transaction discipline of the
    /// TM object type; [`crate::completions`] requires this property.
    pub fn client_well_formed(&self) -> bool {
        use std::collections::BTreeMap;
        let mut last_of: BTreeMap<crate::ids::ProcessId, &Transaction> = BTreeMap::new();
        for t in &self.transactions {
            if let Some(prev) = last_of.insert(t.id.proc, t) {
                if prev.status() == TransactionStatus::Live {
                    return false;
                }
            }
        }
        true
    }

    /// Real-time precedence: `a` completes before `b` starts.
    pub fn precedes(&self, a: &Transaction, b: &Transaction) -> bool {
        match a.end_index {
            Some(e) => e < b.start_index,
            None => false,
        }
    }

    /// Whether two transactions are concurrent (neither precedes the other).
    pub fn concurrent(&self, a: &Transaction, b: &Transaction) -> bool {
        !self.precedes(a, b) && !self.precedes(b, a) && a.id != b.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }
    fn x(i: usize) -> VarId {
        VarId::new(i)
    }

    /// p1: start·ok, x1.read·0, x1.write(5)·ok, tryC·C, then a second start.
    fn committed_then_open() -> History {
        History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::ValueReturned(v(0))),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(5))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
        ])
    }

    #[test]
    fn parses_boundaries_and_sequence_numbers() {
        let view = TxnView::parse(&committed_then_open());
        let ts = view.of_process(p(0));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].id.seq, 1);
        assert_eq!(ts[0].status(), TransactionStatus::Committed);
        assert_eq!(ts[1].id.seq, 2);
        assert_eq!(ts[1].status(), TransactionStatus::Live);
        assert!(ts[0].invoked_commit());
        assert!(!ts[1].invoked_commit());
    }

    #[test]
    fn abort_ends_transaction() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::Aborted),
            Action::invoke(p(0), Operation::TxStart),
        ]);
        let view = TxnView::parse(&h);
        let ts = view.of_process(p(0));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].status(), TransactionStatus::Aborted);
        assert_eq!(ts[0].end_index, Some(3));
        assert_eq!(ts[1].status(), TransactionStatus::Live);
    }

    #[test]
    fn read_and_write_sets() {
        let view = TxnView::parse(&committed_then_open());
        let t1 = &view.of_process(p(0))[0].clone();
        assert_eq!(t1.read_set().get(&x(0)), Some(&v(0)));
        assert_eq!(t1.write_set().get(&x(0)), Some(&v(5)));
    }

    #[test]
    fn read_after_own_write_not_in_read_set() {
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxWrite(x(0), v(9))),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxRead(x(0))),
            Action::respond(p(0), Response::ValueReturned(v(9))),
        ]);
        let view = TxnView::parse(&h);
        let t = &view.transactions()[0];
        assert!(t.read_set().is_empty());
        assert_eq!(t.write_set().get(&x(0)), Some(&v(9)));
    }

    #[test]
    fn precedence_and_concurrency() {
        // T[p1,1] commits before T[p2,1] starts; T[p2,1] and T[p1,2] overlap.
        let h = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxCommit),
            Action::respond(p(0), Response::Committed),
            Action::invoke(p(1), Operation::TxStart),
            Action::respond(p(1), Response::Ok),
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
        ]);
        let view = TxnView::parse(&h);
        let t11 = view.of_process(p(0))[0].clone();
        let t21 = view.of_process(p(1))[0].clone();
        let t12 = view.of_process(p(0))[1].clone();
        assert!(view.precedes(&t11, &t21));
        assert!(!view.precedes(&t21, &t11));
        assert!(view.concurrent(&t21, &t12));
        assert!(!view.concurrent(&t11, &t21));
    }

    #[test]
    fn client_well_formedness() {
        let good = committed_then_open();
        assert!(TxnView::parse(&good).client_well_formed());
        // start() over a live transaction: ill-formed at the client level.
        let bad = History::from_actions([
            Action::invoke(p(0), Operation::TxStart),
            Action::respond(p(0), Response::Ok),
            Action::invoke(p(0), Operation::TxStart),
        ]);
        assert!(bad.is_well_formed());
        assert!(!TxnView::parse(&bad).client_well_formed());
    }

    #[test]
    fn start_responded_by_index() {
        let h = committed_then_open();
        let view = TxnView::parse(&h);
        let t1 = view.of_process(p(0))[0].clone();
        // start() response is at index 1.
        assert!(!t1.start_responded_by(0, &h));
        assert!(t1.start_responded_by(1, &h));
        assert!(t1.start_responded_by(5, &h));
    }
}
