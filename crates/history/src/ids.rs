//! Identifier newtypes shared across the workspace.

use std::fmt;

/// Identifier of a process `pi` in a system of `n` asynchronous processes.
///
/// Process identifiers are zero-based internally; the [`fmt::Display`]
/// rendering is one-based (`p1`, `p2`, ...) to match the paper's notation.
///
/// # Examples
///
/// ```
/// use slx_history::ProcessId;
/// let p = ProcessId::new(0);
/// assert_eq!(p.index(), 0);
/// assert_eq!(p.to_string(), "p1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the zero-based index of the process.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Enumerates the identifiers of the first `n` processes.
    ///
    /// # Examples
    ///
    /// ```
    /// use slx_history::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all.len(), 3);
    /// assert_eq!(all[2], ProcessId::new(2));
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

/// A value proposed to, stored in, or returned by a shared object.
///
/// The paper's results never depend on the structure of values beyond
/// equality, so a signed 64-bit payload suffices for every object type
/// modeled here (consensus proposals, register contents, transactional
/// variable contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(i64);

impl Value {
    /// Wraps a raw payload.
    pub const fn new(raw: i64) -> Self {
        Value(raw)
    }

    /// Returns the raw payload.
    pub const fn raw(self) -> i64 {
        self.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(raw: i64) -> Self {
        Value(raw)
    }
}

/// Identifier of a transactional variable (`x1`, `x2`, ...) or of a
/// register cell in a multi-variable object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable identifier from a zero-based index.
    pub const fn new(index: usize) -> Self {
        VarId(index)
    }

    /// Returns the zero-based index of the variable.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

impl From<usize> for VarId {
    fn from(index: usize) -> Self {
        VarId(index)
    }
}

/// Identifier of a transaction within a history: the `t`-th transaction of
/// process `pi`, written `T_{i,t}`.
///
/// The paper's property `S` of Section 5.3 quantifies over transactions with
/// equal per-process sequence numbers, which is why the sequence number is
/// part of the identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// The process executing the transaction.
    pub proc: ProcessId,
    /// One-based sequence number of the transaction in `h|pi`.
    pub seq: usize,
}

impl TxnId {
    /// Creates a transaction identifier.
    pub const fn new(proc: ProcessId, seq: usize) -> Self {
        TxnId { proc, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T[{},{}]", self.proc, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(9).to_string(), "p10");
    }

    #[test]
    fn process_all_enumerates() {
        assert_eq!(ProcessId::all(0).count(), 0);
        assert_eq!(
            ProcessId::all(2).collect::<Vec<_>>(),
            vec![ProcessId::new(0), ProcessId::new(1)]
        );
    }

    #[test]
    fn value_round_trips() {
        assert_eq!(Value::new(-7).raw(), -7);
        assert_eq!(Value::from(42), Value::new(42));
        assert_eq!(Value::default(), Value::new(0));
    }

    #[test]
    fn var_display() {
        assert_eq!(VarId::new(0).to_string(), "x1");
    }

    #[test]
    fn txn_id_orders_by_process_then_seq() {
        let a = TxnId::new(ProcessId::new(0), 2);
        let b = TxnId::new(ProcessId::new(1), 1);
        assert!(a < b);
        assert_eq!(a.to_string(), "T[p1,2]");
    }
}
