//! The finite I/O automaton structure.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::hash::Hash;

use slx_engine::{
    digest128_of, Checker, DeltaCodec, DeltaCtx, Digest, Expansion, StateCodec, StateSpace,
};

/// Index of a state within an [`Automaton`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite execution: alternating states and actions, starting (and, per
/// the paper, ending) with a state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Execution<L> {
    /// The visited states; `states.len() == actions.len() + 1`.
    pub states: Vec<StateId>,
    /// The actions taken.
    pub actions: Vec<L>,
}

impl<L> Execution<L> {
    /// The final state of the execution.
    pub fn last_state(&self) -> StateId {
        *self.states.last().expect("executions are non-empty")
    }
}

impl StateCodec for StateId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(StateId(usize::decode(input)?))
    }
}

impl<L: StateCodec> StateCodec for Execution<L> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.states.encode(out);
        self.actions.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(Execution {
            states: Vec::decode(input)?,
            actions: Vec::decode(input)?,
        })
    }
}

impl DeltaCodec for StateId {}

impl<L: DeltaCodec + PartialEq + Clone> DeltaCodec for Execution<L> {
    /// Sibling executions in a frontier extend a common prefix by one
    /// state and one action; both vectors delta as slices.
    fn encode_delta(&self, prev: Option<&Self>, out: &mut Vec<u8>) {
        let Some(prev) = prev else {
            return self.encode(out);
        };
        self.states.encode_delta(Some(&prev.states), out);
        self.actions.encode_delta(Some(&prev.actions), out);
    }

    fn decode_delta(prev: Option<&Self>, input: &mut &[u8], ctx: &mut DeltaCtx) -> Option<Self> {
        let Some(prev) = prev else {
            return Self::decode(input);
        };
        Some(Execution {
            states: Vec::decode_delta(Some(&prev.states), input, ctx)?,
            actions: Vec::decode_delta(Some(&prev.actions), input, ctx)?,
        })
    }
}

/// A finite I/O automaton `(states, sig, init, trans)` with action labels
/// of type `L` (Section 2). The signature partitions actions into input,
/// output and internal sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Automaton<L> {
    name: String,
    n_states: usize,
    init: BTreeSet<StateId>,
    inputs: BTreeSet<L>,
    outputs: BTreeSet<L>,
    internals: BTreeSet<L>,
    trans: BTreeSet<(StateId, L, StateId)>,
    /// Actions treated as crash actions: they are inputs, and their being
    /// enabled does not make an execution unfair (Section 3.2's fairness
    /// explicitly exempts crash actions).
    crashes: BTreeSet<L>,
}

impl<L: Clone + Ord + fmt::Debug> Automaton<L> {
    /// Creates an automaton with `n_states` states (identified `s0..`),
    /// the given initial states and signature. Transitions are added with
    /// [`Automaton::add_transition`].
    ///
    /// # Panics
    ///
    /// Panics if the three action sets overlap, or an initial state is out
    /// of range.
    pub fn new(
        name: impl Into<String>,
        n_states: usize,
        init: impl IntoIterator<Item = StateId>,
        inputs: impl IntoIterator<Item = L>,
        outputs: impl IntoIterator<Item = L>,
        internals: impl IntoIterator<Item = L>,
    ) -> Self {
        let inputs: BTreeSet<L> = inputs.into_iter().collect();
        let outputs: BTreeSet<L> = outputs.into_iter().collect();
        let internals: BTreeSet<L> = internals.into_iter().collect();
        assert!(
            inputs.is_disjoint(&outputs)
                && inputs.is_disjoint(&internals)
                && outputs.is_disjoint(&internals),
            "action signature sets must be disjoint"
        );
        let init: BTreeSet<StateId> = init.into_iter().collect();
        assert!(
            init.iter().all(|s| s.0 < n_states),
            "initial state out of range"
        );
        Automaton {
            name: name.into(),
            n_states,
            init,
            inputs,
            outputs,
            internals,
            trans: BTreeSet::new(),
            crashes: BTreeSet::new(),
        }
    }

    /// The automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// The initial states.
    pub fn init(&self) -> &BTreeSet<StateId> {
        &self.init
    }

    /// Input actions.
    pub fn inputs(&self) -> &BTreeSet<L> {
        &self.inputs
    }

    /// Output actions.
    pub fn outputs(&self) -> &BTreeSet<L> {
        &self.outputs
    }

    /// Internal actions.
    pub fn internals(&self) -> &BTreeSet<L> {
        &self.internals
    }

    /// All actions of the signature.
    pub fn actions(&self) -> BTreeSet<L> {
        let mut all = self.inputs.clone();
        all.extend(self.outputs.iter().cloned());
        all.extend(self.internals.iter().cloned());
        all
    }

    /// Marks `label` as a crash action (must already be an input action).
    ///
    /// # Panics
    ///
    /// Panics if `label` is not an input action.
    pub fn mark_crash(&mut self, label: L) {
        assert!(
            self.inputs.contains(&label),
            "crash actions must be input actions"
        );
        self.crashes.insert(label);
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if states are out of range or the action is not in the
    /// signature.
    pub fn add_transition(&mut self, from: StateId, action: L, to: StateId) {
        assert!(
            from.0 < self.n_states && to.0 < self.n_states,
            "state out of range"
        );
        assert!(
            self.inputs.contains(&action)
                || self.outputs.contains(&action)
                || self.internals.contains(&action),
            "action {action:?} not in signature"
        );
        self.trans.insert((from, action, to));
    }

    /// The actions enabled at `state`.
    pub fn enabled(&self, state: StateId) -> BTreeSet<L> {
        self.trans
            .iter()
            .filter(|(s, _, _)| *s == state)
            .map(|(_, a, _)| a.clone())
            .collect()
    }

    /// Successor states of `state` under `action`.
    pub fn successors(&self, state: StateId, action: &L) -> Vec<StateId> {
        self.trans
            .iter()
            .filter(|(s, a, _)| *s == state && a == action)
            .map(|(_, _, t)| *t)
            .collect()
    }

    /// Whether every input action is enabled at every state (the standard
    /// I/O-automata input-enabledness; the paper's refinement that only
    /// non-pending processes accept invocations is modeled by *which*
    /// input labels exist).
    pub fn is_input_enabled(&self) -> bool {
        (0..self.n_states).all(|s| {
            let en = self.enabled(StateId(s));
            self.inputs.iter().all(|i| en.contains(i))
        })
    }

    /// A finite execution is **fair** iff no action other than a crash is
    /// enabled at its final state (Section 3.2 condition (I)).
    pub fn is_fair_finite(&self, exec: &Execution<L>) -> bool {
        self.enabled(exec.last_state())
            .into_iter()
            .all(|a| self.crashes.contains(&a))
    }

    /// Enumerates all executions with at most `depth` actions, starting
    /// from every initial state.
    ///
    /// This is the retained-queue baseline (it works for any `Ord`
    /// label); codec-capable labels can run the same enumeration on the
    /// exploration kernel — parallel, beyond-RAM, replay-spill capable —
    /// via [`Automaton::executions_on`], which the differential tests pin
    /// to this implementation.
    pub fn executions(&self, depth: usize) -> Vec<Execution<L>> {
        let mut out = Vec::new();
        let mut queue: VecDeque<Execution<L>> = self
            .init
            .iter()
            .map(|&s| Execution {
                states: vec![s],
                actions: vec![],
            })
            .collect();
        while let Some(e) = queue.pop_front() {
            if e.actions.len() < depth {
                let s = e.last_state();
                for a in self.enabled(s) {
                    for t in self.successors(s, &a) {
                        let mut e2 = e.clone();
                        e2.states.push(t);
                        e2.actions.push(a.clone());
                        queue.push_back(e2);
                    }
                }
            }
            out.push(e);
        }
        out
    }

    /// The *histories* of fair executions with at most `depth` actions:
    /// the external (input + output) action subsequences, deduplicated.
    ///
    /// This is a finite truncation of the paper's `fair(A_I)`; Lemma 4.8
    /// tests quantify over it.
    pub fn fair_histories(&self, depth: usize) -> BTreeSet<Vec<L>> {
        self.executions(depth)
            .into_iter()
            .filter(|e| self.is_fair_finite(e))
            .map(|e| {
                e.actions
                    .into_iter()
                    .filter(|a| self.inputs.contains(a) || self.outputs.contains(a))
                    .collect()
            })
            .collect()
    }

    /// All histories (fair or not) with at most `depth` actions.
    pub fn histories(&self, depth: usize) -> BTreeSet<Vec<L>> {
        self.executions(depth)
            .into_iter()
            .map(|e| {
                e.actions
                    .into_iter()
                    .filter(|a| self.inputs.contains(a) || self.outputs.contains(a))
                    .collect()
            })
            .collect()
    }

    /// Whether the automata are compatible for composition:
    /// `out(A1) ∩ out(A2) = ∅`, `int(A1) ∩ acts(A2) = ∅`,
    /// `int(A2) ∩ acts(A1) = ∅`.
    pub fn compatible(&self, other: &Automaton<L>) -> bool {
        self.outputs.is_disjoint(&other.outputs)
            && self.internals.iter().all(|a| !other.actions().contains(a))
            && other.internals.iter().all(|a| !self.actions().contains(a))
    }

    /// The composition `A1 × A2` of Section 2: product states, shared
    /// actions synchronized, matched input/output pairs hidden (they become
    /// internal).
    ///
    /// # Panics
    ///
    /// Panics if the automata are not compatible.
    pub fn compose(&self, other: &Automaton<L>) -> Automaton<L> {
        assert!(self.compatible(other), "incompatible automata");
        let pair = |a: usize, b: usize| StateId(a * other.n_states + b);

        // Signature per the paper's (simplified) composition.
        let mut internals: BTreeSet<L> = self.internals.union(&other.internals).cloned().collect();
        for a in self.inputs.intersection(&other.outputs) {
            internals.insert(a.clone());
        }
        for a in other.inputs.intersection(&self.outputs) {
            internals.insert(a.clone());
        }
        let inputs: BTreeSet<L> = self
            .inputs
            .union(&other.inputs)
            .filter(|a| !internals.contains(*a))
            .cloned()
            .collect();
        let outputs: BTreeSet<L> = self
            .outputs
            .union(&other.outputs)
            .filter(|a| !internals.contains(*a))
            .cloned()
            .collect();

        let init = self
            .init
            .iter()
            .flat_map(|&a| other.init.iter().map(move |&b| pair(a.0, b.0)));
        let mut composed = Automaton::new(
            format!("{}×{}", self.name, other.name),
            self.n_states * other.n_states,
            init,
            inputs,
            outputs,
            internals,
        );
        for crash in self.crashes.union(&other.crashes) {
            if composed.inputs.contains(crash) {
                composed.crashes.insert(crash.clone());
            }
        }

        let all_actions: BTreeSet<L> = self.actions().union(&other.actions()).cloned().collect();
        let self_acts = self.actions();
        let other_acts = other.actions();
        for a in 0..self.n_states {
            for b in 0..other.n_states {
                for act in &all_actions {
                    let sa: Vec<StateId> = if self_acts.contains(act) {
                        self.successors(StateId(a), act)
                    } else {
                        vec![StateId(a)]
                    };
                    let sb: Vec<StateId> = if other_acts.contains(act) {
                        other.successors(StateId(b), act)
                    } else {
                        vec![StateId(b)]
                    };
                    // If a component has the action in its signature but no
                    // transition from its current state, the composed action
                    // is disabled.
                    if self_acts.contains(act) && sa.is_empty() {
                        continue;
                    }
                    if other_acts.contains(act) && sb.is_empty() {
                        continue;
                    }
                    for &ta in &sa {
                        for &tb in &sb {
                            composed.add_transition(pair(a, b), act.clone(), pair(ta.0, tb.0));
                        }
                    }
                }
            }
        }
        composed
    }

    /// Crash augmentation (Section 2): adds a fresh `crashed` state, a
    /// `crash` input transition from every state into it, and marks the
    /// label as a crash action. No action is enabled at the crashed state.
    pub fn with_crash(mut self, crash_label: L) -> Automaton<L> {
        let crashed = StateId(self.n_states);
        self.n_states += 1;
        self.inputs.insert(crash_label.clone());
        for s in 0..self.n_states {
            self.trans
                .insert((StateId(s), crash_label.clone(), crashed));
        }
        self.crashes.insert(crash_label);
        self
    }

    /// Reachable states (for sanity checks and size reports).
    pub fn reachable(&self) -> BTreeSet<StateId> {
        let mut seen: BTreeSet<StateId> = self.init.clone();
        let mut queue: VecDeque<StateId> = seen.iter().copied().collect();
        // Group transitions by source for speed.
        let mut by_src: BTreeMap<StateId, Vec<StateId>> = BTreeMap::new();
        for (s, _, t) in &self.trans {
            by_src.entry(*s).or_default().push(*t);
        }
        while let Some(s) = queue.pop_front() {
            for &t in by_src.get(&s).into_iter().flatten() {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }
}

/// The automata execution space on the `slx-engine` kernel: states are
/// (prefixes of) executions, successors extend an execution by one
/// enabled transition, and every explored execution is reported as a
/// finding — so a kernel run's findings are exactly
/// [`Automaton::executions`], in the same BFS order, with the kernel's
/// parallel expansion, disk-backed spilling, and replay regeneration
/// available.
///
/// Extending an execution is a couple of `Vec` pushes, far cheaper than
/// decoding a spilled execution record, so the space overrides
/// [`StateSpace::successor_at`] with a real indexed fast path: the
/// `index`-th (action, target) pair in the deterministic
/// `enabled`/`successors` order is looked up and only that one child is
/// built.
pub struct ExecutionSpace<'a, L> {
    automaton: &'a Automaton<L>,
    depth: usize,
}

impl<L> StateSpace for ExecutionSpace<'_, L>
where
    L: Clone + Ord + fmt::Debug + Hash + Send + Sync + DeltaCodec,
{
    type State = Execution<L>;
    type Finding = Execution<L>;

    fn digest(&self, exec: &Self::State) -> Digest {
        digest128_of(exec)
    }

    fn expand(&self, exec: &Self::State, _depth: usize, ctx: &mut Expansion<Self>) {
        ctx.finding(exec.clone());
        if exec.actions.len() >= self.depth {
            return;
        }
        let s = exec.last_state();
        let enabled = self.automaton.enabled(s);
        ctx.reserve(enabled.len());
        for a in enabled {
            for t in self.automaton.successors(s, &a) {
                let mut extended = exec.clone();
                extended.states.push(t);
                extended.actions.push(a.clone());
                ctx.push(extended);
            }
        }
    }

    fn successor_at(&self, exec: &Self::State, _depth: usize, index: usize) -> Option<Self::State> {
        if exec.actions.len() >= self.depth {
            return None;
        }
        let s = exec.last_state();
        let mut pushed = 0usize;
        for a in self.automaton.enabled(s) {
            for t in self.automaton.successors(s, &a) {
                if pushed == index {
                    let mut extended = exec.clone();
                    extended.states.push(t);
                    extended.actions.push(a.clone());
                    return Some(extended);
                }
                pushed += 1;
            }
        }
        None
    }

    fn has_successor_fast_path(&self) -> bool {
        true
    }
}

impl<L> Automaton<L>
where
    L: Clone + Ord + fmt::Debug + Hash + Send + Sync + DeltaCodec,
{
    /// [`Automaton::executions`] on an explicit exploration-kernel
    /// checker: identical executions in identical order, but enumerated
    /// by the shared kernel — so bounded-memory spilling
    /// (`Checker::with_mem_budget`, any [`slx_engine::SpillCodec`]
    /// including replay) and the parallel BFS backend apply to automata
    /// enumeration too.
    pub fn executions_on(&self, checker: &Checker, depth: usize) -> Vec<Execution<L>> {
        let space = ExecutionSpace {
            automaton: self,
            depth,
        };
        let initial: Vec<Execution<L>> = self
            .init
            .iter()
            .map(|&s| Execution {
                states: vec![s],
                actions: vec![],
            })
            .collect();
        checker.run(&space, initial).findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-shot channel: input "send", then output "deliver".
    fn channel() -> Automaton<&'static str> {
        let mut a = Automaton::new(
            "chan",
            3,
            [StateId(0)],
            ["send"],
            ["deliver"],
            Vec::<&str>::new(),
        );
        a.add_transition(StateId(0), "send", StateId(1));
        a.add_transition(StateId(1), "deliver", StateId(2));
        // Input-enabledness: "send" must be enabled everywhere.
        a.add_transition(StateId(1), "send", StateId(1));
        a.add_transition(StateId(2), "send", StateId(2));
        a
    }

    /// A consumer of "deliver" that then outputs "ack".
    fn consumer() -> Automaton<&'static str> {
        let mut a = Automaton::new(
            "cons",
            3,
            [StateId(0)],
            ["deliver"],
            ["ack"],
            Vec::<&str>::new(),
        );
        a.add_transition(StateId(0), "deliver", StateId(1));
        a.add_transition(StateId(1), "ack", StateId(2));
        a.add_transition(StateId(1), "deliver", StateId(1));
        a.add_transition(StateId(2), "deliver", StateId(2));
        a
    }

    #[test]
    fn enabled_and_successors() {
        let a = channel();
        assert_eq!(a.enabled(StateId(0)), BTreeSet::from(["send"]));
        assert_eq!(a.successors(StateId(1), &"deliver"), vec![StateId(2)]);
        assert!(a.is_input_enabled());
    }

    #[test]
    fn fairness_finite() {
        let a = channel();
        // Ending at s1 with "deliver" enabled: unfair.
        let unfair = Execution {
            states: vec![StateId(0), StateId(1)],
            actions: vec!["send"],
        };
        assert!(!a.is_fair_finite(&unfair));
        // Ending at s2 where only the input "send" is enabled: also unfair
        // under the strict rule (inputs count) — unless the only enabled
        // actions are crashes. s2 enables "send" (input, not crash).
        let at_end = Execution {
            states: vec![StateId(0), StateId(1), StateId(2)],
            actions: vec!["send", "deliver"],
        };
        assert!(!a.is_fair_finite(&at_end));
    }

    #[test]
    fn crash_augmentation_makes_quiet_states_fair() {
        let a = channel().with_crash("crash");
        // The crashed state (s3) enables nothing: fair.
        let crashed = Execution {
            states: vec![StateId(0), StateId(3)],
            actions: vec!["crash"],
        };
        assert!(a.is_fair_finite(&crashed));
        // Crash is enabled everywhere.
        for s in 0..3 {
            assert!(a.enabled(StateId(s)).contains("crash"));
        }
    }

    #[test]
    fn executions_enumeration_bounded() {
        let a = channel();
        let execs = a.executions(2);
        // Depth 0: 1; depth 1: send; depth 2: send·deliver, send·send.
        assert!(execs.iter().any(|e| e.actions == vec!["send", "deliver"]));
        assert!(execs.iter().all(|e| e.actions.len() <= 2));
    }

    #[test]
    fn composition_hides_matched_actions() {
        let c = channel().compose(&consumer());
        // "deliver" was output of channel and input of consumer: internal.
        assert!(c.internals().contains("deliver"));
        assert!(c.inputs().contains("send"));
        assert!(c.outputs().contains("ack"));
        assert!(!c.inputs().contains("deliver"));
    }

    #[test]
    fn composition_synchronizes() {
        let c = channel().compose(&consumer());
        // send → deliver (internal) → ack must be an execution.
        let execs = c.executions(3);
        let ok = execs
            .iter()
            .any(|e| e.actions == vec!["send", "deliver", "ack"]);
        assert!(ok, "composed execution missing");
        // Histories hide the internal action.
        let hs = c.histories(3);
        assert!(hs.contains(&vec!["send", "ack"]));
    }

    #[test]
    fn incompatible_automata_rejected() {
        let a = channel();
        let b = channel();
        // Both output "deliver": incompatible.
        assert!(!a.compatible(&b));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn compose_panics_on_incompatible() {
        let _ = channel().compose(&channel());
    }

    #[test]
    fn reachable_states() {
        let a = channel();
        assert_eq!(a.reachable().len(), 3);
    }

    #[test]
    fn fair_histories_of_channel_with_crash() {
        let a = channel().with_crash("crash");
        let fh = a.fair_histories(3);
        // A fair finite history must end with nothing (but crash) enabled —
        // e.g. after crash.
        assert!(fh.contains(&vec!["send", "crash"]));
        // "send" alone is unfair (deliver pending).
        assert!(!fh.contains(&vec!["send"]));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_signature_panics() {
        let _ = Automaton::new("bad", 1, [StateId(0)], ["a"], ["a"], Vec::<&str>::new());
    }

    /// An `Action`-labelled channel (codec-capable labels), so the kernel
    /// enumeration is available: invoke = input, respond = output.
    fn action_channel() -> Automaton<slx_history::Action> {
        use slx_history::{Action, Operation, ProcessId, Response, Value};
        let send = Action::invoke(ProcessId::new(0), Operation::Propose(Value::new(1)));
        let deliver = Action::respond(ProcessId::new(0), Response::Decided(Value::new(1)));
        let mut a = Automaton::new(
            "action-chan",
            3,
            [StateId(0)],
            [send],
            [deliver],
            Vec::<Action>::new(),
        );
        a.add_transition(StateId(0), send, StateId(1));
        a.add_transition(StateId(1), deliver, StateId(2));
        a.add_transition(StateId(1), send, StateId(1));
        a.add_transition(StateId(2), send, StateId(2));
        a
    }

    #[test]
    fn kernel_executions_match_the_queue_baseline() {
        let a =
            action_channel().with_crash(slx_history::Action::crash(slx_history::ProcessId::new(0)));
        for depth in [0usize, 1, 3, 5] {
            let queue = a.executions(depth);
            let kernel = a.executions_on(&Checker::parallel_bfs(1), depth);
            assert_eq!(kernel, queue, "depth {depth}");
        }
    }

    #[test]
    fn kernel_executions_survive_replay_spilling() {
        use slx_engine::SpillCodec;
        let a = action_channel();
        let resident = a.executions_on(&Checker::parallel_bfs(1).with_mem_budget(0), 6);
        assert_eq!(resident, a.executions(6));
        for codec in [SpillCodec::Delta, SpillCodec::Plain, SpillCodec::Replay] {
            // A tiny budget spills nearly every level; the replay arm
            // regenerates spilled executions from their parent prefixes
            // (via the indexed fast path for single-child records).
            let spilled = a.executions_on(
                &Checker::parallel_bfs(1)
                    .with_mem_budget(256)
                    .with_spill_codec(codec),
                6,
            );
            assert_eq!(spilled, resident, "{codec:?}");
        }
    }
}
