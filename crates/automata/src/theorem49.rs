//! The automaton constructions of Theorem 4.9.
//!
//! Both constructions are *implementations that use no base objects*: their
//! behaviour is entirely in the automaton structure. They are the paper's
//! tool for defeating any candidate "strongest liveness property that does
//! not exclude S" other than `Lmax`:
//!
//! - [`trivial_it`] never responds to anything. All its histories consist
//!   of invocations and crashes only, so it ensures *every* safety property
//!   (under the paper's standing assumptions), while its fair histories are
//!   very particular (every process pending or crashed).
//! - [`single_response_ib`] responds `res` to the first designated
//!   invocation by the designated process, and goes silent on everything
//!   else.

use slx_history::{Action, Operation, ProcessId, Response};

use crate::automaton::{Automaton, StateId};

/// Builds the trivial implementation `It` for `n` processes over the given
/// invocation alphabet: it accepts invocations (respecting pendingness) and
/// crashes, and never responds.
///
/// The automaton's states track each process's status (idle / pending /
/// crashed), so every generated history is well-formed. Response labels are
/// in the output signature but never enabled.
pub fn trivial_it(n: usize, ops: &[Operation], resps: &[Response]) -> Automaton<Action> {
    // State encoding: base-3 digits, one per process: 0 idle, 1 pending,
    // 2 crashed.
    let n_states = 3usize.pow(n as u32);
    let digit = |s: usize, i: usize| (s / 3usize.pow(i as u32)) % 3;
    let with_digit = |s: usize, i: usize, d: usize| {
        let old = digit(s, i);
        s + (d as i64 - old as i64) as usize * 3usize.pow(i as u32)
    };

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for p in ProcessId::all(n) {
        for &op in ops {
            inputs.push(Action::invoke(p, op));
        }
        inputs.push(Action::crash(p));
        for &r in resps {
            outputs.push(Action::respond(p, r));
        }
    }
    let mut a = Automaton::new(
        "It",
        n_states,
        [StateId(0)],
        inputs,
        outputs,
        Vec::<Action>::new(),
    );
    for p in ProcessId::all(n) {
        a.mark_crash(Action::crash(p));
    }
    for s in 0..n_states {
        for p in ProcessId::all(n) {
            let i = p.index();
            match digit(s, i) {
                0 => {
                    // Idle: every invocation enabled; crash enabled.
                    for &op in ops {
                        a.add_transition(
                            StateId(s),
                            Action::invoke(p, op),
                            StateId(with_digit(s, i, 1)),
                        );
                    }
                    a.add_transition(StateId(s), Action::crash(p), StateId(with_digit(s, i, 2)));
                }
                1 => {
                    // Pending: only crash enabled (It never responds).
                    a.add_transition(StateId(s), Action::crash(p), StateId(with_digit(s, i, 2)));
                }
                _ => {} // crashed: nothing enabled
            }
        }
    }
    a
}

/// Builds the component automaton `A_Ib_i` of Theorem 4.9's second
/// construction, for process `i`:
///
/// - if `i == l`: respond `res` to the first invocation `inv` (the
///   designated one), then go silent on the next invocation; any *other*
///   first invocation silences it immediately;
/// - if `i != l`: go silent on any invocation.
///
/// Compose the components with [`Automaton::compose`] to obtain `A_Ib`.
pub fn single_response_ib(
    i: ProcessId,
    l: ProcessId,
    inv: Operation,
    res: Response,
    ops: &[Operation],
) -> Automaton<Action> {
    let mut inputs: Vec<Action> = ops.iter().map(|&op| Action::invoke(i, op)).collect();
    inputs.push(Action::crash(i));
    let outputs = vec![Action::respond(i, res)];

    if i == l {
        // States: 0 init, 1 responding (s^l), 2 enabled after response
        // (s^l_en), 3 dead, 4 crashed.
        let mut a = Automaton::new(
            format!("Ib_{i}"),
            5,
            [StateId(0)],
            inputs,
            outputs,
            Vec::<Action>::new(),
        );
        for &op in ops {
            let target = if op == inv { StateId(1) } else { StateId(3) };
            a.add_transition(StateId(0), Action::invoke(i, op), target);
            // From s^l_en every invocation leads to the dead state.
            a.add_transition(StateId(2), Action::invoke(i, op), StateId(3));
        }
        a.add_transition(StateId(1), Action::respond(i, res), StateId(2));
        for s in 0..4 {
            a.add_transition(StateId(s), Action::crash(i), StateId(4));
        }
        a.mark_crash(Action::crash(i));
        a
    } else {
        // States: 0 init, 1 dead, 2 crashed.
        let mut a = Automaton::new(
            format!("Ib_{i}"),
            3,
            [StateId(0)],
            inputs,
            outputs,
            Vec::<Action>::new(),
        );
        for &op in ops {
            a.add_transition(StateId(0), Action::invoke(i, op), StateId(1));
        }
        a.add_transition(StateId(0), Action::crash(i), StateId(2));
        a.add_transition(StateId(1), Action::crash(i), StateId(2));
        a.mark_crash(Action::crash(i));
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{History, Value};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn propose(v: i64) -> Operation {
        Operation::Propose(Value::new(v))
    }

    fn ops() -> Vec<Operation> {
        vec![propose(1), propose(2)]
    }

    fn resps() -> Vec<Response> {
        vec![
            Response::Decided(Value::new(1)),
            Response::Decided(Value::new(2)),
        ]
    }

    #[test]
    fn it_never_responds() {
        let it = trivial_it(2, &ops(), &resps());
        for h in it.histories(4) {
            assert!(
                h.iter().all(|a| !matches!(a, Action::Respond { .. })),
                "It produced a response in {h:?}"
            );
        }
    }

    #[test]
    fn it_histories_are_well_formed() {
        let it = trivial_it(2, &ops(), &resps());
        for h in it.histories(5) {
            let hist = History::from_actions(h.iter().copied());
            assert!(hist.is_well_formed(), "malformed {hist}");
        }
    }

    #[test]
    fn it_fair_histories_have_all_processes_pending_or_crashed() {
        let it = trivial_it(2, &ops(), &resps());
        for h in it.fair_histories(4) {
            let hist = History::from_actions(h.iter().copied());
            for q in ProcessId::all(2) {
                assert!(
                    hist.pending(q) || hist.crashed(q),
                    "fair It history {hist} leaves {q} idle"
                );
            }
        }
        // And such histories exist (e.g. both processes invoke).
        let both_invoke = vec![
            Action::invoke(p(0), propose(1)),
            Action::invoke(p(1), propose(2)),
        ];
        assert!(it.fair_histories(4).contains(&both_invoke));
    }

    #[test]
    fn it_ensures_consensus_safety() {
        // Theorem 4.9's first step: It ensures S because its histories are
        // invocation/crash-only, which every (assumption-satisfying) safety
        // property allows.
        use slx_safety::{ConsensusSafety, SafetyProperty};
        let it = trivial_it(2, &ops(), &resps());
        let safety = ConsensusSafety::new();
        for h in it.histories(5) {
            let hist = History::from_actions(h.iter().copied());
            assert!(safety.allows(&hist), "It history violates safety: {hist}");
        }
    }

    fn build_ib() -> Automaton<Action> {
        let res = Response::Decided(Value::new(1));
        let a0 = single_response_ib(p(0), p(0), propose(1), res, &ops());
        let a1 = single_response_ib(p(1), p(0), propose(1), res, &ops());
        a0.compose(&a1)
    }

    #[test]
    fn ib_responds_exactly_once_with_designated_response() {
        let ib = build_ib();
        for h in ib.histories(6) {
            let responses: Vec<&Action> = h
                .iter()
                .filter(|a| matches!(a, Action::Respond { .. }))
                .collect();
            assert!(responses.len() <= 1, "Ib responded twice in {h:?}");
            if let Some(Action::Respond { proc, resp }) = responses.first() {
                assert_eq!(*proc, p(0));
                assert_eq!(*resp, Response::Decided(Value::new(1)));
                // The designated invocation must precede it.
                assert!(h.contains(&Action::invoke(p(0), propose(1))));
            }
        }
    }

    #[test]
    fn ib_silences_after_wrong_invocation() {
        let ib = build_ib();
        // propose(2) first: no history may ever respond afterwards.
        for h in ib.histories(6) {
            if h.first() == Some(&Action::invoke(p(0), propose(2))) {
                assert!(h.iter().all(|a| !matches!(a, Action::Respond { .. })));
            }
        }
    }

    #[test]
    fn pending_designated_invocation_is_unfair() {
        // The key fairness argument of Theorem 4.9: a history in which the
        // designated invocation is pending (response enabled but not
        // delivered) corresponds to no fair execution of A_Ib.
        let ib = build_ib();
        let h_pending = vec![Action::invoke(p(0), propose(1))];
        assert!(
            !ib.fair_histories(3).contains(&h_pending),
            "history with enabled response counted as fair"
        );
        // After the response, a quiescent-ish continuation can be fair once
        // the other process is also silenced.
        let h_full = vec![
            Action::invoke(p(0), propose(1)),
            Action::respond(p(0), Response::Decided(Value::new(1))),
            Action::invoke(p(0), propose(1)),
            Action::invoke(p(1), propose(2)),
        ];
        assert!(ib.fair_histories(4).contains(&h_full));
    }

    #[test]
    fn ib_histories_well_formed() {
        let ib = build_ib();
        for h in ib.histories(5) {
            let hist = History::from_actions(h.iter().copied());
            assert!(hist.is_well_formed(), "malformed {hist}");
        }
    }

    #[test]
    fn ib_ensures_consensus_safety() {
        use slx_safety::{ConsensusSafety, SafetyProperty};
        let ib = build_ib();
        let safety = ConsensusSafety::new();
        for h in ib.histories(6) {
            let hist = History::from_actions(h.iter().copied());
            assert!(safety.allows(&hist), "Ib history violates safety: {hist}");
        }
    }
}
