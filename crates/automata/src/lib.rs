//! Explicit finite I/O automata (Section 2's formal model).
//!
//! The simulator in `slx-memory` is the workhorse for running algorithms;
//! this crate is the *formal* side: explicit finite I/O automata with
//! action signatures, the composition operator of Section 2 (matched
//! input/output actions become internal), execution enumeration, the
//! fairness criterion of Section 3.2, input-enabledness, and crash
//! augmentation.
//!
//! It exists because two of the paper's proofs are *constructions of
//! automata*, not algorithms:
//!
//! - the trivial implementation `It` that never responds (used in Theorem
//!   4.9 to show a liveness property `Lt` not weaker than any candidate
//!   `Ls`), built by [`trivial_it`];
//! - the single-response implementation `Ib` (same theorem, second half),
//!   built by [`single_response_ib`];
//!
//! and one of its lemmas is a statement about `fair(A_I)` directly
//! (Lemma 4.8: the strongest liveness property an implementation `I`
//! ensures is `Lmax ∪ fair(A_I)`), which [`Automaton::fair_histories`]
//! makes checkable on finite truncations.

#![warn(missing_docs)]

mod automaton;
mod lemma48;
mod theorem49;

pub use automaton::{Automaton, Execution, ExecutionSpace, StateId};
pub use lemma48::{lemma_4_8_holds, BoundedLiveness};
pub use theorem49::{single_response_ib, trivial_it};
