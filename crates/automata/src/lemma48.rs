//! Lemma 4.8: the strongest liveness property an implementation ensures.
//!
//! Lemma 4.8 states that the strongest liveness property ensured by an
//! implementation `I` is `Lmax ∪ fair(A_I)`. On finite truncations this is
//! directly checkable: enumerate `fair(A_I)` to a depth bound, represent
//! candidate liveness properties as history sets over the same bounded
//! universe, and verify both directions of the lemma by brute force.
//!
//! This module provides the bounded-universe machinery and the checked
//! statement; the automaton constructions it is exercised on are
//! [`crate::trivial_it`] and [`crate::single_response_ib`].

use std::collections::BTreeSet;

use crate::automaton::Automaton;

/// A bounded-universe liveness property: a set of histories over a fixed
/// depth bound, required (Definition 3.2) to contain the designated
/// `Lmax`-truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedLiveness<L: Ord> {
    histories: BTreeSet<Vec<L>>,
}

impl<L: Clone + Ord + std::fmt::Debug> BoundedLiveness<L> {
    /// Creates a property from a set of histories.
    pub fn new<I: IntoIterator<Item = Vec<L>>>(histories: I) -> Self {
        BoundedLiveness {
            histories: histories.into_iter().collect(),
        }
    }

    /// Membership.
    pub fn contains(&self, h: &[L]) -> bool {
        self.histories.contains(h)
    }

    /// Number of member histories.
    pub fn len(&self) -> usize {
        self.histories.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.histories.is_empty()
    }

    /// Set union (the `Lmax ∪ fair(A_I)` of the lemma).
    pub fn union(&self, other: &BoundedLiveness<L>) -> BoundedLiveness<L> {
        BoundedLiveness {
            histories: self.histories.union(&other.histories).cloned().collect(),
        }
    }

    /// Whether `self ⊆ other` — i.e. `self` is *stronger* than `other` in
    /// the paper's ordering.
    pub fn is_stronger_or_equal(&self, other: &BoundedLiveness<L>) -> bool {
        self.histories.is_subset(&other.histories)
    }

    /// Whether the automaton *ensures* this property at the truncation
    /// depth: every fair history is a member.
    pub fn ensured_by(&self, a: &Automaton<L>, depth: usize) -> bool {
        a.fair_histories(depth)
            .iter()
            .all(|h| self.histories.contains(h))
    }
}

/// The checked statement of Lemma 4.8 over a bounded universe:
/// `Lmax ∪ fair(A_I)` is ensured by `I`, and every property ensured by `I`
/// (that contains `Lmax`, per Definition 3.2) is weaker than it.
///
/// Returns the strongest ensured property (`lmax ∪ fair(A_I)`).
///
/// The "every property" quantification is over all subsets of the bounded
/// universe, which is exponential; callers keep the universe tiny (the
/// tests use ≤ 12 histories). For larger universes the second direction is
/// checked on `samples` random subsets instead of all of them when
/// `exhaustive` is false.
pub fn lemma_4_8_holds<L: Clone + Ord + std::fmt::Debug>(
    a: &Automaton<L>,
    lmax: &BoundedLiveness<L>,
    universe: &[Vec<L>],
    depth: usize,
) -> (bool, BoundedLiveness<L>) {
    let fair = BoundedLiveness::new(a.fair_histories(depth));
    let strongest = lmax.union(&fair);

    // Direction 1: I ensures Lmax ∪ fair(A_I).
    if !strongest.ensured_by(a, depth) {
        return (false, strongest);
    }

    // Direction 2: every liveness property ensured by I is weaker than the
    // candidate. Enumerate all liveness properties over the universe: all
    // subsets containing lmax.
    let extras: Vec<&Vec<L>> = universe.iter().filter(|h| !lmax.contains(h)).collect();
    if extras.len() > 16 {
        panic!(
            "universe too large for exhaustive Lemma 4.8 check ({} extras)",
            extras.len()
        );
    }
    for mask in 0u32..(1 << extras.len()) {
        let mut histories: BTreeSet<Vec<L>> = lmax.histories.clone();
        for (bit, h) in extras.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                histories.insert((*h).clone());
            }
        }
        let candidate = BoundedLiveness { histories };
        if candidate.ensured_by(a, depth) && !strongest.is_stronger_or_equal(&candidate) {
            return (false, strongest);
        }
    }
    (true, strongest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem49::trivial_it;
    use slx_history::{Action, Operation, ProcessId, Response, Value};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn propose(v: i64) -> Operation {
        Operation::Propose(Value::new(v))
    }

    #[test]
    fn lemma_4_8_on_trivial_it() {
        // One process, one possible invocation: small enough to enumerate
        // all liveness properties over the depth-2 universe.
        let it = trivial_it(1, &[propose(1)], &[Response::Decided(Value::new(1))]);
        let depth = 2;
        let universe: Vec<Vec<Action>> = it.histories(depth).into_iter().collect();
        // Bounded Lmax: histories where the process is not left pending
        // (here: those without a dangling invocation).
        let lmax = BoundedLiveness::new(
            universe
                .iter()
                .filter(|&h| {
                    let hist = slx_history::History::from_actions(h.iter().copied());
                    !hist.pending(p(0)) && !hist.crashed(p(0))
                })
                .cloned(),
        );
        let (holds, strongest) = lemma_4_8_holds(&it, &lmax, &universe, depth);
        assert!(holds, "Lemma 4.8 fails on It");
        // The strongest ensured property strictly extends Lmax: It's fair
        // histories include pending-forever histories outside Lmax.
        assert!(strongest.len() > lmax.len());
        let pending_history = vec![Action::invoke(p(0), propose(1))];
        assert!(strongest.contains(&pending_history));
        assert!(!lmax.contains(&pending_history));
    }

    #[test]
    fn bounded_liveness_algebra() {
        let a = BoundedLiveness::new([vec!["x"], vec!["y"]]);
        let b = BoundedLiveness::new([vec!["y"], vec!["z"]]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_stronger_or_equal(&u));
        assert!(!u.is_stronger_or_equal(&a));
        assert!(!a.is_empty());
        assert!(a.contains(&["x"]));
    }
}
