//! The valence-computing adversary against register-based consensus.
//!
//! The adversary's inner loop is thousands of valence model-checking
//! queries; since the `slx-engine` refactor they run on the shared
//! fingerprint-based exploration kernel (one [`slx_engine::Checker`] is
//! reused across the whole run).

use std::hash::Hash;

use slx_engine::Checker;
use slx_explorer::decidable_values_with;
use slx_history::{History, ProcessId};
use slx_memory::{Process, StepEffect, System, Word};

/// Report of a [`run_bivalence_adversary`] run.
#[derive(Debug, Clone)]
pub struct BivalenceReport {
    /// Steps the adversary scheduled.
    pub steps: u64,
    /// Per-process step counts (both must grow for the (1,2)-freedom
    /// violation to be about two *steppers*).
    pub step_counts: Vec<u64>,
    /// Whether any process decided (the adversary *loses* if so).
    pub decided: bool,
    /// Whether every configuration along the path had two witnessed
    /// decidable values (the Chor–Israeli–Li invariant).
    pub bivalent_throughout: bool,
    /// The driven history.
    pub history: History,
    /// Total configurations model-checked across all valence queries — the
    /// work the exploration kernel discharged for this run.
    pub valence_configs: u64,
}

impl BivalenceReport {
    /// Whether the adversary succeeded: it kept the implementation from
    /// deciding for the whole budget while both processes kept stepping
    /// and every configuration remained (witnessed) bivalent.
    pub fn adversary_won(&self) -> bool {
        !self.decided && self.bivalent_throughout && self.step_counts.iter().all(|&c| c > 0)
    }
}

/// Runs the **Chor–Israeli–Li adversary** against an arbitrary
/// deterministic consensus implementation (provided as a configured
/// [`System`] whose two `active` processes have already proposed two
/// *different* values).
///
/// At every turn the adversary model-checks each candidate step (via
/// [`decidable_values`]) and schedules a process whose step keeps the
/// configuration bivalent, preferring the process with fewer steps so far
/// so both step infinitely often. The CIL theorem guarantees such a step
/// exists for implementations from registers; if none is found within the
/// valence budget the run reports `bivalent_throughout = false` (which
/// would falsify the experiment loudly rather than silently).
///
/// A successful run of `budget` steps is the finite prefix of an infinite
/// execution in which both processes take infinitely many steps and
/// neither ever decides — the (1,2)-freedom violation of Theorem 5.2, and
/// the mechanical core of Corollaries 4.5/4.10.
pub fn run_bivalence_adversary<W, P>(
    sys: &mut System<W, P>,
    active: &[ProcessId],
    budget: u64,
    valence_budget: usize,
) -> BivalenceReport
where
    W: Word + Send + Sync,
    P: Process<W> + Clone + Eq + Hash + Send + Sync,
{
    let mut report = BivalenceReport {
        steps: 0,
        step_counts: vec![0; sys.n()],
        decided: false,
        bivalent_throughout: true,
        history: History::new(),
        valence_configs: 0,
    };
    let checker = Checker::auto();

    for _ in 0..budget {
        // Candidates ordered fairest-first.
        let mut candidates: Vec<ProcessId> = active
            .iter()
            .copied()
            .filter(|&p| sys.can_step(p))
            .collect();
        candidates.sort_by_key(|p| report.step_counts[p.index()]);
        let mut moved = false;
        for p in candidates {
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable");
            if matches!(effect, StepEffect::Responded(_)) {
                // Stepping p would decide now; a bivalence-preserving
                // adversary never takes that edge.
                continue;
            }
            let d = decidable_values_with(&checker, &next, active, valence_budget);
            report.valence_configs += d.configs as u64;
            if d.bivalent() {
                *sys = next;
                report.steps += 1;
                report.step_counts[p.index()] += 1;
                moved = true;
                break;
            }
        }
        if !moved {
            // No bivalence-preserving step found within budget.
            report.bivalent_throughout = false;
            break;
        }
    }
    report.decided = sys
        .history()
        .iter()
        .any(|a| matches!(a, slx_history::Action::Respond { .. }));
    report.history = sys.history().clone();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::{CasConsensus, ConsWord, ObstructionFreeConsensus};
    use slx_history::{Operation, Value};
    use slx_memory::Memory;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn adversary_starves_register_consensus() {
        // Corollary 4.5 / Theorem 5.2, excluded side: the adversary keeps
        // the obstruction-free register consensus undecided for the whole
        // budget, with both processes stepping.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 150, 60_000);
        assert!(
            report.adversary_won(),
            "decided={} bivalent={} counts={:?}",
            report.decided,
            report.bivalent_throughout,
            report.step_counts
        );
        assert_eq!(report.steps, 150);
        // Both processes are still pending: nobody decided.
        assert!(report.history.pending(p(0)));
        assert!(report.history.pending(p(1)));
    }

    #[test]
    fn adversary_cannot_starve_cas_consensus() {
        // Against CAS-based consensus the very first step of either
        // process makes the configuration univalent, so no bivalence-
        // preserving step exists: the adversary loses immediately. This is
        // Figure 1a's caveat "from registers" made executable.
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 50, 10_000);
        assert!(!report.adversary_won());
        assert!(!report.bivalent_throughout);
    }

    #[test]
    fn equal_proposals_leave_adversary_powerless() {
        // With equal proposals the configuration is univalent from the
        // start; the adversary has nothing to preserve.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(5))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(5))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 50, 20_000);
        assert!(!report.adversary_won());
    }
}
