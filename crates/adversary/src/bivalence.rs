//! The valence-computing adversary against register-based consensus.
//!
//! The adversary's inner loop is thousands of valence model-checking
//! queries; since the `slx-engine` refactor they run on the shared
//! fingerprint-based exploration kernel (one [`slx_engine::Checker`] is
//! reused across the whole run).

use std::hash::Hash;

use slx_consensus::{ConsWord, ObstructionFreeConsensus, OfNormalizedState};
use slx_engine::{Checker, DeltaCodec};
use slx_explorer::decidable_values_with;
use slx_history::{History, ProcessId, Value};
use slx_memory::{Decision, Process, Scheduler, StepEffect, System, Word};

/// Report of a [`run_bivalence_adversary`] run.
#[derive(Debug, Clone)]
pub struct BivalenceReport {
    /// Steps the adversary scheduled.
    pub steps: u64,
    /// Per-process step counts (both must grow for the (1,2)-freedom
    /// violation to be about two *steppers*).
    pub step_counts: Vec<u64>,
    /// Whether any process decided (the adversary *loses* if so).
    pub decided: bool,
    /// Whether every configuration along the path had two witnessed
    /// decidable values (the Chor–Israeli–Li invariant).
    pub bivalent_throughout: bool,
    /// The driven history.
    pub history: History,
    /// Total configurations model-checked across all valence queries — the
    /// work the exploration kernel discharged for this run.
    pub valence_configs: u64,
}

impl BivalenceReport {
    /// Whether the adversary succeeded: it kept the implementation from
    /// deciding for the whole budget while both processes kept stepping
    /// and every configuration remained (witnessed) bivalent.
    pub fn adversary_won(&self) -> bool {
        !self.decided && self.bivalent_throughout && self.step_counts.iter().all(|&c| c > 0)
    }
}

/// Runs the **Chor–Israeli–Li adversary** against an arbitrary
/// deterministic consensus implementation (provided as a configured
/// [`System`] whose two `active` processes have already proposed two
/// *different* values).
///
/// At every turn the adversary model-checks each candidate step (via
/// [`decidable_values`]) and schedules a process whose step keeps the
/// configuration bivalent, preferring the process with fewer steps so far
/// so both step infinitely often. The CIL theorem guarantees such a step
/// exists for implementations from registers; if none is found within the
/// valence budget the run reports `bivalent_throughout = false` (which
/// would falsify the experiment loudly rather than silently).
///
/// A successful run of `budget` steps is the finite prefix of an infinite
/// execution in which both processes take infinitely many steps and
/// neither ever decides — the (1,2)-freedom violation of Theorem 5.2, and
/// the mechanical core of Corollaries 4.5/4.10.
pub fn run_bivalence_adversary<W, P>(
    sys: &mut System<W, P>,
    active: &[ProcessId],
    budget: u64,
    valence_budget: usize,
) -> BivalenceReport
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    run_bivalence_adversary_with(&Checker::auto(), sys, active, budget, valence_budget)
}

/// [`run_bivalence_adversary`] on an explicit exploration-kernel checker
/// for the inner valence queries — so the adversary's thousands of
/// model-checking runs can be pinned to a thread/shard configuration or
/// to a frontier memory budget (any spill codec, including replay
/// recompute-from-parent; the replay differential test drives exactly
/// that).
pub fn run_bivalence_adversary_with<W, P>(
    checker: &Checker,
    sys: &mut System<W, P>,
    active: &[ProcessId],
    budget: u64,
    valence_budget: usize,
) -> BivalenceReport
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    let mut report = BivalenceReport {
        steps: 0,
        step_counts: vec![0; sys.n()],
        decided: false,
        bivalent_throughout: true,
        history: History::new(),
        valence_configs: 0,
    };

    for _ in 0..budget {
        // Candidates ordered fairest-first.
        let mut candidates: Vec<ProcessId> = active
            .iter()
            .copied()
            .filter(|&p| sys.can_step(p))
            .collect();
        candidates.sort_by_key(|p| report.step_counts[p.index()]);
        let mut moved = false;
        for p in candidates {
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable");
            if matches!(effect, StepEffect::Responded(_)) {
                // Stepping p would decide now; a bivalence-preserving
                // adversary never takes that edge.
                continue;
            }
            let d = decidable_values_with(checker, &next, active, valence_budget);
            report.valence_configs += d.configs as u64;
            if d.bivalent() {
                *sys = next;
                report.steps += 1;
                report.step_counts[p.index()] += 1;
                moved = true;
                break;
            }
        }
        if !moved {
            // No bivalence-preserving step found within budget.
            report.bivalent_throughout = false;
            break;
        }
    }
    report.decided = sys
        .history()
        .iter()
        .any(|a| matches!(a, slx_history::Action::Respond { .. }));
    report.history = sys.history().clone();
    report
}

/// The Chor–Israeli–Li adversary as a deterministic [`Scheduler`]: it
/// first issues each configured proposal, then at every decision clones
/// the system, model-checks each candidate step with
/// [`decidable_values_with`], and steps the least-stepped process whose
/// step keeps the configuration bivalent (halting if none exists — which,
/// against register-based consensus, the CIL theorem rules out — or if
/// any process ever decides, which means the adversary lost).
/// Issuing the invocations from inside the scheduler puts them *in the
/// detected lasso's stem*, so liveness evaluation on the cycle sees the
/// processes as pending-and-denied rather than inactive.
///
/// [`run_bivalence_adversary`] drives the same strategy imperatively and
/// reports a *finite prefix*; this scheduler form plugs into the keyed
/// cycle detector (`slx_explorer::run_until_cycle_keyed`) instead, which
/// upgrades the finite prefix to a **lasso**: an infinite execution in
/// which both processes step forever and nobody ever decides — the
/// (1,2)-freedom violation of Theorem 5.2 with no finite-run
/// approximation left, matching the TM starvation lasso of Section 4.1.
///
/// Its decisions depend on its step counters only through their relative
/// order, so [`BivalenceScheduler::normalized_counts`] (counters rebased
/// to their minimum) is the right cycle-detection key component.
#[derive(Debug, Clone)]
pub struct BivalenceScheduler {
    proposals: Vec<(ProcessId, Value)>,
    active: Vec<ProcessId>,
    step_counts: Vec<u64>,
    checker: Checker,
    valence_budget: usize,
}

impl BivalenceScheduler {
    /// Creates the scheduler: it will invoke `Propose(v)` for each
    /// `(process, v)` pair (the values should differ, or there is nothing
    /// to keep bivalent), then schedule bivalence-preserving steps, with
    /// a per-query valence budget.
    #[must_use]
    pub fn new(proposals: Vec<(ProcessId, Value)>, valence_budget: usize) -> Self {
        let active: Vec<ProcessId> = proposals.iter().map(|&(p, _)| p).collect();
        let slots = active.iter().map(|p| p.index() + 1).max().unwrap_or(0);
        BivalenceScheduler {
            proposals,
            step_counts: vec![0; slots],
            active,
            checker: Checker::auto(),
            valence_budget,
        }
    }

    /// Steps scheduled per process so far.
    #[must_use]
    pub fn step_counts(&self) -> &[u64] {
        &self.step_counts
    }

    /// The **active** processes' step counters (in proposal order),
    /// rebased to their minimum. The scheduler's behaviour depends on the
    /// counters only through their order, which the rebase preserves — so
    /// this is the shift-free key component for cycle detection, exactly
    /// like `slx_tm::normalize`'s timestamp rebase. Only active slots
    /// participate: the backing vector is indexed by raw process id, and
    /// an inactive id below the highest active one would otherwise pin
    /// the minimum at a phantom zero, leaving the rebased counters
    /// growing forever and the cycle key never repeating.
    #[must_use]
    pub fn normalized_counts(&self) -> Vec<u64> {
        let min = self
            .active
            .iter()
            .map(|p| self.step_counts[p.index()])
            .min()
            .unwrap_or(0);
        self.active
            .iter()
            .map(|p| self.step_counts[p.index()] - min)
            .collect()
    }
}

impl<W, P> Scheduler<W, P> for BivalenceScheduler
where
    W: Word + DeltaCodec + Send + Sync,
    P: Process<W> + DeltaCodec + Clone + Eq + Hash + Send + Sync,
{
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        // The adversary lost the moment anyone decided.
        if self
            .active
            .iter()
            .any(|&p| !sys.history().responses_of(p).is_empty())
        {
            return Decision::Halt;
        }
        // Issue outstanding proposals first (processes here never respond,
        // so "not pending" means "not yet proposed").
        for &(p, v) in &self.proposals {
            if !sys.is_pending(p) {
                return Decision::Invoke(p, slx_history::Operation::Propose(v));
            }
        }
        let mut candidates: Vec<ProcessId> = self
            .active
            .iter()
            .copied()
            .filter(|&p| sys.can_step(p))
            .collect();
        candidates.sort_by_key(|p| self.step_counts[p.index()]);
        for p in candidates {
            let mut next = sys.clone();
            let effect = next.step(p).expect("steppable");
            if matches!(effect, StepEffect::Responded(_)) {
                // Stepping p would decide now; a bivalence-preserving
                // adversary never takes that edge.
                continue;
            }
            let d = decidable_values_with(&self.checker, &next, &self.active, self.valence_budget);
            if d.bivalent() {
                self.step_counts[p.index()] += 1;
                return Decision::Step(p);
            }
        }
        // No bivalence-preserving step within budget: the adversary is
        // beaten (or the valence budget too small) — halt loudly.
        Decision::Halt
    }
}

/// The round-shift-normalized cycle-detection key for an
/// [`ObstructionFreeConsensus`] system driven by a
/// [`BivalenceScheduler`]: the algorithm-side
/// [`slx_consensus::round_shift_key`] (which owns the normalization —
/// the round-shift invariance is a property of the consensus algorithm,
/// not of this adversary) joined with the scheduler's
/// [`BivalenceScheduler::normalized_counts`].
///
/// Raw configurations never repeat under the adversary: processes adopt
/// forever and climb through fresh commit-adopt rounds. A repeat of this
/// key witnesses a genuine infinite execution — under the scheduler
/// every proposal is issued up front, so no later invocation can
/// re-enter a round below the key's window base — provided the layout
/// has round headroom left (the detector's run would panic on exhaustion
/// rather than mis-report).
#[must_use]
pub fn normalized_of_consensus_key(
    sys: &System<ConsWord, ObstructionFreeConsensus>,
    sched: &BivalenceScheduler,
) -> (Vec<OfNormalizedState>, Vec<ConsWord>, ConsWord, Vec<u64>) {
    let (states, window, decision) = slx_consensus::round_shift_key(sys);
    (states, window, decision, sched.normalized_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_consensus::CasConsensus;
    use slx_history::{Operation, Value};
    use slx_memory::Memory;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn adversary_starves_register_consensus() {
        // Corollary 4.5 / Theorem 5.2, excluded side: the adversary keeps
        // the obstruction-free register consensus undecided for the whole
        // budget, with both processes stepping.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 150, 60_000);
        assert!(
            report.adversary_won(),
            "decided={} bivalent={} counts={:?}",
            report.decided,
            report.bivalent_throughout,
            report.step_counts
        );
        assert_eq!(report.steps, 150);
        // Both processes are still pending: nobody decided.
        assert!(report.history.pending(p(0)));
        assert!(report.history.pending(p(1)));
    }

    #[test]
    fn adversary_verdict_survives_replay_spilled_valence_queries() {
        // The adversary's inner loop is thousands of valence
        // model-checking runs; pin them to a tiny frontier budget with
        // replay (recompute-from-parent) spill records and the driven
        // schedule must not change at all: same steps, same history, same
        // model-checking work.
        use slx_engine::SpillCodec;
        let scenario = || {
            let mut mem: Memory<ConsWord> = Memory::new();
            let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
            let procs = vec![
                ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
                ObstructionFreeConsensus::new(layout, p(1), 2),
            ];
            let mut sys = System::new(mem, procs);
            sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
            sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
            sys
        };
        let mut resident_sys = scenario();
        let resident = run_bivalence_adversary_with(
            &Checker::parallel_bfs(1).with_mem_budget(0),
            &mut resident_sys,
            &[p(0), p(1)],
            40,
            60_000,
        );
        assert!(resident.adversary_won(), "baseline must win");
        let mut replay_sys = scenario();
        let replayed = run_bivalence_adversary_with(
            &Checker::parallel_bfs(1)
                .with_mem_budget(2048)
                .with_spill_codec(SpillCodec::Replay),
            &mut replay_sys,
            &[p(0), p(1)],
            40,
            60_000,
        );
        assert!(replayed.adversary_won());
        assert_eq!(replayed.steps, resident.steps);
        assert_eq!(replayed.step_counts, resident.step_counts);
        assert_eq!(replayed.history, resident.history);
        assert_eq!(replayed.valence_configs, resident.valence_configs);
    }

    /// A fresh OF-consensus system with *no* proposals issued yet: the
    /// [`BivalenceScheduler`] invokes them itself, so they land inside
    /// the detected lasso's stem.
    fn of_system(max_rounds: usize) -> System<ConsWord, ObstructionFreeConsensus> {
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, max_rounds);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        System::new(mem, procs)
    }

    fn cil_scheduler() -> BivalenceScheduler {
        BivalenceScheduler::new(vec![(p(0), v(1)), (p(1), v(2))], 60_000)
    }

    #[test]
    fn bivalence_lasso_proves_eternal_starvation() {
        // Corollary 4.10 upgraded from a finite prefix to a lasso: the
        // scheduler form of the CIL adversary, keyed modulo a round
        // shift, repeats — so the starvation is an infinite execution
        // `stem · cycle^ω` with both processes stepping forever and no
        // response ever issued, violating (1,2)-freedom exactly.
        let mut sys = of_system(64);
        let mut sched = cil_scheduler();
        let witness = slx_explorer::run_until_cycle_keyed(
            &mut sys,
            &mut sched,
            300,
            normalized_of_consensus_key,
        )
        .expect("the CIL adversary must drive a round-shift cycle");
        assert_eq!(witness.cycle_steppers(), vec![p(0), p(1)]);
        assert!(!witness.cycle_has_good_response(|_| true), "no decisions");
        use slx_liveness::{LkFreedom, ProgressKind};
        assert!(!witness.evaluate_liveness(&LkFreedom::new(1, 2), 2, ProgressKind::AnyResponse));
        assert!(!witness.evaluate_liveness(&LkFreedom::new(2, 2), 2, ProgressKind::AnyResponse));
        // (1,1)-freedom holds vacuously on the cycle: two steppers > k=1.
        assert!(witness.evaluate_liveness(&LkFreedom::new(1, 1), 2, ProgressKind::AnyResponse));
    }

    #[test]
    fn bivalence_lasso_fingerprint_matches_retained_map() {
        // Differential pin of the digest-keyed cycle detector against the
        // retained-key baseline on the bivalence adversary schedule: same
        // stem, same cycle, same unrolling.
        let run_keyed = || {
            let mut sys = of_system(64);
            let mut sched = cil_scheduler();
            slx_explorer::run_until_cycle_keyed(
                &mut sys,
                &mut sched,
                300,
                normalized_of_consensus_key,
            )
            .expect("cycle")
        };
        let run_retained = || {
            let mut sys = of_system(64);
            let mut sched = cil_scheduler();
            slx_explorer::run_until_cycle_keyed_retained(
                &mut sys,
                &mut sched,
                300,
                normalized_of_consensus_key,
            )
            .expect("cycle")
        };
        let digest = run_keyed();
        let retained = run_retained();
        assert_eq!(digest.stem, retained.stem);
        assert_eq!(digest.cycle, retained.cycle);
        assert_eq!(digest.unroll(3), retained.unroll(3));
    }

    #[test]
    fn bivalence_lasso_closes_for_nonzero_based_processes() {
        // Regression: with active processes {p1, p2} the raw counter
        // vector has a phantom slot for the never-active p0. The
        // normalized counts must rebase over the *active* slots only —
        // a phantom zero would pin the minimum, the rebased counters
        // would grow forever, and the cycle key would never repeat.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 3, 64);
        let procs = (0..3)
            .map(|i| ObstructionFreeConsensus::new(layout.clone(), p(i), 3))
            .collect();
        let mut sys = System::new(mem, procs);
        let mut sched = BivalenceScheduler::new(vec![(p(1), v(1)), (p(2), v(2))], 60_000);
        let witness = slx_explorer::run_until_cycle_keyed(
            &mut sys,
            &mut sched,
            300,
            normalized_of_consensus_key,
        )
        .expect("cycle must close despite the phantom p0 counter slot");
        assert_eq!(witness.cycle_steppers(), vec![p(1), p(2)]);
        assert!(!witness.cycle_has_good_response(|_| true));
    }

    #[test]
    fn adversary_cannot_starve_cas_consensus() {
        // Against CAS-based consensus the very first step of either
        // process makes the configuration univalent, so no bivalence-
        // preserving step exists: the adversary loses immediately. This is
        // Figure 1a's caveat "from registers" made executable.
        let mut mem: Memory<ConsWord> = Memory::new();
        let obj = CasConsensus::alloc(&mut mem);
        let mut sys = System::new(mem, vec![CasConsensus::new(obj), CasConsensus::new(obj)]);
        sys.invoke(p(0), Operation::Propose(v(1))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(2))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 50, 10_000);
        assert!(!report.adversary_won());
        assert!(!report.bivalent_throughout);
    }

    #[test]
    fn equal_proposals_leave_adversary_powerless() {
        // With equal proposals the configuration is univalent from the
        // start; the adversary has nothing to preserve.
        let mut mem: Memory<ConsWord> = Memory::new();
        let layout = ObstructionFreeConsensus::layout(&mut mem, 2, 64);
        let procs = vec![
            ObstructionFreeConsensus::new(layout.clone(), p(0), 2),
            ObstructionFreeConsensus::new(layout, p(1), 2),
        ];
        let mut sys = System::new(mem, procs);
        sys.invoke(p(0), Operation::Propose(v(5))).unwrap();
        sys.invoke(p(1), Operation::Propose(v(5))).unwrap();
        let report = run_bivalence_adversary(&mut sys, &[p(0), p(1)], 50, 20_000);
        assert!(!report.adversary_won());
    }
}
