//! The Section 4.1 three-step TM starvation strategy.

use slx_history::{Operation, ProcessId, Response, Value, VarId};
use slx_memory::{Decision, Process, Scheduler, System};
use slx_tm::TmWord;

/// Phase of the strategy (names follow the paper's Steps 1–3). Exposed
/// because it is part of the normalized cycle-detection key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Step 1: the victim starts a transaction.
    VictimStart,
    /// Step 1: the victim reads `x`.
    VictimRead,
    /// Step 2: the committer starts a transaction.
    CommitterStart,
    /// Step 2: the committer reads `x`.
    CommitterRead,
    /// Step 2: the committer writes `v'' + 1`.
    CommitterWrite,
    /// Step 2: the committer requests commit.
    CommitterTryC,
    /// Step 3: the victim writes `v'' + 1`.
    VictimWrite,
    /// Step 3: the victim requests commit.
    VictimTryC,
    /// The victim committed — the adversary lost (never happens against a
    /// TM whose conflict resolution lets the interleaved committer win).
    Lost,
}

/// The deterministic adversary of Section 4.1 (quoted verbatim in the
/// paper from its reference \[4\]): it interleaves a *victim* and a *committer* on one
/// variable so that the victim's `tryC()` always finds the state changed
/// and aborts, while the committer commits once per round.
///
/// Role-swapping the two processes yields the `F2` twin; the first action
/// of every history is `start()` by the configured victim, so the two
/// generated adversary sets are disjoint — Corollary 4.6's `Gmax = ∅`.
///
/// The strategy is a [`Scheduler`]: it chooses both invocations and steps,
/// exactly matching Definition 4.3's adversary. Run it with the keyed
/// cycle detector (`slx-explorer`) and the normalization maps
/// (`slx_tm::normalize`) to obtain a lasso — a proof that the starvation
/// continues forever.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TmStarvation {
    victim: ProcessId,
    committer: ProcessId,
    var: VarId,
    phase: Phase,
    /// Whether an invocation is outstanding (awaiting its response).
    waiting: bool,
    /// The committer's last read value `v''`.
    v_dblprime: i64,
    /// Rounds completed (committer commits per round), for reporting.
    rounds: u64,
}

impl TmStarvation {
    /// Creates the strategy with the given victim and committer.
    pub fn new(victim: ProcessId, committer: ProcessId, var: VarId) -> Self {
        TmStarvation {
            victim,
            committer,
            var,
            phase: Phase::VictimStart,
            waiting: false,
            v_dblprime: 0,
            rounds: 0,
        }
    }

    /// Rounds completed so far (one committer commit each).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether the victim ever committed (the adversary lost).
    pub fn lost(&self) -> bool {
        self.phase == Phase::Lost
    }

    /// The strategy state relevant for cycle detection, with the stored
    /// read value rebased by `dval` (see `slx_tm::normalize` for why the
    /// rebase is behaviour-preserving).
    pub fn normalized_state(&self, dval: i64) -> (Phase, bool, i64) {
        (self.phase, self.waiting, self.v_dblprime - dval)
    }

    fn actor(&self) -> ProcessId {
        match self.phase {
            Phase::VictimStart | Phase::VictimRead | Phase::VictimWrite | Phase::VictimTryC => {
                self.victim
            }
            _ => self.committer,
        }
    }

    fn invocation(&self) -> Operation {
        match self.phase {
            Phase::VictimStart | Phase::CommitterStart => Operation::TxStart,
            Phase::VictimRead | Phase::CommitterRead => Operation::TxRead(self.var),
            Phase::CommitterWrite | Phase::VictimWrite => {
                Operation::TxWrite(self.var, Value::new(self.v_dblprime + 1))
            }
            Phase::CommitterTryC | Phase::VictimTryC => Operation::TxCommit,
            Phase::Lost => unreachable!("no invocation after losing"),
        }
    }

    fn transition(&mut self, resp: Response) {
        use Phase::*;
        let aborted = resp == Response::Aborted;
        self.phase = match self.phase {
            VictimStart => {
                if aborted {
                    VictimStart
                } else {
                    VictimRead
                }
            }
            VictimRead => {
                if aborted {
                    VictimStart
                } else {
                    CommitterStart
                }
            }
            CommitterStart => {
                if aborted {
                    CommitterStart
                } else {
                    CommitterRead
                }
            }
            CommitterRead => {
                if aborted {
                    CommitterStart
                } else {
                    if let Response::ValueReturned(v) = resp {
                        self.v_dblprime = v.raw();
                    }
                    CommitterWrite
                }
            }
            CommitterWrite => {
                if aborted {
                    CommitterStart
                } else {
                    CommitterTryC
                }
            }
            CommitterTryC => {
                if aborted {
                    CommitterStart
                } else {
                    self.rounds += 1;
                    VictimWrite
                }
            }
            VictimWrite => {
                if aborted {
                    VictimStart
                } else {
                    VictimTryC
                }
            }
            VictimTryC => {
                if aborted {
                    VictimStart
                } else {
                    Lost
                }
            }
            Lost => Lost,
        };
    }
}

impl<P: Process<TmWord>> Scheduler<TmWord, P> for TmStarvation {
    fn decide(&mut self, sys: &System<TmWord, P>) -> Decision {
        if self.phase == Phase::Lost {
            return Decision::Halt;
        }
        let who = self.actor();
        if self.waiting {
            if sys.is_pending(who) {
                return Decision::Step(who);
            }
            // The awaited response arrived: transition.
            let resp = *sys
                .history()
                .responses_of(who)
                .last()
                .expect("response arrived");
            self.waiting = false;
            self.transition(resp);
            if self.phase == Phase::Lost {
                return Decision::Halt;
            }
        }
        self.waiting = true;
        Decision::Invoke(self.actor(), self.invocation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{TransactionStatus, TxnView};
    use slx_liveness::{ExecutionView, LivenessProperty, LkFreedom, Lmax, ProgressKind};
    use slx_memory::Memory;
    use slx_safety::{certify_unique_writes, StrictSerializability};
    use slx_tm::normalize::normalized_global_version;
    use slx_tm::GlobalVersionTm;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn x0() -> VarId {
        VarId::new(0)
    }

    fn gv_system() -> System<TmWord, GlobalVersionTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let c = GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..2).map(|_| GlobalVersionTm::new(c, 1)).collect();
        System::new(mem, procs)
    }

    #[test]
    fn victim_never_commits_against_global_version_tm() {
        let mut sys = gv_system();
        let mut adv = TmStarvation::new(p(0), p(1), x0());
        sys.run(&mut adv, 5000);
        assert!(!adv.lost(), "victim committed");
        assert!(adv.rounds() >= 10, "only {} rounds", adv.rounds());
        // The committer commits every round; the victim never.
        let view = TxnView::parse(sys.history());
        for t in view.of_process(p(0)) {
            assert_ne!(t.status(), TransactionStatus::Committed);
        }
        let committer_commits = view
            .of_process(p(1))
            .iter()
            .filter(|t| t.status() == TransactionStatus::Committed)
            .count() as u64;
        assert_eq!(committer_commits, adv.rounds());
    }

    #[test]
    fn starvation_run_violates_local_progress_and_22_freedom() {
        let mut sys = gv_system();
        let mut adv = TmStarvation::new(p(0), p(1), x0());
        sys.run(&mut adv, 5000);
        let view = ExecutionView::second_half(sys.events(), 2, ProgressKind::CommitOnly);
        // Local progress (Lmax for TM) fails: the victim is correct but
        // never commits.
        assert!(!Lmax::new().satisfied(&view));
        // (2,2)-freedom fails: exactly 2 steppers, 2 correct, only 1
        // makes progress.
        assert!(!LkFreedom::new(2, 2).satisfied(&view));
        // (1,2)-freedom holds on this run: the committer progresses.
        assert!(LkFreedom::new(1, 2).satisfied(&view));
    }

    #[test]
    fn starvation_run_remains_safe() {
        // The adversary wins on liveness, not by corrupting safety.
        let mut sys = gv_system();
        let mut adv = TmStarvation::new(p(0), p(1), x0());
        sys.run(&mut adv, 800);
        assert!(certify_unique_writes(sys.history(), Value::new(0)));
        let _ = StrictSerializability::new(Value::new(0));
    }

    /// The §4.1 shift-normalized cycle-detection key: the rebased system
    /// plus the strategy state with its stored read value rebased.
    fn starvation_key(
        sys: &System<TmWord, GlobalVersionTm>,
        adv: &TmStarvation,
    ) -> (System<TmWord, GlobalVersionTm>, (Phase, bool, i64)) {
        let normalized = normalized_global_version(sys);
        // dval = committed value of x1, the normalizer's base.
        let dval = sys
            .memory()
            .iter_objects()
            .find_map(|(_, o)| match o {
                slx_memory::BaseObject::Cas(TmWord::Versioned { values, .. }) => {
                    Some(values[0].raw())
                }
                _ => None,
            })
            .unwrap_or(0);
        (normalized, adv.normalized_state(dval))
    }

    #[test]
    fn lasso_proves_the_starvation_is_eternal() {
        // Detect a repeat of the shift-normalized (system, strategy) state:
        // the infinite execution stem·cycle^ω starves the victim forever.
        let mut sys = gv_system();
        let mut adv = TmStarvation::new(p(0), p(1), x0());
        let witness = slx_explorer::run_until_cycle_keyed(&mut sys, &mut adv, 5000, starvation_key)
            .expect("starvation loop must cycle");
        // The cycle has both processes stepping and no victim commit.
        assert_eq!(witness.cycle_steppers(), vec![p(0), p(1)]);
        let victim_commits_in_cycle = witness.cycle.iter().any(
            |e| matches!(e, slx_memory::Event::Responded(q, Response::Committed) if *q == p(0)),
        );
        assert!(!victim_commits_in_cycle);
        // The committer does commit within the cycle (lock-freedom in
        // action): the run violates (2,2) but not (1,2).
        let committer_commits_in_cycle = witness.cycle.iter().any(
            |e| matches!(e, slx_memory::Event::Responded(q, Response::Committed) if *q == p(1)),
        );
        assert!(committer_commits_in_cycle);
        // Exact liveness verdicts on the infinite execution stem·cycle^ω
        // (no finite-run approximation): Theorem 5.3's classification.
        assert!(!witness.evaluate_liveness(&LkFreedom::new(2, 2), 2, ProgressKind::CommitOnly));
        assert!(witness.evaluate_liveness(&LkFreedom::new(1, 2), 2, ProgressKind::CommitOnly));
        assert!(!witness.evaluate_liveness(&Lmax::new(), 2, ProgressKind::CommitOnly));
    }

    #[test]
    fn starvation_lasso_fingerprint_matches_retained_map() {
        // Differential pin of the digest-keyed cycle detector (which
        // retains 16-byte fingerprints of the normalized keys) against
        // the retained-key baseline on the §4.1 starvation lasso: same
        // stem, same cycle, same unrolling.
        let mut sys_a = gv_system();
        let mut adv_a = TmStarvation::new(p(0), p(1), x0());
        let digest =
            slx_explorer::run_until_cycle_keyed(&mut sys_a, &mut adv_a, 5000, starvation_key)
                .expect("cycle");
        let mut sys_b = gv_system();
        let mut adv_b = TmStarvation::new(p(0), p(1), x0());
        let retained = slx_explorer::run_until_cycle_keyed_retained(
            &mut sys_b,
            &mut adv_b,
            5000,
            starvation_key,
        )
        .expect("cycle");
        assert_eq!(digest.stem, retained.stem);
        assert_eq!(digest.cycle, retained.cycle);
        assert_eq!(digest.unroll(3), retained.unroll(3));
        assert_eq!(digest.cycle_steppers(), retained.cycle_steppers());
    }

    #[test]
    fn role_swapped_twin_is_disjoint() {
        // F1 histories start with the victim p1's start(); F2 with p2's.
        let run = |victim: usize, committer: usize| {
            let mut sys = gv_system();
            let mut adv = TmStarvation::new(p(victim), p(committer), x0());
            sys.run(&mut adv, 200);
            sys.history().clone()
        };
        let h1 = run(0, 1);
        let h2 = run(1, 0);
        assert_eq!(h1.actions()[0].proc(), p(0));
        assert_eq!(h2.actions()[0].proc(), p(1));
        assert_ne!(h1.actions()[0], h2.actions()[0]);
    }
}
