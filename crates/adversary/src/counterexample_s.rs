//! The Section 5.3 three-process adversary against property `S`.

use slx_history::{Operation, ProcessId, Response};
use slx_memory::{Decision, Process, Scheduler, System};
use slx_tm::TmWord;

/// Per-process stage within one round of the strategy. Exposed because it
/// is part of the normalized cycle-detection key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Needs to invoke `start()`.
    NeedStart,
    /// `start()` invoked, awaiting its response.
    StartPending,
    /// `start()` returned ok.
    StartedOk,
    /// `start()` aborted (sits this round out, per the strategy).
    StartedAborted,
    /// `tryC()` invoked, awaiting its response.
    TryCPending,
    /// `tryC()` aborted this round.
    RoundAborted,
}

/// The Section 5.3 adversary: three processes concurrently `start()` their
/// `t`-th transactions, wait until **all** have start responses, then all
/// (non-aborted ones) invoke `tryC()`. If every commit request aborts, the
/// round repeats; if any process ever commits, the adversary halts
/// (defeated — and, against an implementation of property `S`, a commit
/// here would itself violate `S`, the contradiction at the heart of the
/// section).
///
/// Against Algorithm I(1,2) the timestamp rule aborts all three `tryC()`s
/// every round, so the strategy loops forever: three steppers, no commits
/// — a violation of (1,3)-freedom, witnessed as a lasso via the
/// normalization maps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TripleRoundAdversary {
    procs: [ProcessId; 3],
    stages: [Stage; 3],
    /// Rounds fully completed (all aborted).
    rounds: u64,
    /// Set when some process committed: the adversary lost.
    lost: bool,
}

impl TripleRoundAdversary {
    /// Creates the strategy over three processes.
    pub fn new(procs: [ProcessId; 3]) -> Self {
        TripleRoundAdversary {
            procs,
            stages: [Stage::NeedStart; 3],
            rounds: 0,
            lost: false,
        }
    }

    /// Fully-aborted rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether some process committed (the adversary lost).
    pub fn lost(&self) -> bool {
        self.lost
    }

    /// Strategy state for cycle detection (stages reset each round, so the
    /// state is already shift-free).
    pub fn normalized_state(&self) -> [Stage; 3] {
        self.stages
    }

    fn absorb_responses<P: Process<TmWord>>(&mut self, sys: &System<TmWord, P>) {
        for (i, &q) in self.procs.iter().enumerate() {
            let waiting = matches!(self.stages[i], Stage::StartPending | Stage::TryCPending);
            if waiting && !sys.is_pending(q) {
                let resp = *sys
                    .history()
                    .responses_of(q)
                    .last()
                    .expect("response arrived");
                self.stages[i] = match (self.stages[i], resp) {
                    (Stage::StartPending, Response::Aborted) => Stage::StartedAborted,
                    (Stage::StartPending, _) => Stage::StartedOk,
                    (Stage::TryCPending, Response::Aborted) => Stage::RoundAborted,
                    (Stage::TryCPending, Response::Committed) => {
                        self.lost = true;
                        Stage::RoundAborted
                    }
                    (s, _) => s,
                };
            }
        }
    }
}

impl<P: Process<TmWord>> Scheduler<TmWord, P> for TripleRoundAdversary {
    fn decide(&mut self, sys: &System<TmWord, P>) -> Decision {
        self.absorb_responses(sys);
        if self.lost {
            return Decision::Halt;
        }
        // Phase A: get everyone started.
        for (i, &q) in self.procs.iter().enumerate() {
            if self.stages[i] == Stage::NeedStart {
                self.stages[i] = Stage::StartPending;
                return Decision::Invoke(q, Operation::TxStart);
            }
        }
        if let Some(i) = self.stages.iter().position(|s| *s == Stage::StartPending) {
            return Decision::Step(self.procs[i]);
        }
        // All start responses in. Phase B: non-aborted processes tryC,
        // *after* everyone's start response (the condition property S
        // requires).
        for (i, &q) in self.procs.iter().enumerate() {
            if self.stages[i] == Stage::StartedOk {
                self.stages[i] = Stage::TryCPending;
                return Decision::Invoke(q, Operation::TxCommit);
            }
        }
        if let Some(i) = self.stages.iter().position(|s| *s == Stage::TryCPending) {
            return Decision::Step(self.procs[i]);
        }
        // Round over: everyone aborted (commits were caught above).
        self.rounds += 1;
        self.stages = [Stage::NeedStart; 3];
        // Recurse once into the new round.
        self.stages[0] = Stage::StartPending;
        Decision::Invoke(self.procs[0], Operation::TxStart)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::{TransactionStatus, TxnView, Value};
    use slx_liveness::{ExecutionView, LivenessProperty, LkFreedom, ProgressKind};
    use slx_memory::Memory;
    use slx_safety::PropertyS;
    use slx_tm::normalize::normalized_agp;
    use slx_tm::AgpTm;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn agp_system(n: usize) -> System<TmWord, AgpTm> {
        let mut mem: Memory<TmWord> = Memory::new();
        let (c, r) = AgpTm::alloc(&mut mem, n, 1);
        let procs = (0..n).map(|i| AgpTm::new(c, r, p(i), n, 1)).collect();
        System::new(mem, procs)
    }

    #[test]
    fn all_rounds_abort_against_agp() {
        let mut sys = agp_system(3);
        let mut adv = TripleRoundAdversary::new([p(0), p(1), p(2)]);
        sys.run(&mut adv, 3000);
        assert!(!adv.lost(), "a commit escaped the timestamp rule");
        assert!(adv.rounds() >= 20, "only {} rounds", adv.rounds());
        // No transaction ever commits.
        let view = TxnView::parse(sys.history());
        assert!(view
            .transactions()
            .iter()
            .all(|t| t.status() != TransactionStatus::Committed));
        // And the runs stay inside property S.
        assert!(PropertyS::new(Value::new(0)).abort_rule_holds(sys.history()));
    }

    #[test]
    fn run_violates_13_freedom() {
        let mut sys = agp_system(3);
        let mut adv = TripleRoundAdversary::new([p(0), p(1), p(2)]);
        sys.run(&mut adv, 3000);
        let view = ExecutionView::second_half(sys.events(), 3, ProgressKind::CommitOnly);
        // Three steppers, zero commits: (1,3)-freedom fails...
        assert!(!LkFreedom::new(1, 3).satisfied(&view));
        // ...while (2,2)-freedom holds vacuously (3 steppers > k = 2).
        assert!(LkFreedom::new(2, 2).satisfied(&view));
    }

    #[test]
    fn lasso_proves_eternal_all_abort_loop() {
        let mut sys = agp_system(3);
        let mut adv = TripleRoundAdversary::new([p(0), p(1), p(2)]);
        let witness = slx_explorer::run_until_cycle_keyed(
            &mut sys,
            &mut adv,
            5000,
            |sys, adv: &TripleRoundAdversary| (normalized_agp(sys), adv.normalized_state()),
        )
        .expect("all-abort loop must cycle");
        assert_eq!(witness.cycle_steppers(), vec![p(0), p(1), p(2)]);
        assert!(!witness.cycle_has_good_response(|r| r.is_commit()));
        // Exact verdicts on stem·cycle^ω: (1,3)-freedom is violated (three
        // steppers, nobody commits) while (2,2)-freedom holds vacuously.
        assert!(!witness.evaluate_liveness(&LkFreedom::new(1, 3), 3, ProgressKind::CommitOnly));
        assert!(witness.evaluate_liveness(&LkFreedom::new(2, 2), 3, ProgressKind::CommitOnly));
    }

    #[test]
    fn adversary_defeated_by_global_version_tm() {
        // GlobalVersionTm has no timestamp rule: in the synchronized round
        // the first tryC CAS succeeds, the adversary loses — and indeed
        // GlobalVersionTm does NOT implement property S.
        let mut mem: Memory<TmWord> = Memory::new();
        let c = slx_tm::GlobalVersionTm::alloc(&mut mem, 1);
        let procs = (0..3).map(|_| slx_tm::GlobalVersionTm::new(c, 1)).collect();
        let mut sys: System<TmWord, slx_tm::GlobalVersionTm> = System::new(mem, procs);
        let mut adv = TripleRoundAdversary::new([p(0), p(1), p(2)]);
        sys.run(&mut adv, 2000);
        assert!(adv.lost(), "GlobalVersionTm should commit in round 1");
        // The produced history indeed violates property S's abort rule.
        assert!(!PropertyS::new(Value::new(0)).abort_rule_holds(sys.history()));
    }
}
