//! Adversaries and adversary sets (Definition 4.3).
//!
//! An adversary "decides on the schedule and inputs of processes" to make
//! any implementation of a safety property violate a liveness property.
//! Adversaries here are deterministic [`slx_memory::Scheduler`]s (plus, for
//! consensus, a valence oracle), so their runs can be analyzed exactly —
//! including cycle detection, which turns a finite run into a proof of an
//! infinite starving execution.
//!
//! Contents, by paper section:
//!
//! - §4.1 consensus: the explicit adversary sets `F1`/`F2`
//!   ([`consensus_f1`], [`consensus_f2`]) whose disjointness gives
//!   `Gmax = ∅` and Corollary 4.5, and the constructive
//!   [`run_bivalence_adversary`] — *computing* the Chor–Israeli–Li schedule
//!   against any deterministic register-based consensus implementation;
//! - §4.1 TM: the three-step starvation strategy ([`TmStarvation`]) and
//!   its role-swapped twin, behind Corollary 4.6 and the black point
//!   `(2,2)` of Figure 1b;
//! - §5.3: the three-process synchronized-round strategy
//!   ([`TripleRoundAdversary`]) showing (1,3)-freedom excludes property
//!   `S`.

#![warn(missing_docs)]

mod bivalence;
mod consensus_sets;
mod counterexample_s;
mod tm_starvation;

pub use bivalence::{
    normalized_of_consensus_key, run_bivalence_adversary, run_bivalence_adversary_with,
    BivalenceReport, BivalenceScheduler,
};
pub use consensus_sets::{consensus_f1, consensus_f2, gmax_of};
pub use counterexample_s::TripleRoundAdversary;
pub use tm_starvation::TmStarvation;
