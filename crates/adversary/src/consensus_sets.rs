//! The explicit consensus adversary sets `F1` and `F2` of Section 4.1.

use slx_history::{Action, History, HistorySet, Operation, ProcessId, Response, Value};

/// The paper's adversary set `F1` w.r.t. wait-freedom and consensus
/// agreement-and-validity (for implementations from registers): all
/// histories in which `p1` and `p2` propose *different* values, `p1`
/// first, and at most one of them decides. Quoting the paper:
///
/// ```text
/// F1 = { propose1(v)·propose2(v'),
///        propose1(v)·v1·propose2(v'),
///        propose1(v)·propose2(v')·v1,
///        propose1(v)·propose2(v')·v'1,
///        propose1(v)·propose2(v')·v2,
///        propose1(v)·propose2(v')·v'2 }
/// ```
///
/// Existence of a fair continuation of one of these into an infinite
/// no-decision execution is the Chor–Israeli–Li impossibility; the
/// [`crate::run_bivalence_adversary`] half of this crate produces such
/// continuations mechanically.
pub fn consensus_f1(v: Value, v_prime: Value) -> HistorySet {
    two_proposal_set(ProcessId::new(0), ProcessId::new(1), v, v_prime)
}

/// The role-swapped adversary set `F2`: `p2` proposes first. Also an
/// adversary set (the impossibility proof does not depend on process
/// identifiers), and disjoint from `F1` — every `F1` history begins with a
/// `p1` invocation, every `F2` history with a `p2` invocation.
pub fn consensus_f2(v: Value, v_prime: Value) -> HistorySet {
    two_proposal_set(ProcessId::new(1), ProcessId::new(0), v, v_prime)
}

/// `Gmax` of Theorem 4.4 for a finite family of adversary sets: their
/// intersection.
pub fn gmax_of(sets: &[HistorySet]) -> HistorySet {
    let mut iter = sets.iter();
    let Some(first) = iter.next() else {
        return HistorySet::new();
    };
    iter.fold(first.clone(), |acc, s| acc.intersection(s))
}

fn two_proposal_set(first: ProcessId, second: ProcessId, v: Value, v_prime: Value) -> HistorySet {
    let inv1 = Action::invoke(first, Operation::Propose(v));
    let inv2 = Action::invoke(second, Operation::Propose(v_prime));
    let dec = |p: ProcessId, val: Value| Action::respond(p, Response::Decided(val));

    HistorySet::from_histories([
        // propose_first(v) · propose_second(v')
        History::from_actions([inv1, inv2]),
        // propose_first(v) · v_first · propose_second(v')
        History::from_actions([inv1, dec(first, v), inv2]),
        // propose_first(v) · propose_second(v') · v_first
        History::from_actions([inv1, inv2, dec(first, v)]),
        // propose_first(v) · propose_second(v') · v'_first
        History::from_actions([inv1, inv2, dec(first, v_prime)]),
        // propose_first(v) · propose_second(v') · v_second
        History::from_actions([inv1, inv2, dec(second, v)]),
        // propose_first(v) · propose_second(v') · v'_second
        History::from_actions([inv1, inv2, dec(second, v_prime)]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use slx_history::ProcessId;
    use slx_safety::{ConsensusSafety, SafetyProperty};

    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn f1_has_six_histories() {
        assert_eq!(consensus_f1(v(1), v(2)).len(), 6);
        assert_eq!(consensus_f2(v(1), v(2)).len(), 6);
    }

    #[test]
    fn f1_f2_disjoint_so_gmax_empty() {
        // The crux of Corollary 4.5.
        let f1 = consensus_f1(v(1), v(2));
        let f2 = consensus_f2(v(1), v(2));
        assert!(f1.is_disjoint(&f2));
        assert!(gmax_of(&[f1, f2]).is_empty());
    }

    #[test]
    fn members_satisfy_safety() {
        // Condition (1) of Definition 4.3: F ⊆ S.
        let safety = ConsensusSafety::new();
        for h in consensus_f1(v(1), v(2)).iter() {
            assert!(safety.allows(h), "F1 member violates safety: {h}");
        }
        for h in consensus_f2(v(1), v(2)).iter() {
            assert!(safety.allows(h), "F2 member violates safety: {h}");
        }
    }

    #[test]
    fn members_deny_wait_freedom() {
        // Condition (2): F ⊆ complement of Lmax — in every member, some
        // correct process has proposed but not decided.
        for h in consensus_f1(v(1), v(2)).iter() {
            let some_starved = ProcessId::all(2).any(|p| h.correct(p) && h.pending(p));
            assert!(some_starved, "F1 member satisfies Lmax: {h}");
        }
    }

    #[test]
    fn members_are_well_formed() {
        for h in consensus_f1(v(3), v(4))
            .union(&consensus_f2(v(3), v(4)))
            .iter()
        {
            assert!(h.is_well_formed(), "malformed member {h}");
        }
    }

    #[test]
    fn first_action_distinguishes_the_sets() {
        for h in consensus_f1(v(1), v(2)).iter() {
            assert_eq!(h.actions()[0].proc(), ProcessId::new(0));
        }
        for h in consensus_f2(v(1), v(2)).iter() {
            assert_eq!(h.actions()[0].proc(), ProcessId::new(1));
        }
    }

    #[test]
    fn gmax_of_empty_family_is_empty() {
        assert!(gmax_of(&[]).is_empty());
    }

    #[test]
    fn gmax_of_single_set_is_itself() {
        let f1 = consensus_f1(v(1), v(2));
        assert_eq!(gmax_of(std::slice::from_ref(&f1)), f1);
    }
}
