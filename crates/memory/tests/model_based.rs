//! Model-based testing of the shared memory: random primitive sequences
//! replayed against a naive reference model must agree exactly.
//!
//! Requires the external `proptest` and `rand` crates: enable the
//! `proptest-tests` feature (and add the dev-dependencies) in an
//! environment with registry access. Compiled out by default so offline
//! builds succeed.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use slx_memory::{BaseObject, Memory, ObjId, PrimOutcome, Primitive};

/// A reference model mirroring the five object kinds with plain fields.
#[derive(Debug, Clone, Default)]
struct Model {
    registers: Vec<i64>,
    cas: Vec<i64>,
    tas: Vec<bool>,
    counters: Vec<i64>,
    snapshots: Vec<Vec<i64>>,
}

#[derive(Debug, Clone)]
enum Op {
    ReadReg(usize),
    WriteReg(usize, i64),
    Cas(usize, i64, i64),
    Tas(usize),
    TasReset(usize),
    FetchAdd(usize, i64),
    SnapUpdate(usize, usize, i64),
    SnapScan(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..2, -3i64..3).prop_map(|(i, _)| Op::ReadReg(i)),
        (0usize..2, -3i64..3).prop_map(|(i, v)| Op::WriteReg(i, v)),
        (0usize..2, -3i64..3, -3i64..3).prop_map(|(i, e, n)| Op::Cas(i, e, n)),
        (0usize..2).prop_map(Op::Tas),
        (0usize..2).prop_map(Op::TasReset),
        (0usize..2, -3i64..3).prop_map(|(i, d)| Op::FetchAdd(i, d)),
        (0usize..2, 0usize..3, -3i64..3).prop_map(|(s, i, v)| Op::SnapUpdate(s, i, v)),
        (0usize..2).prop_map(Op::SnapScan),
    ]
}

proptest! {
    #[test]
    fn memory_agrees_with_model(ops in prop::collection::vec(arb_op(), 0..80)) {
        let mut mem: Memory<i64> = Memory::new();
        let regs: Vec<ObjId> = (0..2).map(|_| mem.alloc_register(0)).collect();
        let cas: Vec<ObjId> = (0..2).map(|_| mem.alloc_cas(0)).collect();
        let tas: Vec<ObjId> = (0..2).map(|_| mem.alloc_tas()).collect();
        let ctr: Vec<ObjId> = (0..2).map(|_| mem.alloc_counter(0)).collect();
        let snap: Vec<ObjId> = (0..2).map(|_| mem.alloc_snapshot(3, 0)).collect();
        let mut model = Model {
            registers: vec![0; 2],
            cas: vec![0; 2],
            tas: vec![false; 2],
            counters: vec![0; 2],
            snapshots: vec![vec![0; 3]; 2],
        };

        for op in &ops {
            match *op {
                Op::ReadReg(i) => {
                    let got = mem.apply(Primitive::Read(regs[i])).unwrap();
                    prop_assert_eq!(got, PrimOutcome::Value(model.registers[i]));
                }
                Op::WriteReg(i, v) => {
                    mem.apply(Primitive::Write(regs[i], v)).unwrap();
                    model.registers[i] = v;
                }
                Op::Cas(i, e, n) => {
                    let got = mem
                        .apply(Primitive::Cas { obj: cas[i], expected: e, new: n })
                        .unwrap();
                    let expect = model.cas[i] == e;
                    if expect {
                        model.cas[i] = n;
                    }
                    prop_assert_eq!(got, PrimOutcome::Flag(expect));
                }
                Op::Tas(i) => {
                    let got = mem.apply(Primitive::Tas(tas[i])).unwrap();
                    prop_assert_eq!(got, PrimOutcome::Flag(model.tas[i]));
                    model.tas[i] = true;
                }
                Op::TasReset(i) => {
                    mem.apply(Primitive::TasReset(tas[i])).unwrap();
                    model.tas[i] = false;
                }
                Op::FetchAdd(i, d) => {
                    let got = mem.apply(Primitive::FetchAdd(ctr[i], d)).unwrap();
                    prop_assert_eq!(got, PrimOutcome::Int(model.counters[i]));
                    model.counters[i] += d;
                }
                Op::SnapUpdate(s, i, v) => {
                    mem.apply(Primitive::SnapUpdate { obj: snap[s], index: i, val: v })
                        .unwrap();
                    model.snapshots[s][i] = v;
                }
                Op::SnapScan(s) => {
                    let got = mem.apply(Primitive::SnapScan(snap[s])).unwrap();
                    prop_assert_eq!(got, PrimOutcome::Snapshot(model.snapshots[s].clone()));
                }
            }
        }

        // Final state agreement via direct object inspection.
        for i in 0..2 {
            prop_assert_eq!(
                mem.object(regs[i]),
                Some(&BaseObject::Register(model.registers[i]))
            );
            prop_assert_eq!(mem.object(cas[i]), Some(&BaseObject::Cas(model.cas[i])));
            prop_assert_eq!(mem.object(tas[i]), Some(&BaseObject::Tas(model.tas[i])));
            prop_assert_eq!(
                mem.object(ctr[i]),
                Some(&BaseObject::Counter(model.counters[i]))
            );
            prop_assert_eq!(
                mem.object(snap[i]),
                Some(&BaseObject::Snapshot(model.snapshots[i].clone()))
            );
        }
        prop_assert_eq!(mem.applied(), ops.len() as u64);
    }
}
