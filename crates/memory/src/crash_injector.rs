//! Crash injection: wrapping schedulers with failure plans.

use slx_history::ProcessId;

use crate::rng::SmallRng;

use crate::base::Word;
use crate::process::Process;
use crate::sched::{Decision, Scheduler};
use crate::system::System;

/// Wraps a scheduler and crashes designated processes at designated event
/// counts — the deterministic failure plans used by the failure-injection
/// tests (the model of Section 2 allows *any* number of crash failures).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CrashPlan<S> {
    inner: S,
    /// `(event_index, process)` pairs, sorted by event index.
    plan: Vec<(u64, ProcessId)>,
    events_seen: u64,
}

impl<S> CrashPlan<S> {
    /// Crashes each listed process the first time the scheduler is
    /// consulted at or after the given event count.
    pub fn new(inner: S, mut plan: Vec<(u64, ProcessId)>) -> Self {
        plan.sort_by_key(|(at, _)| *at);
        CrashPlan {
            inner,
            plan,
            events_seen: 0,
        }
    }
}

impl<W, P, S> Scheduler<W, P> for CrashPlan<S>
where
    W: Word,
    P: Process<W>,
    S: Scheduler<W, P>,
{
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        self.events_seen += 1;
        if let Some(&(at, p)) = self.plan.first() {
            if self.events_seen >= at && !sys.is_crashed(p) {
                self.plan.remove(0);
                return Decision::Crash(p);
            }
        }
        self.inner.decide(sys)
    }
}

/// Wraps a scheduler and crashes each still-alive process independently
/// with a small probability per decision, leaving at least `min_alive`
/// processes alive. Randomized failure injection for soak tests.
#[derive(Debug, Clone)]
pub struct RandomCrashes<S> {
    inner: S,
    rng: SmallRng,
    /// Probability (×10⁻³) of injecting a crash at each decision.
    per_mille: u32,
    min_alive: usize,
}

impl<S> RandomCrashes<S> {
    /// Creates the wrapper; `per_mille` is the per-decision crash
    /// probability in thousandths.
    pub fn new(inner: S, seed: u64, per_mille: u32, min_alive: usize) -> Self {
        RandomCrashes {
            inner,
            rng: SmallRng::seed_from_u64(seed),
            per_mille,
            min_alive,
        }
    }
}

impl<W, P, S> Scheduler<W, P> for RandomCrashes<S>
where
    W: Word,
    P: Process<W>,
    S: Scheduler<W, P>,
{
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        let alive: Vec<ProcessId> = ProcessId::all(sys.n())
            .filter(|&p| !sys.is_crashed(p))
            .collect();
        if alive.len() > self.min_alive && self.rng.gen_index(1000) < self.per_mille as usize {
            let victim = alive[self.rng.gen_index(alive.len())];
            return Decision::Crash(victim);
        }
        self.inner.decide(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Memory;
    use crate::register_proc::RegisterProcess;
    use crate::sched::RoundRobin;
    use slx_history::{Operation, Value, VarId};

    fn sys3() -> System<i64, RegisterProcess> {
        let mut mem: Memory<i64> = Memory::new();
        let reg = mem.alloc_register(0);
        let procs = (0..3).map(|_| RegisterProcess::new(reg)).collect();
        System::new(mem, procs)
    }

    #[test]
    fn crash_plan_fires_in_order() {
        let mut sys = sys3();
        for i in 0..3 {
            sys.invoke(
                ProcessId::new(i),
                Operation::Write(VarId::new(0), Value::new(i as i64)),
            )
            .unwrap();
        }
        let plan = vec![(1, ProcessId::new(2)), (2, ProcessId::new(0))];
        let mut sched = CrashPlan::new(RoundRobin::new(), plan);
        sys.run(&mut sched, 100);
        assert!(sys.is_crashed(ProcessId::new(0)));
        assert!(!sys.is_crashed(ProcessId::new(1)));
        assert!(sys.is_crashed(ProcessId::new(2)));
        // The survivor completed its write.
        assert_eq!(sys.history().responses_of(ProcessId::new(1)).len(), 1);
        assert!(sys.history().is_well_formed());
    }

    #[test]
    fn random_crashes_respect_min_alive() {
        for seed in 0..20 {
            let mut sys = sys3();
            for i in 0..3 {
                sys.invoke(
                    ProcessId::new(i),
                    Operation::Write(VarId::new(0), Value::new(1)),
                )
                .unwrap();
            }
            let mut sched = RandomCrashes::new(RoundRobin::new(), seed, 500, 1);
            sys.run(&mut sched, 200);
            let alive = ProcessId::all(3).filter(|&p| !sys.is_crashed(p)).count();
            assert!(alive >= 1, "seed {seed}");
        }
    }
}
