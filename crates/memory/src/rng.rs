//! A small deterministic PRNG.
//!
//! The schedulers only need a seeded, reproducible stream of indices —
//! not cryptographic quality — so a SplitMix64 generator replaces the
//! external `rand` dependency (unavailable in offline builds). Streams are
//! stable across platforms and releases: seeds appearing in tests and
//! figures stay meaningful.

/// SplitMix64: 64 bits of well-mixed state per step, full period 2^64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e_37_79_b9_7f_4a_7c_15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf_58_47_6d_1c_e4_e5_b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94_d0_49_bb_13_31_11_eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (Lemire's multiply-shift; `bound` must
    /// be non-zero).
    pub fn gen_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "gen_index bound must be non-zero");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn indices_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }
}
