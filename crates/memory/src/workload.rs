//! Workloads: sources of invocations for closed-loop clients.

use slx_history::{Operation, ProcessId, Response, Value, VarId};

use crate::base::Word;
use crate::process::Process;
use crate::sched::{Decision, Scheduler};
use crate::system::System;

/// A source of invocations. The [`WorkloadScheduler`] consults it whenever a
/// process is idle (not pending, not crashed); returning `None` means the
/// process has no further work.
pub trait Workload {
    /// The next operation for `proc`, given the response that completed its
    /// previous operation (`None` on the very first invocation).
    fn next_op(&mut self, proc: ProcessId, last: Option<Response>) -> Option<Operation>;
}

/// Each process performs one fixed operation, then stops.
#[derive(Debug, Clone)]
pub struct OneShot {
    ops: Vec<Option<Operation>>,
}

impl OneShot {
    /// One operation per process; `ops[i]` is process `i`'s operation.
    pub fn new(ops: Vec<Operation>) -> Self {
        OneShot {
            ops: ops.into_iter().map(Some).collect(),
        }
    }
}

impl Workload for OneShot {
    fn next_op(&mut self, proc: ProcessId, _last: Option<Response>) -> Option<Operation> {
        self.ops.get_mut(proc.index()).and_then(Option::take)
    }
}

/// A closed-loop transactional workload: each process repeatedly runs the
/// transaction `start(); read(x_r for r in reads); write(x_w, v); tryC()`,
/// retrying from `start()` after every abort, until it has *committed*
/// `commits_per_proc` transactions (or forever if `None`).
///
/// This is the workload shape of the paper's TM adversaries and of the
/// progress definitions: "good" responses are commits, so a process makes
/// progress exactly when one of its `tryC()` calls returns `C`.
#[derive(Debug, Clone)]
pub struct RepeatTxn {
    reads: Vec<VarId>,
    writes: Vec<VarId>,
    commits_per_proc: Option<u64>,
    cursor: Vec<usize>,
    committed: Vec<u64>,
    attempt: Vec<u64>,
}

impl RepeatTxn {
    /// Creates the workload for `n` processes over the given read and write
    /// sets.
    pub fn new(
        n: usize,
        reads: Vec<VarId>,
        writes: Vec<VarId>,
        commits_per_proc: Option<u64>,
    ) -> Self {
        RepeatTxn {
            reads,
            writes,
            commits_per_proc,
            cursor: vec![0; n],
            committed: vec![0; n],
            attempt: vec![0; n],
        }
    }

    /// Number of transactions committed by `proc` so far.
    pub fn committed(&self, proc: ProcessId) -> u64 {
        self.committed[proc.index()]
    }

    fn script_len(&self) -> usize {
        1 + self.reads.len() + self.writes.len() + 1
    }

    fn script_op(&self, proc: ProcessId, pos: usize) -> Operation {
        let i = proc.index();
        if pos == 0 {
            Operation::TxStart
        } else if pos < 1 + self.reads.len() {
            Operation::TxRead(self.reads[pos - 1])
        } else if pos < 1 + self.reads.len() + self.writes.len() {
            let w = pos - 1 - self.reads.len();
            // A value unique per (process, attempt) so written values are
            // distinguishable in opacity checking.
            let val = Value::new((i as i64 + 1) * 1_000_000 + self.attempt[i] as i64);
            Operation::TxWrite(self.writes[w], val)
        } else {
            Operation::TxCommit
        }
    }
}

impl Workload for RepeatTxn {
    fn next_op(&mut self, proc: ProcessId, last: Option<Response>) -> Option<Operation> {
        let i = proc.index();
        match last {
            Some(Response::Aborted) => {
                // Retry the whole transaction.
                self.cursor[i] = 0;
                self.attempt[i] += 1;
            }
            Some(Response::Committed) => {
                self.cursor[i] = 0;
                self.attempt[i] += 1;
                self.committed[i] += 1;
            }
            _ => {}
        }
        if let Some(limit) = self.commits_per_proc {
            if self.committed[i] >= limit {
                return None;
            }
        }
        let pos = self.cursor[i];
        debug_assert!(pos < self.script_len());
        let op = self.script_op(proc, pos);
        self.cursor[i] = (pos + 1) % self.script_len();
        Some(op)
    }
}

/// Combines a [`Workload`] with an inner step [`Scheduler`]: idle processes
/// are fed their next invocation; otherwise the inner scheduler picks who
/// steps.
#[derive(Debug, Clone)]
pub struct WorkloadScheduler<L, S> {
    workload: L,
    inner: S,
    last_resp: Vec<Option<Response>>,
    responses_seen: Vec<usize>,
    done: Vec<bool>,
}

impl<L: Workload, S> WorkloadScheduler<L, S> {
    /// Creates the combined scheduler for `n` processes.
    pub fn new(n: usize, workload: L, inner: S) -> Self {
        WorkloadScheduler {
            workload,
            inner,
            last_resp: vec![None; n],
            responses_seen: vec![0; n],
            done: vec![false; n],
        }
    }

    /// Access to the workload (e.g. to read commit counters afterwards).
    pub fn workload(&self) -> &L {
        &self.workload
    }
}

impl<W, P, L, S> Scheduler<W, P> for WorkloadScheduler<L, S>
where
    W: Word,
    P: Process<W>,
    L: Workload,
    S: Scheduler<W, P>,
{
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        // Track the newest response of each process from the history.
        for p in ProcessId::all(sys.n()) {
            let resps = sys.history().responses_of(p);
            if resps.len() > self.responses_seen[p.index()] {
                self.responses_seen[p.index()] = resps.len();
                self.last_resp[p.index()] = resps.last().copied();
            }
        }
        for p in ProcessId::all(sys.n()) {
            let i = p.index();
            if self.done[i] || sys.is_pending(p) || sys.is_crashed(p) {
                continue;
            }
            match self.workload.next_op(p, self.last_resp[i].take()) {
                Some(op) => return Decision::Invoke(p, op),
                None => self.done[i] = true,
            }
        }
        self.inner.decide(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_issues_once() {
        let mut w = OneShot::new(vec![Operation::TxStart, Operation::TxCommit]);
        let p0 = ProcessId::new(0);
        assert_eq!(w.next_op(p0, None), Some(Operation::TxStart));
        assert_eq!(w.next_op(p0, Some(Response::Ok)), None);
        assert_eq!(
            w.next_op(ProcessId::new(1), None),
            Some(Operation::TxCommit)
        );
    }

    #[test]
    fn repeat_txn_script_order() {
        let x0 = VarId::new(0);
        let x1 = VarId::new(1);
        let mut w = RepeatTxn::new(1, vec![x0], vec![x1], Some(1));
        let p = ProcessId::new(0);
        assert_eq!(w.next_op(p, None), Some(Operation::TxStart));
        assert_eq!(
            w.next_op(p, Some(Response::Ok)),
            Some(Operation::TxRead(x0))
        );
        let write = w.next_op(p, Some(Response::ValueReturned(Value::new(0))));
        assert!(matches!(write, Some(Operation::TxWrite(v, _)) if v == x1));
        assert_eq!(w.next_op(p, Some(Response::Ok)), Some(Operation::TxCommit));
    }

    #[test]
    fn repeat_txn_retries_after_abort() {
        let mut w = RepeatTxn::new(1, vec![], vec![], None);
        let p = ProcessId::new(0);
        assert_eq!(w.next_op(p, None), Some(Operation::TxStart));
        // Abort during start: retry with a fresh start.
        assert_eq!(
            w.next_op(p, Some(Response::Aborted)),
            Some(Operation::TxStart)
        );
        assert_eq!(w.next_op(p, Some(Response::Ok)), Some(Operation::TxCommit));
        // Abort at commit: retry again.
        assert_eq!(
            w.next_op(p, Some(Response::Aborted)),
            Some(Operation::TxStart)
        );
    }

    #[test]
    fn repeat_txn_stops_after_commit_limit() {
        let mut w = RepeatTxn::new(1, vec![], vec![], Some(1));
        let p = ProcessId::new(0);
        assert_eq!(w.next_op(p, None), Some(Operation::TxStart));
        assert_eq!(w.next_op(p, Some(Response::Ok)), Some(Operation::TxCommit));
        assert_eq!(w.next_op(p, Some(Response::Committed)), None);
        assert_eq!(w.committed(p), 1);
    }

    #[test]
    fn repeat_txn_write_values_differ_per_attempt() {
        let x = VarId::new(0);
        let mut w = RepeatTxn::new(1, vec![], vec![x], None);
        let p = ProcessId::new(0);
        let _ = w.next_op(p, None); // start
        let w1 = w.next_op(p, Some(Response::Ok)).unwrap();
        let _ = w.next_op(p, Some(Response::Ok)); // tryC
        let _ = w.next_op(p, Some(Response::Aborted)); // start (attempt 2)
        let w2 = w.next_op(p, Some(Response::Ok)).unwrap();
        assert_ne!(w1, w2);
    }
}
