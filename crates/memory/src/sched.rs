//! Schedulers: the external entity that orders process steps.

use slx_history::{Operation, ProcessId};

use crate::rng::SmallRng;

use crate::base::Word;
use crate::process::Process;
use crate::system::System;

/// One scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Deliver an invocation to a process.
    Invoke(ProcessId, Operation),
    /// Let a process take one step.
    Step(ProcessId),
    /// Crash a process.
    Crash(ProcessId),
    /// Stop the run.
    Halt,
}

/// The scheduler: decides, from the observable system state, what happens
/// next (Section 2: "the order in which processes take steps is determined
/// by an external entity called a scheduler over which processes have no
/// control").
///
/// Adversaries (Definition 4.3) are schedulers that additionally choose
/// invocations; they implement this same trait in `slx-adversary`.
pub trait Scheduler<W: Word, P: Process<W>> {
    /// Chooses the next event given the current system.
    fn decide(&mut self, sys: &System<W, P>) -> Decision;
}

/// Round-robin over steppable processes; halts when the system is
/// quiescent. Delivers no invocations (pair with explicit
/// [`System::invoke`] calls or a [`crate::WorkloadScheduler`]).
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl<W: Word, P: Process<W>> Scheduler<W, P> for RoundRobin {
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        let n = sys.n();
        for offset in 0..n {
            let i = (self.next + offset) % n;
            let p = ProcessId::new(i);
            if sys.can_step(p) {
                self.next = (i + 1) % n;
                return Decision::Step(p);
            }
        }
        Decision::Halt
    }
}

/// Steps a single designated process until it is no longer steppable, then
/// halts. This realizes the "runs alone / without step contention"
/// schedules of obstruction-freedom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoloScheduler {
    proc: ProcessId,
}

impl SoloScheduler {
    /// Creates a scheduler that steps only `proc`.
    pub fn new(proc: ProcessId) -> Self {
        SoloScheduler { proc }
    }
}

impl<W: Word, P: Process<W>> Scheduler<W, P> for SoloScheduler {
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        if sys.can_step(self.proc) {
            Decision::Step(self.proc)
        } else {
            Decision::Halt
        }
    }
}

/// Uniformly random fair scheduler over an (optionally restricted) set of
/// processes. Fair in the probabilistic sense: every steppable process is
/// chosen infinitely often with probability one, so long finite runs under
/// it approximate fair infinite executions.
#[derive(Debug, Clone)]
pub struct FairRandom {
    rng: SmallRng,
    /// If non-empty, only these processes are ever scheduled — this is how
    /// "at most k processes take infinitely many steps" schedules are
    /// produced for (l,k)-freedom evaluation.
    active: Vec<ProcessId>,
}

impl FairRandom {
    /// Creates a fair random scheduler over all processes.
    pub fn new(seed: u64) -> Self {
        FairRandom {
            rng: SmallRng::seed_from_u64(seed),
            active: Vec::new(),
        }
    }

    /// Creates a fair random scheduler restricted to `active` processes.
    pub fn restricted(seed: u64, active: Vec<ProcessId>) -> Self {
        FairRandom {
            rng: SmallRng::seed_from_u64(seed),
            active,
        }
    }
}

impl<W: Word, P: Process<W>> Scheduler<W, P> for FairRandom {
    fn decide(&mut self, sys: &System<W, P>) -> Decision {
        let candidates: Vec<ProcessId> = if self.active.is_empty() {
            sys.steppable()
        } else {
            self.active
                .iter()
                .copied()
                .filter(|&p| sys.can_step(p))
                .collect()
        };
        if candidates.is_empty() {
            return Decision::Halt;
        }
        let idx = self.rng.gen_index(candidates.len());
        Decision::Step(candidates[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{Memory, ObjId, Primitive};
    use crate::process::StepEffect;
    use slx_history::{Response, Value, VarId};

    /// Increments a counter `k` times, then responds with `Ok`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Incr {
        ctr: ObjId,
        remaining: usize,
    }

    impl Process<i64> for Incr {
        fn on_invoke(&mut self, _op: Operation) {
            self.remaining = 3;
        }
        fn has_step(&self) -> bool {
            self.remaining > 0
        }
        fn step(&mut self, mem: &mut Memory<i64>) -> StepEffect {
            mem.apply(Primitive::FetchAdd(self.ctr, 1)).unwrap();
            self.remaining -= 1;
            if self.remaining == 0 {
                StepEffect::Responded(Response::Ok)
            } else {
                StepEffect::Ran
            }
        }
    }

    fn three_proc_system() -> System<i64, Incr> {
        let mut mem: Memory<i64> = Memory::new();
        let ctr = mem.alloc_counter(0);
        let procs = (0..3).map(|_| Incr { ctr, remaining: 0 }).collect();
        System::new(mem, procs)
    }

    fn invoke_all(sys: &mut System<i64, Incr>) {
        for p in ProcessId::all(3) {
            sys.invoke(p, Operation::Write(VarId::new(0), Value::new(0)))
                .unwrap();
        }
    }

    #[test]
    fn round_robin_completes_all() {
        let mut sys = three_proc_system();
        invoke_all(&mut sys);
        let stats = sys.run(&mut RoundRobin::new(), 1000);
        assert!(stats.halted);
        assert_eq!(stats.responses, 3);
        assert!(sys.quiescent());
    }

    #[test]
    fn solo_steps_only_target() {
        let mut sys = three_proc_system();
        invoke_all(&mut sys);
        let p1 = ProcessId::new(1);
        let stats = sys.run(&mut SoloScheduler::new(p1), 1000);
        assert_eq!(stats.responses, 1);
        assert!(sys
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::system::Event::Stepped(p) => Some(*p),
                _ => None,
            })
            .all(|p| p == p1));
    }

    #[test]
    fn fair_random_restricted_respects_restriction() {
        let mut sys = three_proc_system();
        invoke_all(&mut sys);
        let active = vec![ProcessId::new(0), ProcessId::new(2)];
        let mut sched = FairRandom::restricted(42, active.clone());
        let stats = sys.run(&mut sched, 1000);
        assert_eq!(stats.responses, 2);
        for e in sys.events() {
            if let crate::system::Event::Stepped(p) = e {
                assert!(active.contains(p));
            }
        }
    }

    #[test]
    fn fair_random_deterministic_per_seed() {
        let run = |seed| {
            let mut sys = three_proc_system();
            invoke_all(&mut sys);
            sys.run(&mut FairRandom::new(seed), 1000);
            sys.events().to_vec()
        };
        assert_eq!(run(7), run(7));
    }
}
