//! One-primitive implementations of the hardware object types.
//!
//! The paper's base objects (Section 2: "read/write registers,
//! test-and-set, compare-and-swap, etc.") are themselves shared object
//! types; implementing each by a single primitive on the matching base
//! object gives the canonical wait-free, linearizable implementations the
//! safety checkers are validated against.

use slx_engine::{DeltaCodec, StateCodec};
use slx_history::{Operation, Response, Value};

use crate::base::{Memory, ObjId, PrimOutcome, Primitive};
use crate::process::{Process, StepEffect};

/// Which base object backs the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicKind {
    /// A test-and-set bit (serves [`Operation::TestAndSet`]).
    Tas,
    /// A CAS object over values (serves [`Operation::CompareAndSwap`] and
    /// reads of `x1`).
    Cas,
    /// A fetch-and-add counter (serves [`Operation::FetchAdd`] and reads
    /// of `x1`).
    Counter,
}

/// A process implementing a hardware object type by forwarding each
/// invocation to one primitive on the backing base object — wait-free in
/// exactly one step and trivially linearizable (the primitive *is* the
/// linearization point).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomicObjectProcess {
    kind: AtomicKind,
    obj: ObjId,
    pending: Option<Operation>,
}

impl AtomicObjectProcess {
    /// Creates the process over a backing object of the given kind.
    pub fn new(kind: AtomicKind, obj: ObjId) -> Self {
        AtomicObjectProcess {
            kind,
            obj,
            pending: None,
        }
    }
}

impl StateCodec for AtomicKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            AtomicKind::Tas => 0,
            AtomicKind::Cas => 1,
            AtomicKind::Counter => 2,
        });
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(match u8::decode(input)? {
            0 => AtomicKind::Tas,
            1 => AtomicKind::Cas,
            2 => AtomicKind::Counter,
            _ => return None,
        })
    }
}

impl StateCodec for AtomicObjectProcess {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.obj.encode(out);
        self.pending.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some(AtomicObjectProcess {
            kind: AtomicKind::decode(input)?,
            obj: ObjId::decode(input)?,
            pending: Option::decode(input)?,
        })
    }
}

// Both encode to a handful of bytes; the self-contained defaults are
// already minimal.
impl DeltaCodec for AtomicKind {}
impl DeltaCodec for AtomicObjectProcess {}

impl Process<i64> for AtomicObjectProcess {
    fn on_invoke(&mut self, op: Operation) {
        self.pending = Some(op);
    }

    fn has_step(&self) -> bool {
        self.pending.is_some()
    }

    fn step(&mut self, mem: &mut Memory<i64>) -> StepEffect {
        let Some(op) = self.pending.take() else {
            return StepEffect::Idle;
        };
        let resp = match (self.kind, op) {
            (AtomicKind::Tas, Operation::TestAndSet) => {
                let prev = mem
                    .apply(Primitive::Tas(self.obj))
                    .expect("tas allocated")
                    .expect_flag();
                Response::Flag(prev)
            }
            (AtomicKind::Cas, Operation::CompareAndSwap { expected, new }) => {
                let ok = mem
                    .apply(Primitive::Cas {
                        obj: self.obj,
                        expected: expected.raw(),
                        new: new.raw(),
                    })
                    .expect("cas allocated")
                    .expect_flag();
                Response::Flag(ok)
            }
            (AtomicKind::Cas, Operation::Read(_)) => {
                let v = mem
                    .apply(Primitive::Read(self.obj))
                    .expect("cas allocated")
                    .expect_value();
                Response::ValueReturned(Value::new(v))
            }
            (AtomicKind::Counter, Operation::FetchAdd(delta)) => {
                let prev = mem
                    .apply(Primitive::FetchAdd(self.obj, delta.raw()))
                    .expect("counter allocated")
                    .expect_int();
                Response::ValueReturned(Value::new(prev))
            }
            (AtomicKind::Counter, Operation::Read(_)) => {
                let v = match mem
                    .apply(Primitive::Read(self.obj))
                    .expect("counter allocated")
                {
                    PrimOutcome::Int(i) => i,
                    other => unreachable!("counter read returns Int, got {other:?}"),
                };
                Response::ValueReturned(Value::new(v))
            }
            (kind, op) => panic!("{kind:?} object cannot execute {op}"),
        };
        StepEffect::Responded(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FairRandom;
    use crate::system::System;
    use slx_history::ProcessId;

    fn run_ops(
        kind: AtomicKind,
        n: usize,
        ops: &[(usize, Operation)],
        seed: u64,
    ) -> slx_history::History {
        let mut mem: Memory<i64> = Memory::new();
        let obj = match kind {
            AtomicKind::Tas => mem.alloc_tas(),
            AtomicKind::Cas => mem.alloc_cas(0),
            AtomicKind::Counter => mem.alloc_counter(0),
        };
        let procs = (0..n)
            .map(|_| AtomicObjectProcess::new(kind, obj))
            .collect();
        let mut sys = System::new(mem, procs);
        let mut queue: Vec<(usize, Operation)> = ops.to_vec();
        let mut sched = FairRandom::new(seed);
        // Interleave invocations with a fair schedule.
        while !queue.is_empty() || !sys.quiescent() {
            // Deliver whatever invocations are deliverable.
            queue.retain(|&(i, op)| sys.invoke(ProcessId::new(i), op).is_err());
            sys.run(&mut sched, 1);
        }
        sys.history().clone()
    }

    #[test]
    fn exactly_one_tas_winner() {
        for seed in 0..10 {
            let ops: Vec<(usize, Operation)> = (0..3).map(|i| (i, Operation::TestAndSet)).collect();
            let h = run_ops(AtomicKind::Tas, 3, &ops, seed);
            let winners = h
                .iter()
                .filter(|a| a.as_respond() == Some(Response::Flag(false)))
                .count();
            assert_eq!(winners, 1, "seed {seed}: {h}");
        }
    }

    #[test]
    fn exactly_one_cas_success_from_same_expected() {
        for seed in 0..10 {
            let ops: Vec<(usize, Operation)> = (0..3)
                .map(|i| {
                    (
                        i,
                        Operation::CompareAndSwap {
                            expected: Value::new(0),
                            new: Value::new(i as i64 + 1),
                        },
                    )
                })
                .collect();
            let h = run_ops(AtomicKind::Cas, 3, &ops, seed);
            let winners = h
                .iter()
                .filter(|a| a.as_respond() == Some(Response::Flag(true)))
                .count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }

    #[test]
    fn counter_returns_distinct_previous_values() {
        for seed in 0..10 {
            let ops: Vec<(usize, Operation)> = (0..4)
                .map(|i| (i, Operation::FetchAdd(Value::new(1))))
                .collect();
            let h = run_ops(AtomicKind::Counter, 4, &ops, seed);
            let mut returned: Vec<i64> = h
                .iter()
                .filter_map(|a| match a.as_respond() {
                    Some(Response::ValueReturned(v)) => Some(v.raw()),
                    _ => None,
                })
                .collect();
            returned.sort();
            assert_eq!(returned, vec![0, 1, 2, 3], "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot execute")]
    fn wrong_operation_panics() {
        let mut mem: Memory<i64> = Memory::new();
        let obj = mem.alloc_tas();
        let mut p = AtomicObjectProcess::new(AtomicKind::Tas, obj);
        p.on_invoke(Operation::TxStart);
        let _ = p.step(&mut mem);
    }
}
